//! Quickstart: refute a consensus protocol with the layered-analysis engine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the asynchronous message-passing model under the permutation
//! layering (Section 5.1 of the paper), runs the exhaustive consensus
//! checker against a flooding protocol, and extracts both halves of the
//! FLP-style story: the concrete requirement violation, and the bivalent
//! run showing why *no* deadline could have worked.

use layered_consensus::async_mp::MpModel;
use layered_consensus::core::{
    build_bivalent_run, check_consensus, undecided_non_failed, ValenceSolver, Violation,
};
use layered_consensus::protocols::MpFloodMin;

fn main() {
    let n = 3;
    let deadline = 2u16;
    println!("== layered-consensus quickstart ==");
    println!("model: asynchronous message passing, n = {n}, 1-resilient");
    println!("layering: S^per (permutation layering, Section 5.1)");
    println!("protocol: MpFloodMin with a {deadline}-phase deadline\n");

    let model = MpModel::new(n, MpFloodMin::new(deadline));

    // 1. The checker sweeps every S^per-execution up to the deadline and
    //    finds a concrete violation of Decision, Agreement or Validity.
    let report = check_consensus(&model, usize::from(deadline), 3);
    println!(
        "checker: explored {} states, found {} violation(s)",
        report.states_explored,
        report.violations.len()
    );
    for v in &report.violations {
        match v {
            Violation::Agreement { p, q, .. } => println!(
                "  - agreement: {} decided {} while {} decided {}",
                p.0, p.1, q.0, q.1
            ),
            Violation::Validity { p, v, .. } => {
                println!("  - validity: {p} decided {v}, which is nobody's input");
            }
            Violation::Decision { undecided, .. } => println!(
                "  - decision: {} obligated process(es) undecided at the deadline",
                undecided.len()
            ),
        }
    }

    // 2. The Theorem 4.2 engine: a bivalent initial state (Lemma 3.6)
    //    extended through bivalent layers (Lemma 4.1).
    let mut solver = ValenceSolver::new(&model, usize::from(deadline));
    let run = build_bivalent_run(&mut solver, usize::from(deadline) - 1);
    match run.chain {
        Some(chain) => {
            println!(
                "\nbivalent run: {} layer(s), starting from inputs {:?}",
                chain.steps(),
                chain
                    .first()
                    .inputs
                    .iter()
                    .map(|v| v.get())
                    .collect::<Vec<_>>()
            );
            for (k, state) in chain.states().iter().enumerate() {
                let undecided = undecided_non_failed(&model, state).len();
                println!(
                    "  layer {k}: bivalent, {undecided}/{n} processes undecided, {} message(s) in transit",
                    state.in_transit()
                );
            }
            println!(
                "\nEvery state of the run is bivalent, so by Lemma 3.2 nobody has\n\
                 decided — consensus cannot have been reached by the deadline."
            );
        }
        None => println!("no bivalent initial state: the protocol already fails validity/decision"),
    }
}
