//! The Dolev–Strong t+1-round lower bound, reproduced end to end
//! (Section 6 of the paper, Corollary 6.3).
//!
//! ```text
//! cargo run --release --example sync_lower_bound
//! ```
//!
//! For each instance (n, t): FloodMin with deadline `t` is refuted with an
//! explicit agreement-violating run, FloodMin with deadline `t + 1` is
//! verified exhaustively over every `S^t`-run, and the Lemma 6.1 bivalent
//! chain plus the Lemma 6.2 undecided successor are constructed — the two
//! halves of the lower-bound argument.

use layered_consensus::core::{check_consensus, ValenceSolver};
use layered_consensus::protocols::FloodMin;
use layered_consensus::sync_crash::{lemma_6_1_chain, lemma_6_2_witness, CrashModel};

fn main() {
    println!("== the t+1-round lower bound (Corollary 6.3) ==\n");
    for (n, t) in [(3usize, 1usize), (4, 1), (4, 2)] {
        println!("--- n = {n}, t = {t} ---");

        // A t-round candidate must fail.
        let fast = CrashModel::new(n, t, FloodMin::new(t as u16));
        let report = check_consensus(&fast, t, 1);
        match report.violations.first() {
            Some(v) => println!(
                "FloodMin({t}): REFUTED over {} states ({} violation found)",
                report.states_explored,
                v.kind()
            ),
            None => println!("FloodMin({t}): unexpectedly passed — lower bound violated!"),
        }

        // The t+1-round protocol passes, exhaustively.
        let tight = CrashModel::new(n, t, FloodMin::new((t + 1) as u16));
        let report = check_consensus(&tight, t + 1, 1);
        println!(
            "FloodMin({}): {} over {} states (the bound is tight)",
            t + 1,
            if report.passed() {
                "VERIFIED"
            } else {
                "FAILED"
            },
            report.states_explored
        );

        // Why t rounds cannot suffice: bivalence survives t - 1 layers
        // (Lemma 6.1), and one more round still leaves an undecided
        // non-failed process (Lemma 6.2).
        let mut solver = ValenceSolver::new(&tight, t + 1);
        if let Some(x0) = solver.bivalent_initial_state() {
            let out = lemma_6_1_chain(&tight, &mut solver, x0);
            if let Some(chain) = &out.chain {
                println!(
                    "Lemma 6.1: bivalent chain of {} layer(s) built, {} failure(s) at its end",
                    chain.steps(),
                    chain.last().failure_count()
                );
                if let Some((y, undecided)) = lemma_6_2_witness(&tight, chain.last()) {
                    println!(
                        "Lemma 6.2: successor at round {} with {} undecided non-failed process(es)",
                        y.round,
                        undecided.len()
                    );
                }
            }
        }
        println!();
    }
    println!(
        "Every t-round candidate was refuted and every (t+1)-round FloodMin verified:\n\
         worst-case decision requires exactly t + 1 rounds."
    );
}
