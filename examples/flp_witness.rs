//! FLP in shared memory and message passing: the two asynchronous
//! layerings side by side (Section 5.1 of the paper).
//!
//! ```text
//! cargo run --release --example flp_witness
//! ```
//!
//! For the synchronic layering `S^rw`, replays a layer action as an atomic
//! read/write schedule and checks the Lemma 5.3 bridge; for the permutation
//! layering `S^per`, checks the transposition similarity chain and the
//! diamond identity; then builds bivalent runs in both models.

use layered_consensus::async_mp::{permutations, MpModel};
use layered_consensus::async_sm::{schedule_for, SmAction, SmModel};
use layered_consensus::core::{build_bivalent_run, LayeredModel, Pid, ValenceSolver, Value};
use layered_consensus::protocols::{MpFloodMin, SmFloodMin};

fn main() {
    let n = 3;

    println!("== shared memory: the synchronic layering S^rw ==\n");
    let sm = SmModel::new(n, SmFloodMin::new(2));
    let x = sm.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);

    // A layer action is a W₁R₁W₂R₂ virtual round; show its atomic schedule.
    let action = SmAction::Staggered {
        j: Pid::new(0),
        k: 2,
    };
    let ops = schedule_for(sm.protocol(), &x, action);
    println!(
        "action (p1, k=2) as an atomic schedule ({} ops):",
        ops.len()
    );
    for op in &ops {
        println!("  {op:?}");
    }

    // The Lemma 5.3 bridge: x(j,n)(j,A) agrees modulo j with x(j,A)(j,0).
    let all_bridges = (0..n).all(|j| sm.bridge_agrees(&x, Pid::new(j)));
    println!("\nLemma 5.3 bridge x(j,n)(j,A) ≡ x(j,A)(j,0) (mod j) for all j: {all_bridges}");

    let mut solver = ValenceSolver::new(&sm, 2);
    let run = build_bivalent_run(&mut solver, 1);
    println!(
        "bivalent run in S^rw: {} layer(s) built (Corollary 5.4)\n",
        run.chain.as_ref().map_or(0, |c| c.steps())
    );

    println!("== message passing: the permutation layering S^per ==\n");
    let mp = MpModel::new(n, MpFloodMin::new(2));
    let x = mp.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);

    // The transposition chain: sequential ~s concurrent ~s swapped.
    let mut checked = 0;
    let mut held = 0;
    for order in permutations(n) {
        for at in 0..n - 1 {
            let (a, b) = mp.transposition_bridges(&x, &order, at);
            checked += 2;
            held += usize::from(a) + usize::from(b);
        }
    }
    println!("transposition similarity bridges: {held}/{checked} hold");

    // The diamond, "reduced to its bare minimum": an exact state equality.
    let order: Vec<Pid> = Pid::all(n).collect();
    println!(
        "diamond x[p1..pn][p1..p(n-1)] = x[p1..p(n-1)][pn,p1..]: {}",
        mp.diamond_identity_holds(&x, &order)
    );

    let mut solver = ValenceSolver::new(&mp, 2);
    let run = build_bivalent_run(&mut solver, 1);
    println!(
        "bivalent run in S^per: {} layer(s) built (FLP)",
        run.chain.as_ref().map_or(0, |c| c.steps())
    );

    println!(
        "\nBoth asynchronous layerings admit ever-bivalent runs: the same\n\
         Theorem 4.2 argument refutes consensus in both models."
    );
}
