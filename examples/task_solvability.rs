//! Decision-task solvability via k-thick-connectivity (Section 7 of the
//! paper; Theorem 7.2 and Corollary 7.3).
//!
//! ```text
//! cargo run --release --example task_solvability
//! ```
//!
//! Classifies a suite of decision problems by the 1-thick-connectivity of
//! their output structure and confirms each verdict operationally: a
//! protocol in the 1-resilient asynchronous message-passing model either
//! solves the task over every explored run or is refuted with a witness.

use layered_consensus::async_mp::MpModel;
use layered_consensus::core::Value;
use layered_consensus::protocols::{MpCollectMin, MpFloodMin, MpIdentity};
use layered_consensus::topology::{check_task, tasks, DecisionTask};

fn classify(task: &DecisionTask) {
    let n = task.num_processes();
    let conn = task.is_k_thick_connected(1);
    let span = task.full_span();
    println!(
        "{:<18} facets = {:<3} 1-thick-connected = {}",
        task.name(),
        span.facet_count(),
        if conn { "yes" } else { "NO " },
    );
    let _ = n;
}

fn main() {
    let n = 3;
    println!("== combinatorial classification (C_Δ over all inputs) ==\n");
    let suite = [
        tasks::consensus(n),
        tasks::k_set_agreement(n, 2),
        tasks::k_set_agreement(n, 1),
        tasks::identity(n),
        tasks::constant(n, Value::ZERO),
        tasks::pseudo_consensus(n),
    ];
    for task in &suite {
        classify(task);
    }

    println!("\n== operational confirmation in 1-resilient message passing ==\n");

    // Consensus: disconnected => unsolvable. Flooding is refuted.
    let task = tasks::consensus(n);
    let m = MpModel::new(n, MpFloodMin::new(2));
    let report = check_task(&m, &task, 2, 1);
    println!(
        "consensus        + MpFloodMin(2):     {} ({} states)",
        report.violations.first().map_or("solves?!", |v| v.kind()),
        report.states_explored
    );

    // 2-set agreement: connected => solvable. Collect n-1 inputs, decide min.
    let task = tasks::k_set_agreement(n, 2);
    let m = MpModel::new(n, MpCollectMin::new(n - 1)).with_obligation(2);
    let report = check_task(&m, &task, 2, 1);
    println!(
        "2-set agreement  + MpCollectMin(n−1): {} ({} states)",
        if report.passed() {
            "solved"
        } else {
            report.violations[0].kind()
        },
        report.states_explored
    );

    // Identity: solvable wait-free by deciding the own input.
    let task = tasks::identity(n);
    let m = MpModel::new(n, MpIdentity).with_obligation(1);
    let report = check_task(&m, &task, 1, 1);
    println!(
        "identity         + MpIdentity:        {} ({} states)",
        if report.passed() {
            "solved"
        } else {
            report.violations[0].kind()
        },
        report.states_explored
    );

    println!(
        "\nThe verdicts line up with Corollary 7.3: a task is solvable\n\
         1-resiliently exactly if its output structure is 1-thick-connected."
    );
}
