//! The single mobile failure model `M^mf` and its layering `S₁`
//! (Section 5 of the paper; Santoro–Widmayer impossibility).
//!
//! ```text
//! cargo run --release --example mobile_failure
//! ```
//!
//! Shows a layer `S₁(x)` in full, extracts and re-verifies a similarity
//! chain certificate across it (Lemma 5.1(iii)), and runs the impossibility
//! pipeline of Corollary 5.2.

use layered_consensus::core::{
    check_consensus, similarity_chain_between, similarity_report, LayeredModel, Value,
};
use layered_consensus::protocols::FloodMin;
use layered_consensus::sync_mobile::MobileModel;

fn main() {
    let n = 3;
    let model = MobileModel::new(n, FloodMin::new(2));
    let x = model.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);

    println!("== the mobile-failure model M^mf with layering S₁ ==\n");
    println!("state x: inputs (0,1,1), round 0");

    // The layer S₁(x): one successor per environment action (j, [k]).
    let layer = model.s1_layer(&x);
    println!("layer S₁(x): {} distinct states", layer.len());
    for (i, y) in layer.iter().enumerate() {
        let knowledge: Vec<usize> = y.locals.iter().map(|ls| ls.known.len()).collect();
        println!("  state {i}: per-process #known-values = {knowledge:?}");
    }

    // Lemma 5.1(iii): the layer is similarity connected; extract an
    // explicit chain certificate between its extremes and re-verify it.
    let rep = similarity_report(&model, &layer);
    println!(
        "\nsimilarity connectivity: connected = {}, diameter = {:?}",
        rep.connected, rep.diameter
    );
    let chain = similarity_chain_between(&model, &layer, 0, layer.len() - 1)
        .expect("Lemma 5.1(iii): the layer is similarity connected");
    println!(
        "certificate: chain of {} edge(s) from state 0 to state {}",
        chain.len(),
        layer.len() - 1
    );
    for (k, w) in chain.witnesses().iter().enumerate() {
        println!(
            "  edge {k}: agree modulo {}, observer {} non-failed in both",
            w.modulo, w.non_failed
        );
    }
    assert!(chain.verify(&model).is_ok(), "certificate must re-verify");
    println!("certificate re-verified from scratch: ok");

    // Corollary 5.2: no protocol solves consensus here. The checker
    // refutes FloodMin at every deadline we try.
    println!("\n== Corollary 5.2: refuting candidate protocols ==");
    for deadline in 1..=3u16 {
        let m = MobileModel::new(n, FloodMin::new(deadline));
        let report = check_consensus(&m, usize::from(deadline), 1);
        println!(
            "FloodMin({deadline}): {} ({} states)",
            report
                .violations
                .first()
                .map_or("unexpectedly passed!", |v| v.kind()),
            report.states_explored
        );
    }
    println!("\nNo deadline works — consensus is unsolvable under one mobile failure.");
}
