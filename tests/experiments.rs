//! Every experiment of the harness must match the paper's claim.
//!
//! This is the top-level reproduction gate: each test runs one experiment
//! (at quick scope, CI-friendly sizes) and asserts its verdict.

use layered_bench::{all_experiments, Scope};

#[test]
fn every_experiment_matches_the_paper() {
    for exp in all_experiments(Scope::Quick) {
        assert!(
            exp.ok,
            "experiment {} ({}) deviated from the paper:\n{}",
            exp.id, exp.claim, exp.table
        );
    }
}

#[test]
fn experiment_tables_are_nonempty() {
    for exp in all_experiments(Scope::Quick) {
        assert!(
            !exp.table.is_empty(),
            "experiment {} printed no rows",
            exp.id
        );
    }
}

#[test]
fn experiment_ids_are_unique() {
    let mut ids: Vec<&str> = all_experiments(Scope::Quick).iter().map(|e| e.id).collect();
    let before = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), before, "duplicate experiment ids");
}

#[test]
fn lemma_3_6_alone() {
    assert!(layered_bench::lemma_3_6(Scope::Quick).ok);
}

#[test]
fn theorem_4_2_alone() {
    assert!(layered_bench::theorem_4_2(Scope::Quick).ok);
}

#[test]
fn lower_bound_alone() {
    assert!(layered_bench::lower_bound(Scope::Quick).ok);
}

#[test]
fn task_solvability_alone() {
    assert!(layered_bench::task_solvability(Scope::Quick).ok);
}
