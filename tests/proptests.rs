//! Property-based tests over the kernel's combinatorial substrate and the
//! topology machinery.

use proptest::prelude::*;

use layered_consensus::core::graph::{Graph, UnionFind};
use layered_consensus::core::{binary_input_vectors, input_interpolation, Pid, Value};
use layered_consensus::topology::{Complex, Simplex};

fn arb_values(n: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(0u32..4, n).prop_map(|v| v.into_iter().map(Value::new).collect())
}

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..2 * n)
}

proptest! {
    /// Union-find component counts agree with graph BFS components.
    #[test]
    fn union_find_agrees_with_graph_components(edges in arb_edges(12)) {
        let mut g = Graph::new(12);
        let mut uf = UnionFind::new(12);
        for (a, b) in edges {
            g.add_edge(a, b);
            if a != b {
                uf.union(a, b);
            }
        }
        prop_assert_eq!(g.component_count(), uf.component_count());
        prop_assert_eq!(g.components().len(), uf.component_count());
    }

    /// Shortest paths returned by the graph are genuine paths with the
    /// length reported by the distance map.
    #[test]
    fn shortest_paths_are_consistent(edges in arb_edges(10), src in 0usize..10, dst in 0usize..10) {
        let mut g = Graph::new(10);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        let dist = g.distances(src);
        match g.shortest_path(src, dst) {
            Some(path) => {
                prop_assert_eq!(path[0], src);
                prop_assert_eq!(*path.last().unwrap(), dst);
                for w in path.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
                prop_assert_eq!(dist[dst], Some(path.len() - 1));
            }
            None => prop_assert_eq!(dist[dst], None),
        }
    }

    /// The Lemma 3.6 interpolation chain has the paper's shape for
    /// arbitrary (not just binary) input vectors.
    #[test]
    fn interpolation_shape(x in arb_values(5), y in arb_values(5)) {
        let chain = input_interpolation(&x, &y);
        prop_assert_eq!(chain.len(), 6);
        prop_assert_eq!(&chain[0], &x);
        prop_assert_eq!(&chain[5], &y);
        for (l, w) in chain.windows(2).enumerate() {
            for (i, (a, b)) in w[0].iter().zip(&w[1]).enumerate() {
                if i != l {
                    prop_assert_eq!(a, b, "only coordinate l may change");
                }
            }
        }
    }

    /// Simplex intersection is commutative, idempotent, and a face of both.
    #[test]
    fn simplex_intersection_laws(a in arb_values(4), b in arb_values(4)) {
        let sa = Simplex::full(&a);
        let sb = Simplex::full(&b);
        let i1 = sa.intersection(&sb);
        let i2 = sb.intersection(&sa);
        prop_assert_eq!(&i1, &i2);
        prop_assert!(i1.is_face_of(&sa));
        prop_assert!(i1.is_face_of(&sb));
        prop_assert_eq!(sa.intersection(&sa), sa);
    }

    /// Complexes contain every face of every facet, and facet absorption
    /// never loses membership.
    #[test]
    fn complex_closure(vs in proptest::collection::vec(arb_values(3), 1..6)) {
        let facets: Vec<Simplex> = vs.iter().map(|v| Simplex::full(v)).collect();
        let c = Complex::from_facets(facets.clone());
        for f in &facets {
            prop_assert!(c.contains(f));
            // every single-vertex face
            for (p, v) in f.vertices() {
                prop_assert!(c.contains(&Simplex::from_pairs([(p, v)])));
            }
        }
        prop_assert!(c.contains(&Simplex::new()));
    }

    /// Thick-connectivity is monotone in k: if a complex is k-thick
    /// connected it is (k+1)-thick connected.
    #[test]
    fn thick_connectivity_monotone(vs in proptest::collection::vec(arb_values(3), 1..6)) {
        let c: Complex = vs.iter().map(|v| Simplex::full(v)).collect();
        for k in 0..3 {
            if c.is_k_thick_connected(3, k) {
                prop_assert!(c.is_k_thick_connected(3, k + 1));
            }
        }
        // n-thick connectivity always holds for non-empty value-sharing...
        // at least when every pair intersects in >= 0 vertices, i.e. always.
        prop_assert!(c.is_k_thick_connected(3, 3));
    }

    /// Binary input vectors are exactly the 2^n distinct assignments.
    #[test]
    fn binary_vectors_are_complete(n in 1usize..6) {
        let vecs = binary_input_vectors(n);
        prop_assert_eq!(vecs.len(), 1 << n);
        let mut sorted = vecs.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), 1 << n);
        for v in &vecs {
            prop_assert!(v.iter().all(|x| x.is_binary()));
        }
    }

    /// Pid ordering matches index ordering.
    #[test]
    fn pid_order_matches_index(a in 0usize..200, b in 0usize..200) {
        prop_assert_eq!(Pid::new(a).cmp(&Pid::new(b)), a.cmp(&b));
    }
}
