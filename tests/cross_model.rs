//! Cross-model integration tests: the same kernel analyses run unchanged
//! over all four models, and the paper's uniform claims hold in each.

use layered_consensus::async_mp::MpModel;
use layered_consensus::async_sm::SmModel;
use layered_consensus::core::{
    build_bivalent_run, check_consensus, check_fault_independence, check_graded, similarity_report,
    LayeredModel, Valence, ValenceSolver, Value,
};
use layered_consensus::protocols::{
    FloodMin, MpFloodMin, MpRelayRace, SmFloodMin, SmRelayRace, SyncRelayRace,
};
use layered_consensus::sync_crash::CrashModel;
use layered_consensus::sync_mobile::MobileModel;

/// The paper's uniform impossibility: the same candidate-protocol family is
/// refuted by the same engine in all three 1-resilient models.
#[test]
fn flooding_consensus_is_refuted_in_every_1_resilient_model() {
    let r = 2;
    assert!(!check_consensus(&MobileModel::new(3, FloodMin::new(r as u16)), r, 1).passed());
    assert!(!check_consensus(&SmModel::new(3, SmFloodMin::new(r as u16)), r, 1).passed());
    assert!(!check_consensus(&MpModel::new(3, MpFloodMin::new(r as u16)), r, 1).passed());
}

/// ...while the t-resilient synchronous model admits a solution at t + 1
/// rounds — the asymmetry the layered analysis explains.
#[test]
fn synchronous_model_admits_consensus_at_t_plus_one() {
    assert!(check_consensus(&CrashModel::new(3, 1, FloodMin::new(2)), 2, 1).passed());
}

/// Structural contracts hold in every model.
#[test]
fn structural_contracts_hold_in_every_model() {
    let mobile = MobileModel::new(3, FloodMin::new(2));
    let sm = SmModel::new(3, SmFloodMin::new(2));
    let mp = MpModel::new(3, MpFloodMin::new(2));
    let crash = CrashModel::new(3, 1, FloodMin::new(2));

    assert_eq!(check_graded(&mobile, 2), None);
    assert_eq!(check_graded(&sm, 2), None);
    assert_eq!(check_graded(&mp, 1), None);
    assert_eq!(check_graded(&crash, 2), None);

    assert_eq!(check_fault_independence(&mobile, 1), None);
    assert_eq!(check_fault_independence(&sm, 1), None);
    assert_eq!(check_fault_independence(&mp, 1), None);
    assert_eq!(check_fault_independence(&crash, 1), None);
}

/// Con₀ is similarity connected in every model (Lemma 3.6's first half),
/// with the diameter n realized by the interpolation chain.
#[test]
fn con0_similarity_connected_everywhere() {
    fn check<M: LayeredModel>(m: &M) {
        let rep = similarity_report(m, &m.initial_states());
        assert!(rep.connected);
        assert_eq!(rep.diameter, Some(m.num_processes()));
    }
    check(&MobileModel::new(3, FloodMin::new(2)));
    check(&SmModel::new(3, SmFloodMin::new(2)));
    check(&MpModel::new(3, MpFloodMin::new(2)));
    check(&CrashModel::new(3, 1, FloodMin::new(2)));
}

/// The RelayRace family is agreement-safe in every model: an exhaustive
/// sweep finds no agreement or validity violation at any depth (decision
/// violations are expected — the leader can be silenced).
#[test]
fn relay_race_is_agreement_safe_everywhere() {
    let mobile = MobileModel::new(3, SyncRelayRace);
    let report = check_consensus(&mobile, 3, 50);
    assert!(report.of_kind("agreement").next().is_none());
    assert!(report.of_kind("validity").next().is_none());

    let sm = SmModel::new(3, SmRelayRace);
    let report = check_consensus(&sm, 3, 50);
    assert!(report.of_kind("agreement").next().is_none());
    assert!(report.of_kind("validity").next().is_none());

    let mp = MpModel::new(3, MpRelayRace);
    let report = check_consensus(&mp, 2, 50);
    assert!(report.of_kind("agreement").next().is_none());
    assert!(report.of_kind("validity").next().is_none());
}

/// RelayRace has genuinely bivalent initial states in every model — the
/// scheduler decides the race.
#[test]
fn relay_race_is_bivalent_everywhere() {
    let mobile = MobileModel::new(3, SyncRelayRace);
    let mut solver = ValenceSolver::new(&mobile, 3);
    assert!(solver.bivalent_initial_state().is_some());

    let sm = SmModel::new(3, SmRelayRace);
    let mut solver = ValenceSolver::new(&sm, 3);
    assert!(solver.bivalent_initial_state().is_some());

    let mp = MpModel::new(3, MpRelayRace);
    let mut solver = ValenceSolver::new(&mp, 2);
    assert!(solver.bivalent_initial_state().is_some());
}

/// Bivalent runs of the full requested length exist in all three
/// 1-resilient models (Theorem 4.2's conclusion).
#[test]
fn bivalent_runs_exist_in_all_async_models() {
    let mobile = MobileModel::new(3, FloodMin::new(3));
    let mut solver = ValenceSolver::new(&mobile, 3);
    assert!(build_bivalent_run(&mut solver, 2).reached_target());

    let sm = SmModel::new(3, SmFloodMin::new(3));
    let mut solver = ValenceSolver::new(&sm, 3);
    assert!(build_bivalent_run(&mut solver, 2).reached_target());

    let mp = MpModel::new(3, MpFloodMin::new(2));
    let mut solver = ValenceSolver::new(&mp, 2);
    assert!(build_bivalent_run(&mut solver, 1).reached_target());
}

/// The unanimous initial states are univalent in every model (validity
/// pins the decision), while some mixed state is bivalent.
#[test]
fn unanimity_is_univalent_mixes_are_bivalent() {
    fn check<M: LayeredModel>(m: &M, horizon: usize) {
        let mut solver = ValenceSolver::new(m, horizon);
        let zeros = m.initial_state(&vec![Value::ZERO; m.num_processes()]);
        let ones = m.initial_state(&vec![Value::ONE; m.num_processes()]);
        assert_eq!(solver.valence(&zeros), Valence::Univalent(Value::ZERO));
        assert_eq!(solver.valence(&ones), Valence::Univalent(Value::ONE));
        assert!(solver.bivalent_initial_state().is_some());
    }
    check(&MobileModel::new(3, FloodMin::new(2)), 2);
    check(&SmModel::new(3, SmFloodMin::new(2)), 2);
    check(&MpModel::new(3, MpFloodMin::new(2)), 2);
    check(&CrashModel::new(3, 1, FloodMin::new(2)), 2);
}

/// Exploding the deadline does not rescue flooding consensus in the mobile
/// model: deeper deadlines fail too (the violation merely moves deeper).
#[test]
fn longer_deadlines_do_not_help_in_mobile_model() {
    for r in 1..=3usize {
        let m = MobileModel::new(3, FloodMin::new(r as u16));
        assert!(
            !check_consensus(&m, r, 1).passed(),
            "FloodMin({r}) unexpectedly passed in M^mf"
        );
    }
}

/// Packaged impossibility witnesses build and re-verify in every
/// 1-resilient model — the complete Theorem 4.2 argument as a checkable
/// artifact.
#[test]
fn impossibility_witnesses_verify_in_every_model() {
    use layered_consensus::core::ImpossibilityWitness;

    let mobile = MobileModel::new(3, FloodMin::new(3));
    let w = ImpossibilityWitness::build(&mobile, 3, 2).expect("mobile witness");
    assert_eq!(w.len(), 2);
    assert!(w.verify(&mobile).is_ok());

    let sm = SmModel::new(3, SmFloodMin::new(3));
    let w = ImpossibilityWitness::build(&sm, 3, 2).expect("shared-memory witness");
    assert!(w.verify(&sm).is_ok());

    let mp = MpModel::new(3, MpFloodMin::new(2));
    let w = ImpossibilityWitness::build(&mp, 2, 1).expect("message-passing witness");
    assert!(w.verify(&mp).is_ok());
}

/// The synchronic layering transferred to message passing refutes the same
/// candidates as the permutation layering.
#[test]
fn synchronic_mp_agrees_with_permutation_mp() {
    use layered_consensus::async_mp::MpSyncModel;
    for r in 1..=2usize {
        let perm = MpModel::new(3, MpFloodMin::new(r as u16));
        let sync = MpSyncModel::new(3, MpFloodMin::new(r as u16));
        assert_eq!(
            check_consensus(&perm, r, 1).passed(),
            check_consensus(&sync, r, 1).passed()
        );
    }
}

/// The IIS model joins the equivalence class: same refutation verdicts.
#[test]
fn iis_agrees_with_the_other_models() {
    use layered_consensus::iis::IisModel;
    for r in 1..=2usize {
        let m = IisModel::new(3, SmFloodMin::new(r as u16));
        assert!(!check_consensus(&m, r, 1).passed());
    }
}
