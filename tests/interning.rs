//! Cross-model interning conformance: the sequential and parallel layer
//! scans must produce identical [`LayerScan`] reports over every model at
//! n = 3, and impossibility witnesses built through the interned engines
//! must still re-verify from scratch.
//!
//! These are the acceptance checks for the dense-id refactor: parallelism
//! may change how fast the state space is built, never what it contains.

use layered_consensus::async_mp::MpModel;
use layered_consensus::async_sm::SmModel;
use layered_consensus::core::{
    scan_layer_valence_connectivity, scan_layer_valence_connectivity_parallel,
    ImpossibilityWitness, LayeredModel, ValenceSolver,
};
use layered_consensus::iis::IisModel;
use layered_consensus::protocols::{FloodMin, MpFloodMin, SmFloodMin};
use layered_consensus::sync_crash::CrashModel;
use layered_consensus::sync_mobile::MobileModel;

/// Runs the Lemma 4.1 layer scan sequentially and in parallel (several
/// thread counts) and asserts the reports are identical.
fn assert_scan_parity<M>(model: &M, horizon: usize, depth: usize)
where
    M: LayeredModel + Sync,
    M::State: Send + Sync,
{
    let mut seq = ValenceSolver::new(model, horizon);
    let reference = scan_layer_valence_connectivity(&mut seq, depth, true);
    for threads in [1, 2, 8] {
        let mut par = ValenceSolver::new(model, horizon);
        let scan = scan_layer_valence_connectivity_parallel(&mut par, depth, true, threads);
        assert_eq!(reference, scan, "threads={threads}");
    }
}

#[test]
fn scan_parity_sync_mobile() {
    assert_scan_parity(&MobileModel::new(3, FloodMin::new(2)), 2, 1);
}

#[test]
fn scan_parity_async_sm() {
    assert_scan_parity(&SmModel::new(3, SmFloodMin::new(2)), 2, 1);
}

#[test]
fn scan_parity_async_mp() {
    assert_scan_parity(&MpModel::new(3, MpFloodMin::new(2)), 2, 1);
}

#[test]
fn scan_parity_sync_crash() {
    assert_scan_parity(&CrashModel::new(3, 1, FloodMin::new(2)), 2, 1);
}

#[test]
fn scan_parity_iis() {
    assert_scan_parity(&IisModel::new(3, SmFloodMin::new(2)), 2, 1);
}

/// Witnesses built by the interned Theorem 4.2 engine materialize into
/// state-typed chains that a fresh, untrusting solver accepts.
#[test]
fn interned_witnesses_verify_across_models() {
    let m = MobileModel::new(3, FloodMin::new(2));
    let w = ImpossibilityWitness::build(&m, 2, 1).expect("bivalent run in M^mf");
    assert!(w.verify(&m).is_ok());

    let m = MpModel::new(3, MpFloodMin::new(2));
    let w = ImpossibilityWitness::build(&m, 2, 1).expect("bivalent run in MP");
    assert!(w.verify(&m).is_ok());
}
