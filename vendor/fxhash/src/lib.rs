//! Offline stand-in for the `fxhash` crate (see vendor/README.md).
//!
//! Implements the Firefox/rustc "Fx" hash: a non-cryptographic multiply-
//! rotate mix consumed word by word. Unlike `std`'s SipHash it has no
//! per-process random keys, so hashes — and therefore any iteration order
//! or bucket layout derived from them — are identical across runs and
//! machines, which is exactly what the deterministic interning arenas in
//! this workspace want. It is *not* DoS-resistant; all keys hashed here are
//! produced by the engines themselves, never by an adversary.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash family: a 64-bit odd constant derived from
/// the golden ratio, chosen to diffuse low-order bits across the word.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx streaming hasher: for each input word `w`,
/// `state = (rotl5(state) ^ w) * K`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the tail length in so "ab" + "c" != "a" + "bc".
            self.mix(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (no keys, fully deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes a single `Hash` value with [`FxHasher`] (convenience mirror of
/// the real crate's `fxhash::hash64`).
pub fn hash64<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash64(&[1u8, 2, 3][..]), hash64(&[1u8, 2, 3][..]));
        assert_eq!(hash64("layered"), hash64("layered"));
    }

    #[test]
    fn distinguishes_tail_splits() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        a.write(b"c");
        let mut b = FxHasher::default();
        b.write(b"a");
        b.write(b"bc");
        // Not a hard guarantee for all inputs, but these must differ for the
        // tail-length fold to be doing its job.
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(7, 49);
        assert_eq!(m.get(&7), Some(&49));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        assert!(s.insert("x"));
        assert!(!s.insert("x"));
    }
}
