//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Implements the API subset the workspace benches use — [`SeedableRng`],
//! [`Rng::random_range`], and [`rngs::StdRng`] — on top of a deterministic
//! splitmix64 generator, so network-isolated builds need no registry crates
//! and benchmark inputs are reproducible by construction.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods, mirroring the subset of `rand::Rng` in use.
pub trait Rng {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range(&mut self, range: Range<u32>) -> u32 {
        assert!(range.start < range.end, "empty sampling range");
        let span = u64::from(range.end - range.start);
        range.start + (self.next_u64() % span) as u32
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand`'s `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..9);
            assert!((3..9).contains(&v));
        }
    }
}
