//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Registry crates are unreachable in network-isolated builds, so this
//! vendored crate implements the subset of the criterion API the workspace
//! benches use: [`Criterion::benchmark_group`], per-group timing knobs,
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark body is warmed up
//! once, then timed over `sample_size` batches whose per-iteration wall
//! time is reported to stdout. There is no statistical analysis, HTML
//! report, or baseline comparison — the point is that `cargo bench`
//! compiles and produces honest order-of-magnitude numbers offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendered into it.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// A group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Target total measurement time for each benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up time (accepted for API compatibility; warm-up here is a
    /// single untimed run).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark that receives a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op; provided for API compatibility).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            timing: false,
        };
        // Untimed warm-up pass.
        f(&mut b);
        b.timing = true;
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            f(&mut b);
            if Instant::now() >= deadline {
                break;
            }
        }
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / u32::try_from(b.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        println!("{}/{id}: {per_iter:?}/iter ({} iters)", self.name, b.iters);
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
    timing: bool,
}

impl Bencher {
    /// Times `routine`, discarding its output via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        if self.timing {
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a benchmark group runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .measurement_time(Duration::from_millis(50))
                .warm_up_time(Duration::from_millis(1));
            g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("g", 2), &5u32, |b, &x| {
                b.iter(|| black_box(x) * 2)
            });
            g.finish();
        }
        // warm-up + up to sample_size timed runs
        assert!(runs >= 2);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
