//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The workspace builds in network-isolated environments, so registry
//! dependencies cannot be fetched. This vendored crate implements the small
//! subset of the proptest API the test suites use — [`Strategy`] with
//! `prop_map`, range and tuple strategies, [`collection::vec`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros — driven by
//! a deterministic splitmix64 generator seeded from the test name, so runs
//! are reproducible without any external source of randomness.
//!
//! It is intentionally simpler than the real crate: cases are sampled (no
//! shrinking), and failures surface as ordinary assertion panics with the
//! case number in the message.

#![forbid(unsafe_code)]

/// Number of cases each `proptest!` test runs.
pub const NUM_CASES: usize = 64;

pub mod test_runner {
    //! The deterministic random source behind the sampled cases.

    /// Splitmix64 generator; deterministic per test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from `name` (e.g. the test function name), so
        /// every run of the same test draws the same cases.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling range");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Anything that can bound the length of a generated collection.
    pub trait SizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy generating vectors whose elements come from `element` and
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines sampled property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that draws [`NUM_CASES`] argument tuples from the strategies and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..$crate::NUM_CASES {
                    let _ = case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (3u32..7).sample(&mut rng);
            assert!((3..7).contains(&v));
            let w = (2usize..=4).sample(&mut rng);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::deterministic("lens");
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..10, 1..4).sample(&mut rng);
            assert!((1..=3).contains(&v.len()));
            let w = crate::collection::vec(0u32..10, 5usize).sample(&mut rng);
            assert_eq!(w.len(), 5);
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::deterministic("compose");
        let s = (0u32..5, 0usize..=2).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            assert!(s.sample(&mut rng) <= 6);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0u32..10, b in 0u32..10) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
