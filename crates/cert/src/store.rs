//! The content-addressed certificate store.
//!
//! # Layout
//!
//! ```text
//! <root>/v1/objects/<hh>/<hash>.json   one file per certificate; the file
//!                                      bytes are exactly the canonical
//!                                      encoding, and <hash> is their
//!                                      SHA-256 (<hh> = first two hex chars)
//! <root>/v1/index.jsonl                append-only query index: one
//!                                      canonical JSON line per stored
//!                                      certificate (model, n, layering,
//!                                      claim, kind, hash)
//! ```
//!
//! Writes dedup by address: putting a certificate whose bytes are already
//! present is a no-op on the object tree. Reads re-hash the file bytes
//! against the address before parsing, so on-disk corruption surfaces as
//! [`StoreError::Corrupt`] instead of a wrong answer. The index is
//! rebuildable from the object tree; it exists so queries don't have to
//! crawl and parse every object.

use std::io::Write;
use std::path::{Path, PathBuf};

use layered_core::telemetry::json::Json;
use layered_core::telemetry::Observer;

use crate::cert::{CertError, Certificate};
use crate::hash::{is_hash, sha256_hex};

/// One line of the query index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Model registry key.
    pub model: String,
    /// Number of processes.
    pub n: usize,
    /// Layering key.
    pub layering: String,
    /// Claim key.
    pub claim: String,
    /// Certificate kind key.
    pub kind: String,
    /// Content address of the certificate.
    pub hash: String,
}

impl IndexEntry {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("model".into(), Json::from(self.model.as_str())),
            ("n".into(), Json::from(self.n as u64)),
            ("layering".into(), Json::from(self.layering.as_str())),
            ("claim".into(), Json::from(self.claim.as_str())),
            ("kind".into(), Json::from(self.kind.as_str())),
            ("hash".into(), Json::from(self.hash.as_str())),
        ])
        .canonicalize()
    }

    fn from_json(json: &Json) -> Option<IndexEntry> {
        let text = |f: &str| json.get(f).and_then(Json::as_str).map(str::to_string);
        Some(IndexEntry {
            model: text("model")?,
            n: usize::try_from(json.get("n").and_then(Json::as_u64)?).ok()?,
            layering: text("layering")?,
            claim: text("claim")?,
            kind: text("kind")?,
            hash: text("hash").filter(|h| is_hash(h))?,
        })
    }
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O error, with the operation that hit it.
    Io(&'static str, std::io::Error),
    /// A stored object's bytes no longer hash to its address.
    Corrupt {
        /// The address whose file failed the integrity re-hash.
        hash: String,
    },
    /// A stored object's bytes hash correctly but don't decode.
    Undecodable {
        /// The address of the undecodable object.
        hash: String,
        /// What the decoder rejected.
        error: CertError,
    },
    /// The argument is not a well-formed content address.
    BadAddress,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(op, e) => write!(f, "store I/O ({op}): {e}"),
            StoreError::Corrupt { hash } => {
                write!(f, "object {hash} failed its integrity re-hash")
            }
            StoreError::Undecodable { hash, error } => {
                write!(f, "object {hash} does not decode: {error}")
            }
            StoreError::BadAddress => write!(f, "not a certificate address (64 hex chars)"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A content-addressed certificate store rooted at one directory (see the
/// [module docs](self) for the layout).
#[derive(Debug)]
pub struct CertStore {
    root: PathBuf,
    index: Vec<IndexEntry>,
}

impl CertStore {
    /// Opens (creating if needed) the store under `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory tree cannot be created or the
    /// index cannot be read. Unparsable index lines are skipped — the
    /// index is advisory; objects remain addressable by hash.
    pub fn open(dir: &Path) -> Result<CertStore, StoreError> {
        let root = dir.join("v1");
        std::fs::create_dir_all(root.join("objects"))
            .map_err(|e| StoreError::Io("create store directories", e))?;
        let mut index = Vec::new();
        let index_path = root.join("index.jsonl");
        if index_path.exists() {
            let text = std::fs::read_to_string(&index_path)
                .map_err(|e| StoreError::Io("read index", e))?;
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                if let Some(entry) = Json::parse(line)
                    .ok()
                    .as_ref()
                    .and_then(IndexEntry::from_json)
                {
                    index.push(entry);
                }
            }
        }
        Ok(CertStore { root, index })
    }

    /// The object path of a content address.
    fn object_path(&self, hash: &str) -> PathBuf {
        self.root
            .join("objects")
            .join(&hash[..2])
            .join(format!("{hash}.json"))
    }

    /// Stores `cert`, deduplicating by content address.
    ///
    /// Returns `(hash, fresh)`: `fresh` is `false` when the identical bytes
    /// were already present (the `cert.store.puts` counter moves only on
    /// fresh writes).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn put(
        &mut self,
        cert: &Certificate,
        obs: &dyn Observer,
    ) -> Result<(String, bool), StoreError> {
        let bytes = cert.encode();
        let hash = sha256_hex(bytes.as_bytes());
        let path = self.object_path(&hash);
        let fresh = !path.exists();
        if fresh {
            let dir = path.parent().expect("object paths have a fan-out parent");
            std::fs::create_dir_all(dir).map_err(|e| StoreError::Io("create object dir", e))?;
            // Write-then-rename so a crashed writer can't leave a partial
            // object at its final address (partial bytes would fail the
            // integrity re-hash anyway, but this keeps the tree clean).
            let tmp = dir.join(format!("{hash}.tmp-{}", std::process::id()));
            std::fs::write(&tmp, bytes.as_bytes())
                .map_err(|e| StoreError::Io("write object", e))?;
            std::fs::rename(&tmp, &path).map_err(|e| StoreError::Io("commit object", e))?;
            obs.counter("cert.store.puts", 1);
        }
        let entry = IndexEntry {
            model: cert.meta.model.clone(),
            n: cert.meta.n,
            layering: cert.meta.layering.clone(),
            claim: cert.meta.claim.clone(),
            kind: cert.kind.key().to_string(),
            hash: hash.clone(),
        };
        if !self.index.contains(&entry) {
            let line = format!("{}\n", entry.to_json());
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.root.join("index.jsonl"))
                .map_err(|e| StoreError::Io("open index", e))?;
            file.write_all(line.as_bytes())
                .map_err(|e| StoreError::Io("append index", e))?;
            self.index.push(entry);
        }
        Ok((hash, fresh))
    }

    /// Loads the certificate at `hash`, re-hashing the file bytes against
    /// the address first.
    ///
    /// Returns `Ok(None)` — and moves `cert.store.misses` — when no object
    /// has that address; moves `cert.store.hits` on success.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadAddress`] for a malformed hash,
    /// [`StoreError::Corrupt`] when the bytes fail the re-hash,
    /// [`StoreError::Undecodable`] when they hash correctly but don't
    /// parse, [`StoreError::Io`] on filesystem failures.
    pub fn get(&self, hash: &str, obs: &dyn Observer) -> Result<Option<Certificate>, StoreError> {
        if !is_hash(hash) {
            return Err(StoreError::BadAddress);
        }
        let path = self.object_path(hash);
        if !path.exists() {
            obs.counter("cert.store.misses", 1);
            return Ok(None);
        }
        let bytes = std::fs::read(&path).map_err(|e| StoreError::Io("read object", e))?;
        if sha256_hex(&bytes) != hash {
            return Err(StoreError::Corrupt {
                hash: hash.to_string(),
            });
        }
        let cert = Certificate::decode(&bytes).map_err(|error| StoreError::Undecodable {
            hash: hash.to_string(),
            error,
        })?;
        obs.counter("cert.store.hits", 1);
        Ok(Some(cert))
    }

    /// The most recent index entry matching `(model, n, claim)`, if any.
    ///
    /// The miss is *not* counted here — a query miss that falls through to
    /// compute-and-cache is counted by the [`get`](Self::get)/`put` pair
    /// the caller drives.
    #[must_use]
    pub fn query(&self, model: &str, n: usize, claim: &str) -> Option<&IndexEntry> {
        self.index
            .iter()
            .rev()
            .find(|e| e.model == model && e.n == n && e.claim == claim)
    }

    /// All index entries, in append order.
    #[must_use]
    pub fn entries(&self) -> &[IndexEntry] {
        &self.index
    }

    /// Number of indexed certificates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The store's root directory (the one containing `v1/`).
    #[must_use]
    pub fn root(&self) -> &Path {
        self.root.parent().unwrap_or(&self.root)
    }
}
