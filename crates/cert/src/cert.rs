//! The certificate wire format: one canonical JSON object per artifact.
//!
//! A [`Certificate`] wraps one proof artifact — an impossibility witness, a
//! bivalent run, a violating schedule, or a scan verdict — together with
//! the metadata that makes it queryable (model, `n`, layering, claim). Its
//! canonical encoding is produced by `Json::canonicalize`, so equal
//! certificates are byte-identical, and its address is the SHA-256 of
//! exactly those bytes ([`Certificate::hash`]). The store persists the
//! encoding verbatim; any re-encoding round-trips to the same bytes and
//! therefore the same address.

use layered_core::telemetry::json::Json;

use crate::hash::sha256_hex;

/// The wire-format version this crate reads and writes.
pub const WIRE_VERSION: u64 = 1;

/// What kind of proof artifact a certificate carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertKind {
    /// A Theorem 4.2 impossibility witness (ever-bivalent chain plus
    /// undecided counts), re-verifiable from scratch.
    Witness,
    /// A bivalent execution (e.g. the Lemma 6.1 chain in the t-resilient
    /// model): the same chain shape, without the impossibility claim.
    Run,
    /// A recorded adversary schedule whose replay exhibits the claimed
    /// outcome class (typically a ddmin-shrunk safety violation).
    Schedule,
    /// A layer-scan verdict (Lemma 5.1 style): layers checked, states
    /// seen, connectivity verdict, with the supporting witness embedded.
    ScanVerdict,
}

impl CertKind {
    /// The stable string form used on the wire.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            CertKind::Witness => "witness",
            CertKind::Run => "run",
            CertKind::Schedule => "schedule",
            CertKind::ScanVerdict => "scan_verdict",
        }
    }

    /// Parses the wire form back.
    #[must_use]
    pub fn from_key(key: &str) -> Option<Self> {
        match key {
            "witness" => Some(CertKind::Witness),
            "run" => Some(CertKind::Run),
            "schedule" => Some(CertKind::Schedule),
            "scan_verdict" => Some(CertKind::ScanVerdict),
            _ => None,
        }
    }
}

/// The query coordinates of a certificate: which claim, about which model
/// instance, it certifies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertMeta {
    /// Model registry key (`sync-mobile`, `sync-crash`, `async-sm`,
    /// `async-mp`).
    pub model: String,
    /// Number of processes of the instance.
    pub n: usize,
    /// Layering key (`s1`, `full`, `s_t`, `s_rw`, `s_per`).
    pub layering: String,
    /// Claim key (`lemma_5_1`, `theorem_4_2`, `lemma_6_1`,
    /// `sim_violation`).
    pub claim: String,
}

/// Why decoding a certificate failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertError {
    /// The bytes are not valid JSON.
    NotJson,
    /// A required field is missing or has the wrong JSON type.
    Malformed(&'static str),
    /// The `v` field names a version this crate does not read.
    BadVersion,
    /// The `kind` field is not a known [`CertKind`].
    UnknownKind,
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::NotJson => write!(f, "certificate bytes are not valid JSON"),
            CertError::Malformed(what) => write!(f, "malformed certificate: {what}"),
            CertError::BadVersion => write!(f, "unsupported certificate wire version"),
            CertError::UnknownKind => write!(f, "unknown certificate kind"),
        }
    }
}

impl std::error::Error for CertError {}

/// One stored/served proof artifact (see the [module docs](self)).
#[derive(Clone, Debug, PartialEq)]
pub struct Certificate {
    /// Query coordinates.
    pub meta: CertMeta,
    /// Artifact kind.
    pub kind: CertKind,
    /// Kind-specific payload (canonicalized at construction).
    pub body: Json,
}

impl Certificate {
    /// Packages a body under its metadata, canonicalizing the payload so
    /// [`hash`](Self::hash) is independent of member ordering at the call
    /// site.
    #[must_use]
    pub fn new(meta: CertMeta, kind: CertKind, body: Json) -> Self {
        Certificate {
            meta,
            kind,
            body: body.canonicalize(),
        }
    }

    /// The certificate as canonical JSON:
    /// `{"v":1,"kind":…,"model":…,"n":…,"layering":…,"claim":…,"body":…}`
    /// with keys recursively sorted.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("v".into(), Json::from(WIRE_VERSION)),
            ("kind".into(), Json::from(self.kind.key())),
            ("model".into(), Json::from(self.meta.model.as_str())),
            ("n".into(), Json::from(self.meta.n as u64)),
            ("layering".into(), Json::from(self.meta.layering.as_str())),
            ("claim".into(), Json::from(self.meta.claim.as_str())),
            ("body".into(), self.body.clone()),
        ])
        .canonicalize()
    }

    /// The canonical encoding: the single-line rendering of
    /// [`to_json`](Self::to_json), no trailing newline. These are the exact
    /// bytes the store persists and the server serves.
    #[must_use]
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }

    /// The content address: SHA-256 of [`encode`](Self::encode), as 64 hex
    /// characters.
    #[must_use]
    pub fn hash(&self) -> String {
        sha256_hex(self.encode().as_bytes())
    }

    /// Decodes a certificate from its JSON form.
    ///
    /// # Errors
    ///
    /// Any [`CertError`] variant describing what is wrong with the shape.
    pub fn from_json(json: &Json) -> Result<Self, CertError> {
        let version = json
            .get("v")
            .and_then(Json::as_u64)
            .ok_or(CertError::Malformed("missing v"))?;
        if version != WIRE_VERSION {
            return Err(CertError::BadVersion);
        }
        let kind = CertKind::from_key(
            json.get("kind")
                .and_then(Json::as_str)
                .ok_or(CertError::Malformed("missing kind"))?,
        )
        .ok_or(CertError::UnknownKind)?;
        let text = |field: &'static str| -> Result<String, CertError> {
            json.get(field)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(CertError::Malformed(field))
        };
        let meta = CertMeta {
            model: text("model")?,
            n: json
                .get("n")
                .and_then(Json::as_u64)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or(CertError::Malformed("missing n"))?,
            layering: text("layering")?,
            claim: text("claim")?,
        };
        let body = json
            .get("body")
            .ok_or(CertError::Malformed("missing body"))?
            .clone()
            .canonicalize();
        Ok(Certificate { meta, kind, body })
    }

    /// Decodes a certificate from raw bytes (parse + [`from_json`]).
    ///
    /// This does *not* check a content hash — integrity is the store's job,
    /// which re-hashes file bytes against the address on every read.
    ///
    /// # Errors
    ///
    /// [`CertError::NotJson`] for unparsable bytes, else as
    /// [`from_json`](Self::from_json).
    pub fn decode(bytes: &[u8]) -> Result<Self, CertError> {
        let text = std::str::from_utf8(bytes).map_err(|_| CertError::NotJson)?;
        let json = Json::parse(text).map_err(|_| CertError::NotJson)?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Certificate {
        Certificate::new(
            CertMeta {
                model: "sync-mobile".into(),
                n: 3,
                layering: "s1".into(),
                claim: "theorem_4_2".into(),
            },
            CertKind::Witness,
            Json::Object(vec![
                ("path".into(), Json::Array(vec![Json::from(1u64)])),
                ("horizon".into(), Json::from(2u64)),
            ]),
        )
    }

    #[test]
    fn encode_decode_round_trips() {
        let cert = sample();
        let bytes = cert.encode();
        let back = Certificate::decode(bytes.as_bytes()).expect("decodable");
        assert_eq!(back, cert);
        assert_eq!(back.encode(), bytes, "re-encoding is byte-identical");
        assert_eq!(back.hash(), cert.hash());
    }

    #[test]
    fn hash_is_order_independent() {
        // Same body members in a different order: canonicalization makes
        // the address identical.
        let a = sample();
        let b = Certificate::new(
            a.meta.clone(),
            a.kind,
            Json::Object(vec![
                ("horizon".into(), Json::from(2u64)),
                ("path".into(), Json::Array(vec![Json::from(1u64)])),
            ]),
        );
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn hash_changes_with_content() {
        let a = sample();
        let mut b = a.clone();
        b.meta.n = 4;
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn bad_shapes_are_rejected() {
        assert_eq!(Certificate::decode(b"not json"), Err(CertError::NotJson));
        let no_kind = r#"{"v":1,"model":"m","n":3,"layering":"l","claim":"c","body":{}}"#;
        assert_eq!(
            Certificate::decode(no_kind.as_bytes()),
            Err(CertError::Malformed("missing kind"))
        );
        let bad_version =
            r#"{"v":9,"kind":"witness","model":"m","n":3,"layering":"l","claim":"c","body":{}}"#;
        assert_eq!(
            Certificate::decode(bad_version.as_bytes()),
            Err(CertError::BadVersion)
        );
        let bad_kind =
            r#"{"v":1,"kind":"oracle","model":"m","n":3,"layering":"l","claim":"c","body":{}}"#;
        assert_eq!(
            Certificate::decode(bad_kind.as_bytes()),
            Err(CertError::UnknownKind)
        );
    }

    #[test]
    fn kind_keys_round_trip() {
        for kind in [
            CertKind::Witness,
            CertKind::Run,
            CertKind::Schedule,
            CertKind::ScanVerdict,
        ] {
            assert_eq!(CertKind::from_key(kind.key()), Some(kind));
        }
        assert_eq!(CertKind::from_key("zkp"), None);
    }
}
