//! The witness query server: a dependency-free HTTP/1.1 front end over a
//! [`CertStore`].
//!
//! # Routes
//!
//! * `GET /healthz` — liveness probe, answers `ok`.
//! * `GET /metrics` — the server's [`MetricsRegistry`] snapshot as JSON
//!   (store hit/miss/put counters, verify outcomes, request histograms).
//! * `GET /cert/<hash>` — the certificate at a content address, verbatim.
//! * `GET /query?model=<key>&n=<k>&claim=<key>` — the newest certificate
//!   for those coordinates; on a store miss, if the claim is computable
//!   and `n` is within the compute cap, the certificate is computed,
//!   stored, and served (`X-Cert-Source: computed`), so the next identical
//!   query is a store hit with byte-identical body.
//!
//! Every certificate is re-verified ([`registry::verify`]) before being
//! served — a corrupted or stale artifact produces a `500`, never a wrong
//! answer. Served bytes are exactly [`Certificate::encode`], so cold
//! (computed) and warm (store-hit) responses for the same coordinates are
//! byte-identical and hash to the `X-Cert-Hash` header.
//!
//! The protocol subset is deliberately tiny — `GET` only,
//! `Connection: close`, one response per connection — because the point is
//! serving verified artifacts fast with zero dependencies, not generality.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

use layered_core::telemetry::clock;
use layered_core::telemetry::{MetricsRegistry, Observer};

use crate::cert::Certificate;
use crate::registry;
use crate::store::CertStore;

/// Server tunables.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Largest `n` for which a `/query` miss triggers compute-and-cache
    /// (further capped per model by [`registry::max_compute_n`]).
    pub max_compute_n: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_compute_n: 4 }
    }
}

/// One HTTP response, ready to write.
struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    extra_headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn ok_json(body: String) -> Response {
        Response {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    fn text(status: u16, reason: &'static str, body: &str) -> Response {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The query server: owns the listener, the store, and the metrics
/// registry that `/metrics` reports.
pub struct CertServer {
    listener: TcpListener,
    store: Arc<Mutex<CertStore>>,
    metrics: Arc<MetricsRegistry>,
    config: ServerConfig,
}

impl CertServer {
    /// Binds to `addr` (use port `0` for an ephemeral port) over `store`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, store: CertStore, config: ServerConfig) -> std::io::Result<Self> {
        Ok(CertServer {
            listener: TcpListener::bind(addr)?,
            store: Arc::new(Mutex::new(store)),
            metrics: Arc::new(MetricsRegistry::new()),
            config,
        })
    }

    /// The bound address (reports the actual ephemeral port after binding
    /// to port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The registry behind `/metrics`, shareable before [`run`](Self::run)
    /// consumes the server (tests assert on counters through this).
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Serves forever: accepts connections and answers each on its own
    /// thread.
    ///
    /// # Errors
    ///
    /// Returns only on a fatal accept error; per-connection I/O errors are
    /// counted (`cert.server.errors`) and dropped.
    pub fn run(self) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let store = Arc::clone(&self.store);
            let metrics = Arc::clone(&self.metrics);
            let config = self.config;
            std::thread::spawn(move || {
                if handle_connection(stream, &store, &metrics, config).is_err() {
                    metrics.counter("cert.server.errors", 1);
                }
            });
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    store: &Mutex<CertStore>,
    metrics: &MetricsRegistry,
    config: ServerConfig,
) -> std::io::Result<()> {
    let started = clock::monotonic_ns();
    let target = read_request_target(&mut stream)?;
    let response = match target {
        Some(path) => route(&path, store, metrics, config),
        None => Response::text(400, "Bad Request", "only GET is supported\n"),
    };
    metrics.counter("cert.server.requests", 1);
    if response.status >= 400 {
        metrics.counter("cert.server.errors", 1);
    }
    metrics.histogram(
        "cert.server.request_ns",
        clock::monotonic_ns().saturating_sub(started),
    );
    response.write_to(&mut stream)
}

/// Reads the request head; returns the target of a `GET`, `None` for any
/// other method or a malformed request line.
fn read_request_target(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers so the client sees a clean close.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(target)) => Ok(Some(target.to_string())),
        _ => Ok(None),
    }
}

fn route(
    path: &str,
    store: &Mutex<CertStore>,
    metrics: &MetricsRegistry,
    config: ServerConfig,
) -> Response {
    if path == "/healthz" {
        return Response::text(200, "OK", "ok\n");
    }
    if path == "/metrics" {
        let snapshot = metrics.snapshot();
        return Response::ok_json(format!("{}\n", snapshot.to_json().canonicalize()));
    }
    if let Some(hash) = path.strip_prefix("/cert/") {
        return serve_by_hash(hash, store, metrics);
    }
    if let Some(query) = path.strip_prefix("/query?") {
        return serve_query(query, store, metrics, config);
    }
    Response::text(404, "Not Found", "no such route\n")
}

fn serve_by_hash(hash: &str, store: &Mutex<CertStore>, metrics: &MetricsRegistry) -> Response {
    let loaded = {
        let guard = store.lock().expect("store mutex poisoned");
        guard.get(hash, metrics)
    };
    match loaded {
        Ok(Some(cert)) => serve_verified(&cert, "store", metrics),
        Ok(None) => Response::text(404, "Not Found", "no certificate at that address\n"),
        Err(e) => Response::text(500, "Internal Server Error", &format!("{e}\n")),
    }
}

fn serve_query(
    query: &str,
    store: &Mutex<CertStore>,
    metrics: &MetricsRegistry,
    config: ServerConfig,
) -> Response {
    let (mut model, mut n, mut claim) = (None, None, None);
    for pair in query.split('&') {
        match pair.split_once('=') {
            Some(("model", v)) => model = Some(v.to_string()),
            Some(("n", v)) => n = v.parse::<usize>().ok(),
            Some(("claim", v)) => claim = Some(v.to_string()),
            _ => {}
        }
    }
    let (Some(model), Some(n), Some(claim)) = (model, n, claim) else {
        return Response::text(400, "Bad Request", "need model=, n=, claim=\n");
    };

    // Warm path: newest stored certificate for these coordinates.
    let stored = {
        let guard = store.lock().expect("store mutex poisoned");
        match guard.query(&model, n, &claim).map(|e| e.hash.clone()) {
            Some(hash) => guard.get(&hash, metrics).transpose(),
            None => {
                metrics.counter("cert.store.misses", 1);
                None
            }
        }
    };
    match stored {
        Some(Ok(cert)) => return serve_verified(&cert, "store", metrics),
        Some(Err(e)) => return Response::text(500, "Internal Server Error", &format!("{e}\n")),
        None => {}
    }

    // Cold path: compute-and-cache when the registry can.
    if !registry::claims_for(&model).contains(&claim.as_str()) {
        return Response::text(404, "Not Found", "no stored certificate for that claim\n");
    }
    if n > config.max_compute_n.min(registry::max_compute_n(&model)) {
        return Response::text(
            404,
            "Not Found",
            "no stored certificate, and n exceeds the compute cap\n",
        );
    }
    match registry::compute(&model, n, &claim, metrics) {
        Ok(cert) => {
            metrics.counter("cert.server.computed", 1);
            let put = {
                let mut guard = store.lock().expect("store mutex poisoned");
                guard.put(&cert, metrics)
            };
            if let Err(e) = put {
                return Response::text(500, "Internal Server Error", &format!("{e}\n"));
            }
            serve_verified(&cert, "computed", metrics)
        }
        Err(e) => Response::text(500, "Internal Server Error", &format!("{e}\n")),
    }
}

/// The single exit point for certificate bytes: re-verify, then serve the
/// canonical encoding with its address and provenance attached.
fn serve_verified(cert: &Certificate, source: &str, metrics: &MetricsRegistry) -> Response {
    if let Err(e) = registry::verify(cert, metrics) {
        return Response::text(500, "Internal Server Error", &format!("{e}\n"));
    }
    let body = cert.encode();
    let mut response = Response::ok_json(body);
    response
        .extra_headers
        .push(("X-Cert-Hash".to_string(), cert.hash()));
    response
        .extra_headers
        .push(("X-Cert-Source".to_string(), source.to_string()));
    response
}
