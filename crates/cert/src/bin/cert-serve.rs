//! `cert-serve` — serve a certificate store over HTTP.
//!
//! ```text
//! cert-serve --store <dir> [--addr <host:port>] [--max-compute-n <k>]
//! ```
//!
//! Binds (default `127.0.0.1:7841`; use port `0` for an ephemeral port),
//! prints the bound address on the first line of stdout, and serves until
//! killed. Routes: `/healthz`, `/metrics`, `/cert/<hash>`,
//! `/query?model=&n=&claim=` — see `layered_cert::server` for semantics.

use std::path::PathBuf;
use std::process::ExitCode;

use layered_cert::{CertServer, CertStore, ServerConfig};

struct Args {
    store: PathBuf,
    addr: String,
    max_compute_n: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut store = None;
    let mut addr = "127.0.0.1:7841".to_string();
    let mut max_compute_n = 4usize;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--store" => store = Some(PathBuf::from(value("--store")?)),
            "--addr" => addr = value("--addr")?,
            "--max-compute-n" => {
                max_compute_n = value("--max-compute-n")?
                    .parse()
                    .map_err(|_| "--max-compute-n needs an integer".to_string())?;
            }
            "--help" | "-h" => {
                return Err("usage: cert-serve --store <dir> [--addr <host:port>] \
                            [--max-compute-n <k>]"
                    .to_string())
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(Args {
        store: store.ok_or("--store <dir> is required")?,
        addr,
        max_compute_n,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let store = match CertStore::open(&args.store) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("cannot open store at {}: {e}", args.store.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "cert-serve: {} certificates indexed under {}",
        store.len(),
        args.store.display()
    );
    let config = ServerConfig {
        max_compute_n: args.max_compute_n,
    };
    let server = match CertServer::bind(&args.addr, store, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("{addr}"),
        Err(e) => {
            eprintln!("cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
