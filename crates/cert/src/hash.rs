//! The content hash addressing every certificate: a hand-rolled SHA-256.
//!
//! The store's integrity argument is end-to-end: the file name *is* the
//! SHA-256 of the file's exact bytes (the canonical JSON encoding of the
//! certificate), so any flipped byte — on disk, in transit, or from a
//! buggy encoder — changes the address and is caught by a re-hash on read.
//!
//! The implementation lives in `layered_core::hash` (the arena snapshot
//! format there shares the same digest for *its* integrity headers, and
//! the snapshot hash travels inside scan-verdict certificate bodies, so
//! both subsystems must agree on one function); this module re-exports it
//! under the store's historical path.

pub use layered_core::hash::{is_hash, sha256, sha256_hex};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_matches_fips_vector() {
        // Pin the re-export to a known-answer vector: a wrong function
        // behind this path would silently re-address every certificate.
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(sha256(b"").len(), 32);
        assert!(is_hash(&sha256_hex(b"abc")));
    }
}
