//! The claim registry: which certificates this crate can compute from
//! scratch, and how every stored certificate is re-verified before it is
//! served.
//!
//! # Computable claims
//!
//! | model         | claim         | kind           | construction                          |
//! |---------------|---------------|----------------|---------------------------------------|
//! | `sync-mobile` | `lemma_5_1`   | `scan_verdict` | depth-1 layer-connectivity scan at horizon 2 plus the Theorem 4.2 witness |
//! | `sync-mobile` | `theorem_4_2` | `witness`      | one-layer ever-bivalent chain, horizon 2 |
//! | `sync-crash`  | `lemma_6_1`   | `run`          | Lemma 6.1 bivalent `S^t`-chain from a bivalent initial state, horizon `t+1` |
//! | `async-sm`    | `theorem_4_2` | `witness`      | one-layer ever-bivalent chain, horizon 2 |
//! | `async-mp`    | `theorem_4_2` | `witness`      | one-layer ever-bivalent chain, horizon 2 |
//!
//! `sim_violation` (kind `schedule`) certificates are *recorded* by the
//! simulation harness, never computed here — there is no way to conjure a
//! violating schedule on demand; [`verify`] replays them.
//!
//! # Verify-on-read policy
//!
//! Every certificate is re-verified before being served, in two tiers so
//! warm reads stay cheap while small instances get the full semantic
//! re-check:
//!
//! * **always** — the chain (or schedule) is *replayed against the model*:
//!   `trace_from_json` rebuilds the execution from its successor-index
//!   path, so a decoded trace is a genuine `S`-execution by construction
//!   and the stored fingerprints must match; undecided counts are
//!   recomputed and compared.
//! * **`n ≤ FULL_VERIFY_MAX_N`** — additionally the expensive semantic
//!   claims: full [`ImpossibilityWitness::verify`] for witnesses
//!   (bivalence, Lemma 3.1 counts, layer connectivity), per-state
//!   bivalence for runs, and `ExecutionTrace::validate` for replayed
//!   schedules.

use layered_core::telemetry::json::Json;
use layered_core::telemetry::Observer;
use layered_core::{
    scan_layer_valence_connectivity, undecided_non_failed, witness_from_json, witness_to_json,
    ImpossibilityWitness, LayeredModel, SimModel, ValenceSolver,
};
use layered_protocols::{FloodMin, MpFloodMin, SmFloodMin};
use layered_sim::{classify, Schedule};
use layered_sync_crash::lemma_6_1_chain;
use layered_sync_crash::CrashModel;
use layered_sync_mobile::MobileModel;

use crate::cert::{CertKind, CertMeta, Certificate};

/// Largest `n` at which the full semantic tier (bivalence, Lemma 3.1,
/// layer connectivity, `validate`) runs during verify-on-read; above it
/// only the always-on replay tier runs.
pub const FULL_VERIFY_MAX_N: usize = 3;

/// The claim key under which recorded violating schedules are stored.
pub const SIM_VIOLATION_CLAIM: &str = "sim_violation";

/// All model keys the registry knows.
pub const MODEL_KEYS: &[&str] = &[
    layered_sync_mobile::MODEL_KEY,
    layered_sync_crash::MODEL_KEY,
    layered_async_sm::MODEL_KEY,
    layered_async_mp::MODEL_KEY,
];

/// Why a compute or verify request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// The model key is not one of [`MODEL_KEYS`].
    UnknownModel,
    /// The claim key is not computable/verifiable for that model.
    UnknownClaim,
    /// `n` is outside the range the claim's construction supports.
    BadSize {
        /// Smallest supported `n`.
        min: usize,
        /// Largest `n` the registry will compute at.
        max: usize,
    },
    /// The engine could not build the claimed artifact (e.g. no bivalent
    /// initial state at this size).
    Unconstructible(&'static str),
    /// A stored certificate failed re-verification.
    VerifyFailed(&'static str),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownModel => write!(f, "unknown model key"),
            RegistryError::UnknownClaim => write!(f, "unknown claim for this model"),
            RegistryError::BadSize { min, max } => {
                write!(
                    f,
                    "n out of range for this claim (supported: {min}..={max})"
                )
            }
            RegistryError::Unconstructible(what) => {
                write!(f, "artifact not constructible: {what}")
            }
            RegistryError::VerifyFailed(what) => write!(f, "verification failed: {what}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The layering key certificates for `model` carry.
#[must_use]
pub fn layering_key(model: &str) -> Option<&'static str> {
    match model {
        "sync-mobile" => Some("s1"),
        "sync-crash" => Some("s_t"),
        "async-sm" => Some("s_rw"),
        "async-mp" => Some("s_per"),
        _ => None,
    }
}

/// The claims the registry can compute for `model` (recorded
/// [`SIM_VIOLATION_CLAIM`] certificates are verifiable but not listed —
/// they cannot be computed on demand).
#[must_use]
pub fn claims_for(model: &str) -> &'static [&'static str] {
    match model {
        "sync-mobile" => layered_sync_mobile::CLAIM_KEYS,
        "sync-crash" => layered_sync_crash::CLAIM_KEYS,
        "async-sm" => layered_async_sm::CLAIM_KEYS,
        "async-mp" => layered_async_mp::CLAIM_KEYS,
        _ => &[],
    }
}

/// The largest `n` the registry will compute a certificate at for `model`
/// (the exhaustive engines are exponential in `n`; beyond this, serve only
/// what the harness stored).
#[must_use]
pub fn max_compute_n(model: &str) -> usize {
    match model {
        "sync-mobile" | "sync-crash" => 4,
        "async-sm" | "async-mp" => 3,
        _ => 0,
    }
}

/// The `t` used for `sync-crash` instances at size `n` — the same choice
/// the simulation batch makes.
#[must_use]
pub fn crash_resilience(n: usize) -> usize {
    (n / 2).clamp(1, n.saturating_sub(2).max(1))
}

fn meta(model: &str, n: usize, claim: &str) -> Result<CertMeta, RegistryError> {
    Ok(CertMeta {
        model: model.to_string(),
        n,
        layering: layering_key(model)
            .ok_or(RegistryError::UnknownModel)?
            .to_string(),
        claim: claim.to_string(),
    })
}

fn check_size(n: usize, min: usize, max: usize) -> Result<(), RegistryError> {
    if n < min || n > max {
        return Err(RegistryError::BadSize { min, max });
    }
    Ok(())
}

/// Builds the Theorem 4.2 witness certificate body for one model instance:
/// a one-layer ever-bivalent chain at horizon 2, serialized replayably.
fn witness_body<M: LayeredModel>(model: &M, _obs: &dyn Observer) -> Result<Json, RegistryError> {
    let witness = ImpossibilityWitness::build(model, 2, 1)
        .ok_or(RegistryError::Unconstructible("no ever-bivalent chain"))?;
    witness_to_json(model, &witness)
        .map_err(|_| RegistryError::Unconstructible("witness not serializable"))
}

fn lemma_5_1_body<M: LayeredModel>(model: &M, obs: &dyn Observer) -> Result<Json, RegistryError> {
    let mut solver = ValenceSolver::with_observer(model, 2, obs);
    let scan = scan_layer_valence_connectivity(&mut solver, 1, true);
    let witness = ImpossibilityWitness::build(model, 2, 1)
        .ok_or(RegistryError::Unconstructible("no ever-bivalent chain"))?;
    let witness_json = witness_to_json(model, &witness)
        .map_err(|_| RegistryError::Unconstructible("witness not serializable"))?;
    Ok(Json::Object(vec![
        ("depth".into(), Json::from(1u64)),
        ("horizon".into(), Json::from(2u64)),
        (
            "layers_checked".into(),
            Json::from(scan.layers_checked as u64),
        ),
        ("states_seen".into(), Json::from(scan.states_seen as u64)),
        ("connected".into(), Json::from(scan.all_connected())),
        ("witness".into(), witness_json),
    ]))
}

fn lemma_6_1_body(n: usize, obs: &dyn Observer) -> Result<Json, RegistryError> {
    let t = crash_resilience(n);
    let deadline = u16::try_from(t + 1).unwrap_or(u16::MAX);
    let model = CrashModel::new(n, t, FloodMin::new(deadline));
    let mut solver = ValenceSolver::with_observer(&model, t + 1, obs);
    let x0 = solver
        .bivalent_initial_state()
        .ok_or(RegistryError::Unconstructible("no bivalent initial state"))?;
    let outcome = lemma_6_1_chain(&model, &mut solver, x0);
    if !outcome.reached_target() {
        return Err(RegistryError::Unconstructible("lemma 6.1 chain stalled"));
    }
    let chain = outcome
        .chain
        .ok_or(RegistryError::Unconstructible("lemma 6.1 chain stalled"))?;
    // Package the chain in the same replayable shape as a witness: the
    // undecided counts are the Lemma 3.1 quantities along the run.
    let run = ImpossibilityWitness {
        chain,
        horizon: t + 1,
        undecided: outcome.undecided_per_state,
    };
    witness_to_json(&model, &run)
        .map_err(|_| RegistryError::Unconstructible("run not serializable"))
}

/// Computes the certificate for `(model, n, claim)` from scratch.
///
/// # Errors
///
/// [`RegistryError`] when the model/claim is unknown, `n` is out of the
/// supported range, or the engine cannot build the artifact.
pub fn compute(
    model: &str,
    n: usize,
    claim: &str,
    obs: &dyn Observer,
) -> Result<Certificate, RegistryError> {
    if !claims_for(model).contains(&claim) {
        return Err(if layering_key(model).is_none() {
            RegistryError::UnknownModel
        } else {
            RegistryError::UnknownClaim
        });
    }
    let max = max_compute_n(model);
    let (kind, body) = match (model, claim) {
        ("sync-mobile", "lemma_5_1") => {
            check_size(n, 2, max)?;
            let m = MobileModel::new(n, FloodMin::new(2));
            (CertKind::ScanVerdict, lemma_5_1_body(&m, obs)?)
        }
        ("sync-mobile", "theorem_4_2") => {
            check_size(n, 2, max)?;
            let m = MobileModel::new(n, FloodMin::new(2));
            (CertKind::Witness, witness_body(&m, obs)?)
        }
        ("sync-crash", "lemma_6_1") => {
            check_size(n, 3, max)?;
            (CertKind::Run, lemma_6_1_body(n, obs)?)
        }
        ("async-sm", "theorem_4_2") => {
            check_size(n, 2, max)?;
            let m = layered_async_sm::SmModel::new(n, SmFloodMin::new(2));
            (CertKind::Witness, witness_body(&m, obs)?)
        }
        ("async-mp", "theorem_4_2") => {
            check_size(n, 2, max)?;
            let m = layered_async_mp::MpModel::new(n, MpFloodMin::new(2));
            (CertKind::Witness, witness_body(&m, obs)?)
        }
        _ => return Err(RegistryError::UnknownClaim),
    };
    Ok(Certificate::new(meta(model, n, claim)?, kind, body))
}

/// Replay-tier witness check, shared by the `witness`, `run`, and
/// `scan_verdict` paths: decode (which replays the chain and re-checks
/// fingerprints), recount undecided processes, and at small `n` run the
/// kind-appropriate semantic tier.
fn verify_chain_body<M: LayeredModel>(
    model: &M,
    body: &Json,
    kind: CertKind,
) -> Result<(), RegistryError> {
    let witness = witness_from_json(model, body)
        .map_err(|_| RegistryError::VerifyFailed("chain does not replay"))?;
    for (index, x) in witness.chain.states().iter().enumerate() {
        let u = undecided_non_failed(model, x).len();
        if witness.undecided.get(index) != Some(&u) {
            return Err(RegistryError::VerifyFailed("undecided count mismatch"));
        }
    }
    if model.num_processes() <= FULL_VERIFY_MAX_N {
        match kind {
            CertKind::Witness | CertKind::ScanVerdict => {
                witness
                    .verify(model)
                    .map_err(|_| RegistryError::VerifyFailed("witness premises fail"))?;
            }
            CertKind::Run => {
                let mut solver = ValenceSolver::new(model, witness.horizon);
                for x in witness.chain.states() {
                    if !solver.is_bivalent(x) {
                        return Err(RegistryError::VerifyFailed("run state not bivalent"));
                    }
                }
            }
            CertKind::Schedule => {}
        }
    }
    Ok(())
}

fn verify_scan_verdict<M: LayeredModel>(model: &M, body: &Json) -> Result<(), RegistryError> {
    let layers = body
        .get("layers_checked")
        .and_then(Json::as_u64)
        .ok_or(RegistryError::VerifyFailed("missing layers_checked"))?;
    let seen = body
        .get("states_seen")
        .and_then(Json::as_u64)
        .ok_or(RegistryError::VerifyFailed("missing states_seen"))?;
    let connected = body
        .get("connected")
        .and_then(Json::as_bool)
        .ok_or(RegistryError::VerifyFailed("missing connected"))?;
    if layers == 0 || seen < layers {
        return Err(RegistryError::VerifyFailed("implausible scan counts"));
    }
    if !connected {
        return Err(RegistryError::VerifyFailed("scan verdict is negative"));
    }
    let witness = body
        .get("witness")
        .ok_or(RegistryError::VerifyFailed("missing witness"))?;
    verify_chain_body(model, witness, CertKind::ScanVerdict)
}

fn verify_schedule<M>(model: &M, body: &Json) -> Result<(), RegistryError>
where
    M: SimModel,
{
    let claimed = body
        .get("outcome")
        .and_then(Json::as_str)
        .ok_or(RegistryError::VerifyFailed("missing outcome"))?;
    let schedule_json = body
        .get("schedule")
        .ok_or(RegistryError::VerifyFailed("missing schedule"))?;
    let schedule = Schedule::from_json(model, schedule_json)
        .map_err(|_| RegistryError::VerifyFailed("schedule does not decode"))?;
    let trace = schedule.replay(model);
    let outcome = classify(model, trace.states());
    if outcome.class() != claimed {
        return Err(RegistryError::VerifyFailed("replay class mismatch"));
    }
    if model.num_processes() <= FULL_VERIFY_MAX_N + 3 {
        trace
            .validate(model)
            .map_err(|_| RegistryError::VerifyFailed("replay is not an S-execution"))?;
    }
    Ok(())
}

fn schedule_deadline(body: &Json) -> Result<u16, RegistryError> {
    body.get("deadline")
        .and_then(Json::as_u64)
        .and_then(|d| u16::try_from(d).ok())
        .filter(|&d| d > 0)
        .ok_or(RegistryError::VerifyFailed("missing deadline"))
}

/// The protocol deadline to rebuild the model with when re-verifying a
/// chain-shaped body: the recorded horizon (certificates produced by the
/// scan harness may use a deeper horizon than the registry's default 2).
fn chain_deadline(body: &Json) -> u16 {
    // Scan-verdict bodies nest the chain under "witness"; plain witness
    // and run bodies carry "horizon" at top level.
    let horizon = body
        .get("horizon")
        .or_else(|| body.get("witness").and_then(|w| w.get("horizon")))
        .and_then(Json::as_u64)
        .unwrap_or(2);
    u16::try_from(horizon).unwrap_or(u16::MAX).max(1)
}

/// Rebuilds the mobile model a certificate's chain was produced under:
/// the `layering` meta key selects prefix (`s1`, the default) or full
/// (`full`, used by the symmetry-reduced scans) layer actions.
fn mobile_model(n: usize, deadline: u16, layering: &str) -> MobileModel<FloodMin> {
    let m = MobileModel::new(n, FloodMin::new(deadline));
    if layering == "full" {
        m.with_layering(layered_sync_mobile::MobileLayering::Full)
    } else {
        m
    }
}

/// Re-verifies `cert` from scratch per the tiered policy in the
/// [module docs](self), moving the `cert.verify.ok` / `cert.verify.fail`
/// counters.
///
/// # Errors
///
/// [`RegistryError::VerifyFailed`] (or `UnknownModel`/`UnknownClaim`) with
/// a reason; `Ok(())` means the artifact replayed and every tier-applicable
/// claim held.
pub fn verify(cert: &Certificate, obs: &dyn Observer) -> Result<(), RegistryError> {
    let result = verify_inner(cert);
    match &result {
        Ok(()) => obs.counter("cert.verify.ok", 1),
        Err(_) => obs.counter("cert.verify.fail", 1),
    }
    result
}

fn verify_inner(cert: &Certificate) -> Result<(), RegistryError> {
    let n = cert.meta.n;
    if layering_key(&cert.meta.model).is_none() {
        return Err(RegistryError::UnknownModel);
    }
    match (cert.meta.model.as_str(), cert.kind) {
        ("sync-mobile", CertKind::Schedule) => {
            let deadline = schedule_deadline(&cert.body)?;
            let m = MobileModel::new(n, FloodMin::new(deadline));
            verify_schedule(&m, &cert.body)
        }
        ("sync-crash", CertKind::Schedule) => {
            let deadline = schedule_deadline(&cert.body)?;
            let t = cert
                .body
                .get("t")
                .and_then(Json::as_u64)
                .and_then(|t| usize::try_from(t).ok())
                .unwrap_or_else(|| crash_resilience(n));
            let m = CrashModel::new(n, t, FloodMin::new(deadline));
            verify_schedule(&m, &cert.body)
        }
        ("async-sm", CertKind::Schedule) => {
            let deadline = schedule_deadline(&cert.body)?;
            let m = layered_async_sm::SmModel::new(n, SmFloodMin::new(deadline));
            verify_schedule(&m, &cert.body)
        }
        ("async-mp", CertKind::Schedule) => {
            let deadline = schedule_deadline(&cert.body)?;
            let m = layered_async_mp::MpModel::new(n, MpFloodMin::new(deadline));
            verify_schedule(&m, &cert.body)
        }
        ("sync-mobile", CertKind::ScanVerdict) => {
            let m = mobile_model(n, chain_deadline(&cert.body), &cert.meta.layering);
            verify_scan_verdict(&m, &cert.body)
        }
        ("sync-mobile", CertKind::Witness) => {
            let m = mobile_model(n, chain_deadline(&cert.body), &cert.meta.layering);
            verify_chain_body(&m, &cert.body, CertKind::Witness)
        }
        ("async-sm", CertKind::Witness) => {
            let m = layered_async_sm::SmModel::new(n, SmFloodMin::new(chain_deadline(&cert.body)));
            verify_chain_body(&m, &cert.body, CertKind::Witness)
        }
        ("async-mp", CertKind::Witness) => {
            let m = layered_async_mp::MpModel::new(n, MpFloodMin::new(chain_deadline(&cert.body)));
            verify_chain_body(&m, &cert.body, CertKind::Witness)
        }
        ("sync-crash", CertKind::Run) => {
            let t = crash_resilience(n);
            let deadline = u16::try_from(t + 1).unwrap_or(u16::MAX);
            let m = CrashModel::new(n, t, FloodMin::new(deadline));
            verify_chain_body(&m, &cert.body, CertKind::Run)
        }
        _ => Err(RegistryError::UnknownClaim),
    }
}

/// Packages a recorded simulation schedule as a certificate:
/// `claim = sim_violation`, body
/// `{"deadline", ("t",) "outcome", "schedule"}` with the schedule in its
/// fully replayable form ([`Schedule::to_json_full`]).
///
/// # Errors
///
/// [`RegistryError::UnknownModel`] for an unknown `model_key`.
pub fn schedule_certificate<M>(
    model_key: &str,
    model: &M,
    deadline: u16,
    t: Option<usize>,
    outcome_class: &str,
    schedule: &Schedule<M::Move>,
) -> Result<Certificate, RegistryError>
where
    M: SimModel,
{
    let mut body = vec![
        ("deadline".into(), Json::from(u64::from(deadline))),
        ("outcome".into(), Json::from(outcome_class)),
        ("schedule".into(), schedule.to_json_full(model)),
    ];
    if let Some(t) = t {
        body.push(("t".into(), Json::from(t as u64)));
    }
    Ok(Certificate::new(
        meta(model_key, model.num_processes(), SIM_VIOLATION_CLAIM)?,
        CertKind::Schedule,
        Json::Object(body),
    ))
}
