//! # layered-cert
//!
//! A content-addressed **certificate store** and a dependency-free
//! **witness query server** over the proof artifacts the layered-consensus
//! engines produce.
//!
//! Every headline result in the workspace is backed by a concrete,
//! re-checkable artifact: a Theorem 4.2 ever-bivalent chain, a Lemma 6.1
//! bivalent `S^t`-run, a Lemma 5.1 layer-scan verdict, or a recorded
//! violating schedule from the simulator. This crate makes those artifacts
//! durable and queryable:
//!
//! * [`Certificate`] — one canonical-JSON wire object per artifact,
//!   addressed by the SHA-256 of its exact bytes ([`cert`]);
//! * [`CertStore`] — one file per address plus an append-only query index,
//!   deduplicating by content and re-hashing on every read ([`store`]);
//! * [`registry`] — computes certificates from scratch for the claims the
//!   engines can decide, and re-verifies every certificate (replay always,
//!   full semantic tier at small `n`);
//! * [`CertServer`] — an HTTP/1.1 `GET` server (`/cert/<hash>`, `/query`,
//!   `/healthz`, `/metrics`) that verifies before serving and
//!   computes-and-caches on a query miss ([`server`]).
//!
//! The flow end to end: the experiment harness runs with `--store <dir>`
//! and persists what it proves; `cert-serve --store <dir>` then answers
//! queries at memory-index speed, with a cold miss falling back to the
//! engine for small instances. Telemetry rides the `layered-core` observer
//! bus under the `cert.store.*`, `cert.verify.*`, and `cert.server.*`
//! names.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cert;
pub mod hash;
pub mod registry;
pub mod server;
pub mod store;

pub use cert::{CertError, CertKind, CertMeta, Certificate, WIRE_VERSION};
pub use hash::{is_hash, sha256, sha256_hex};
pub use registry::RegistryError;
pub use server::{CertServer, ServerConfig};
pub use store::{CertStore, IndexEntry, StoreError};
