//! Tentpole acceptance: the query server answers `/healthz`, serves a
//! certificate cold (compute-and-cache) then warm (store hit) with
//! byte-identical bodies, the warm path is an order of magnitude faster,
//! and the counters on `/metrics` tell the same story.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use layered_cert::{CertServer, CertStore, Certificate, ServerConfig};
use layered_core::telemetry::clock;
use layered_core::telemetry::json::Json;

fn store_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("layered-cert-server-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts a server over a fresh store on an ephemeral port; the accept
/// loop runs on a detached thread for the remainder of the test process.
fn start_server(name: &str, max_compute_n: usize) -> SocketAddr {
    let dir = store_dir(name);
    let store = CertStore::open(&dir).expect("store opens");
    let server = CertServer::bind("127.0.0.1:0", store, ServerConfig { max_compute_n })
        .expect("server binds");
    let addr = server.local_addr().expect("bound address");
    std::thread::spawn(move || {
        let _ = server.run();
    });
    addr
}

struct HttpReply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpReply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A one-shot HTTP GET over a plain socket — the test's own client, so the
/// server is exercised over the real wire format.
fn http_get(addr: SocketAddr, path: &str) -> HttpReply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("request written");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response read");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head/body split");
    let head = std::str::from_utf8(&raw[..split]).expect("head is utf-8");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let headers = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    HttpReply {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
    }
}

fn counter(metrics_body: &[u8], name: &str) -> u64 {
    let text = std::str::from_utf8(metrics_body).expect("metrics are utf-8");
    let json = Json::parse(text.trim()).expect("metrics are JSON");
    json.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn healthz_answers_ok() {
    let addr = start_server("healthz", 4);
    let reply = http_get(addr, "/healthz");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.body, b"ok\n");
}

#[test]
fn unknown_routes_and_bad_queries_are_refused() {
    let addr = start_server("refuse", 4);
    assert_eq!(http_get(addr, "/nope").status, 404);
    assert_eq!(http_get(addr, "/query?model=sync-mobile").status, 400);
    assert_eq!(
        http_get(addr, "/query?model=martian&n=3&claim=x").status,
        404
    );
    assert_eq!(
        http_get(
            addr,
            "/cert/0000000000000000000000000000000000000000000000000000000000000000"
        )
        .status,
        404
    );
    assert_eq!(http_get(addr, "/cert/zzz").status, 500);
    // A query above the compute cap cannot be conjured.
    assert_eq!(
        http_get(addr, "/query?model=sync-mobile&n=12&claim=theorem_4_2").status,
        404
    );
}

/// The acceptance scenario: cold compute-and-cache, then warm store hit —
/// byte-identical bodies, a tenfold speedup, and `cert.store.hits` moving
/// on the second request.
#[test]
fn query_cold_then_warm_is_byte_identical_and_faster() {
    let addr = start_server("coldwarm", 4);
    let path = "/query?model=sync-mobile&n=4&claim=lemma_5_1";

    let t0 = clock::monotonic_ns();
    let cold = http_get(addr, path);
    let cold_ns = clock::monotonic_ns().saturating_sub(t0);
    assert_eq!(cold.status, 200, "cold query failed");
    assert_eq!(cold.header("X-Cert-Source"), Some("computed"));

    // The served bytes are a verifiable certificate whose address matches
    // the X-Cert-Hash header.
    let cert = Certificate::decode(&cold.body).expect("served bytes decode");
    assert_eq!(cert.meta.model, "sync-mobile");
    assert_eq!(cert.meta.n, 4);
    assert_eq!(cert.meta.claim, "lemma_5_1");
    assert_eq!(cold.header("X-Cert-Hash"), Some(cert.hash().as_str()));

    // Warm: take the fastest of several tries so scheduler noise cannot
    // mask the store hit; each must be byte-identical to the cold body.
    let mut warm_ns = u64::MAX;
    for _ in 0..5 {
        let t1 = clock::monotonic_ns();
        let warm = http_get(addr, path);
        warm_ns = warm_ns.min(clock::monotonic_ns().saturating_sub(t1));
        assert_eq!(warm.status, 200, "warm query failed");
        assert_eq!(warm.header("X-Cert-Source"), Some("store"));
        assert_eq!(warm.body, cold.body, "warm body differs from cold body");
    }
    assert!(
        warm_ns.saturating_mul(10) <= cold_ns,
        "warm path not >=10x faster: cold {cold_ns}ns, best warm {warm_ns}ns"
    );

    // The counters agree: one computed cold miss, then store hits.
    let metrics = http_get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert_eq!(counter(&metrics.body, "cert.server.computed"), 1);
    assert_eq!(counter(&metrics.body, "cert.store.misses"), 1);
    assert_eq!(counter(&metrics.body, "cert.store.puts"), 1);
    assert!(
        counter(&metrics.body, "cert.store.hits") >= 5,
        "store hits must reflect the warm requests"
    );
    // Every served certificate was verified before serving: cold + warm.
    assert!(counter(&metrics.body, "cert.verify.ok") >= 6);
    assert_eq!(counter(&metrics.body, "cert.verify.fail"), 0);
}

/// `/cert/<hash>` serves the same bytes the query path produced.
#[test]
fn cert_by_hash_matches_query_bytes() {
    let addr = start_server("byhash", 4);
    let reply = http_get(addr, "/query?model=sync-crash&n=4&claim=lemma_6_1");
    assert_eq!(reply.status, 200);
    let hash = reply
        .header("X-Cert-Hash")
        .expect("hash header")
        .to_string();
    let by_hash = http_get(addr, &format!("/cert/{hash}"));
    assert_eq!(by_hash.status, 200);
    assert_eq!(by_hash.body, reply.body);
    assert_eq!(by_hash.header("X-Cert-Source"), Some("store"));
}
