//! Satellite: store→load→verify is the identity for every certificate
//! kind, and the integrity hash rejects tampered files.

use std::path::PathBuf;

use layered_cert::{registry, CertKind, CertStore, Certificate, StoreError};
use layered_core::telemetry::{MetricsRegistry, NoopObserver};
use layered_protocols::FloodMin;
use layered_sim::{RandomAdversary, SimConfig, Simulator};
use layered_sync_mobile::MobileModel;
use proptest::prelude::*;

/// A fresh store directory under the system temp dir, unique per test.
fn store_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "layered-cert-roundtrip-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Puts `cert`, gets it back by hash, and asserts the round trip is the
/// identity: same certificate, byte-identical encoding, same address, and
/// the reloaded copy re-verifies.
fn assert_roundtrip(store: &mut CertStore, cert: &Certificate) {
    let obs = MetricsRegistry::new();
    let (hash, _) = store.put(cert, &obs).expect("put succeeds");
    assert_eq!(hash, cert.hash());
    let back = store
        .get(&hash, &obs)
        .expect("get succeeds")
        .expect("object exists");
    assert_eq!(back, *cert, "store→load is not the identity");
    assert_eq!(back.encode(), cert.encode(), "bytes changed in the store");
    assert_eq!(back.hash(), hash, "address changed in the store");
    registry::verify(&back, &obs).expect("reloaded certificate verifies");
    assert_eq!(obs.snapshot().counter("cert.verify.ok"), 1);
    assert_eq!(obs.snapshot().counter("cert.store.hits"), 1);
}

proptest! {
    /// Witness certificates (Theorem 4.2) round-trip for every computable
    /// model/size.
    #[test]
    fn witness_roundtrip_is_identity(case in 0usize..5) {
        let (model, n) = [
            ("sync-mobile", 2),
            ("sync-mobile", 3),
            ("async-sm", 2),
            ("async-sm", 3),
            ("async-mp", 2),
        ][case];
        let dir = store_dir("witness");
        let mut store = CertStore::open(&dir).expect("store opens");
        let cert = registry::compute(model, n, "theorem_4_2", &NoopObserver)
            .expect("witness computes");
        prop_assert_eq!(cert.kind, CertKind::Witness);
        assert_roundtrip(&mut store, &cert);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Schedule certificates round-trip: a recorded simulator run replays
    /// to the same outcome class after store→load.
    #[test]
    fn schedule_roundtrip_is_identity(seed in 0u64..500) {
        let model = MobileModel::new(3, FloodMin::new(4));
        let sim = Simulator::new(&model);
        let config = SimConfig::new(seed, 2, 4);
        let dir = store_dir("schedule");
        let mut store = CertStore::open(&dir).expect("store opens");
        for run in sim.run_many(&config, || RandomAdversary) {
            let cert = registry::schedule_certificate(
                "sync-mobile",
                &model,
                4,
                None,
                run.outcome.class(),
                &run.schedule,
            )
            .expect("schedule packages");
            prop_assert_eq!(cert.kind, CertKind::Schedule);
            assert_roundtrip(&mut store, &cert);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Run certificates (Lemma 6.1 chains) round-trip.
#[test]
fn run_roundtrip_is_identity() {
    let dir = store_dir("run");
    let mut store = CertStore::open(&dir).expect("store opens");
    for n in [3usize, 4] {
        let cert =
            registry::compute("sync-crash", n, "lemma_6_1", &NoopObserver).expect("run computes");
        assert_eq!(cert.kind, CertKind::Run);
        assert_roundtrip(&mut store, &cert);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scan-verdict certificates (Lemma 5.1) round-trip.
#[test]
fn scan_verdict_roundtrip_is_identity() {
    let dir = store_dir("scan");
    let mut store = CertStore::open(&dir).expect("store opens");
    for n in [2usize, 3] {
        let cert =
            registry::compute("sync-mobile", n, "lemma_5_1", &NoopObserver).expect("scan computes");
        assert_eq!(cert.kind, CertKind::ScanVerdict);
        assert_roundtrip(&mut store, &cert);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Putting the same certificate twice dedups by address and the index
/// keeps a single entry; reopening the store reloads the index.
#[test]
fn puts_dedup_and_index_survives_reopen() {
    let dir = store_dir("dedup");
    let obs = MetricsRegistry::new();
    let cert = registry::compute("sync-mobile", 3, "theorem_4_2", &NoopObserver).expect("computes");
    let hash = {
        let mut store = CertStore::open(&dir).expect("store opens");
        let (h1, fresh1) = store.put(&cert, &obs).expect("first put");
        let (h2, fresh2) = store.put(&cert, &obs).expect("second put");
        assert!(fresh1 && !fresh2, "second put must dedup");
        assert_eq!(h1, h2);
        assert_eq!(store.len(), 1, "index must not duplicate");
        h1
    };
    assert_eq!(obs.snapshot().counter("cert.store.puts"), 1);
    let store = CertStore::open(&dir).expect("store reopens");
    assert_eq!(store.len(), 1);
    let entry = store
        .query("sync-mobile", 3, "theorem_4_2")
        .expect("reloaded index answers");
    assert_eq!(entry.hash, hash);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A single flipped byte in a stored object is caught by the integrity
/// re-hash on read — for every byte position in the file.
#[test]
fn corrupted_bytes_are_rejected() {
    let dir = store_dir("corrupt");
    let obs = NoopObserver;
    let mut store = CertStore::open(&dir).expect("store opens");
    let cert = registry::compute("sync-mobile", 2, "theorem_4_2", &NoopObserver).expect("computes");
    let (hash, _) = store.put(&cert, &obs).expect("put succeeds");
    let path = dir
        .join("v1")
        .join("objects")
        .join(&hash[..2])
        .join(format!("{hash}.json"));
    let pristine = std::fs::read(&path).expect("object readable");
    // Flip one bit at a spread of positions (every 7th byte keeps the test
    // fast while still covering header, meta, and body regions).
    for pos in (0..pristine.len()).step_by(7) {
        let mut tampered = pristine.clone();
        tampered[pos] ^= 0x01;
        std::fs::write(&path, &tampered).expect("tamper written");
        match store.get(&hash, &obs) {
            Err(StoreError::Corrupt { hash: h }) => assert_eq!(h, hash),
            other => panic!("tampering at byte {pos} not caught: {other:?}"),
        }
    }
    // Restoring the pristine bytes restores the certificate.
    std::fs::write(&path, &pristine).expect("restore written");
    let back = store
        .get(&hash, &obs)
        .expect("get succeeds")
        .expect("object exists");
    assert_eq!(back, cert);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncation (a partial write) is also caught, not just bit flips.
#[test]
fn truncated_objects_are_rejected() {
    let dir = store_dir("truncate");
    let obs = NoopObserver;
    let mut store = CertStore::open(&dir).expect("store opens");
    let cert = registry::compute("sync-mobile", 2, "theorem_4_2", &NoopObserver).expect("computes");
    let (hash, _) = store.put(&cert, &obs).expect("put succeeds");
    let path = dir
        .join("v1")
        .join("objects")
        .join(&hash[..2])
        .join(format!("{hash}.json"));
    let pristine = std::fs::read(&path).expect("object readable");
    std::fs::write(&path, &pristine[..pristine.len() / 2]).expect("truncate written");
    assert!(matches!(
        store.get(&hash, &obs),
        Err(StoreError::Corrupt { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
