//! The iterated immediate snapshot (IIS) model under skip-one layers —
//! the extension the paper's full version announces at the end of
//! Section 7 ("we use the same techniques to extend the equivalence to
//! snapshot shared memory, iterated immediate snapshot, and related
//! models").
//!
//! A round is a fresh one-shot immediate-snapshot object scheduled by an
//! [`OrderedPartition`]: block members write concurrently, then snapshot,
//! observing their own and all earlier blocks. The layering lets the
//! environment skip at most one process per round, mirroring the paper's
//! other 1-resilient layerings. Protocols are ordinary
//! [`SmProtocol`](layered_protocols::SmProtocol)s.
//!
//! The crate reproduces, in this model, the same pipeline as the paper's
//! named models: bivalent initial states, valence-connected layers,
//! ever-bivalent runs, and checker refutation of every consensus
//! candidate. The classical immediate-snapshot connectivity move —
//! splitting one process into a preceding singleton block changes only
//! that process's view — is [`IisModel::singleton_split_bridge`].
//!
//! # Example
//!
//! ```
//! use layered_core::{build_bivalent_run, ValenceSolver};
//! use layered_protocols::SmFloodMin;
//! use layered_iis::IisModel;
//!
//! let m = IisModel::new(3, SmFloodMin::new(2));
//! let mut solver = ValenceSolver::new(&m, 2);
//! assert!(build_bivalent_run(&mut solver, 1).reached_target());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod model;
mod partition;

pub use model::{IisModel, IisState};
pub use partition::{ordered_partitions, OrderedPartition};
