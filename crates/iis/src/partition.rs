//! Ordered set partitions — the schedules of immediate-snapshot rounds.

use layered_core::Pid;

/// An ordered partition of a set of processes into non-empty blocks.
///
/// In an immediate-snapshot round scheduled by `B₁, …, B_k`, the processes
/// of each block write concurrently and then snapshot, seeing the writes of
/// their own and all earlier blocks.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct OrderedPartition {
    blocks: Vec<Vec<Pid>>,
}

impl OrderedPartition {
    /// Creates a partition from blocks.
    ///
    /// # Panics
    ///
    /// Panics if a block is empty or a process appears twice.
    #[must_use]
    pub fn new(blocks: Vec<Vec<Pid>>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for b in &blocks {
            assert!(!b.is_empty(), "blocks must be non-empty");
            for &p in b {
                assert!(seen.insert(p), "process appears in two blocks");
            }
        }
        let mut blocks = blocks;
        for b in &mut blocks {
            b.sort();
        }
        OrderedPartition { blocks }
    }

    /// The blocks in order.
    #[must_use]
    pub fn blocks(&self) -> &[Vec<Pid>] {
        &self.blocks
    }

    /// All processes taking part, in block order.
    pub fn participants(&self) -> impl Iterator<Item = Pid> + '_ {
        self.blocks.iter().flatten().copied()
    }

    /// Number of participating processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Whether the partition has no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The index of the block containing `p`, if participating.
    #[must_use]
    pub fn block_of(&self, p: Pid) -> Option<usize> {
        self.blocks.iter().position(|b| b.contains(&p))
    }

    /// The partition with process `p` split out of its block into a new
    /// singleton block placed immediately *before* the remainder — the
    /// refinement under which only `p`'s view changes (the classical
    /// immediate-snapshot connectivity move).
    ///
    /// Returns `None` if `p` does not participate or is already alone.
    #[must_use]
    pub fn split_first(&self, p: Pid) -> Option<OrderedPartition> {
        let at = self.block_of(p)?;
        if self.blocks[at].len() == 1 {
            return None;
        }
        let mut blocks = self.blocks.clone();
        blocks[at].retain(|&q| q != p);
        blocks.insert(at, vec![p]);
        Some(OrderedPartition { blocks })
    }
}

/// All ordered partitions of the given processes (Fubini-number many).
#[must_use]
pub fn ordered_partitions(processes: &[Pid]) -> Vec<OrderedPartition> {
    fn rec(rest: &[Pid], acc: &mut Vec<Vec<Pid>>, out: &mut Vec<OrderedPartition>) {
        if rest.is_empty() {
            out.push(OrderedPartition::new(acc.clone()));
            return;
        }
        // Choose the first block: any non-empty subset containing rest[0]?
        // No — ordered partitions choose ANY non-empty subset as the next
        // block. Enumerate subsets of `rest` by bitmask (rest is small).
        let m = rest.len();
        for mask in 1..(1u32 << m) {
            let block: Vec<Pid> = (0..m)
                .filter(|&i| (mask >> i) & 1 == 1)
                .map(|i| rest[i])
                .collect();
            let remainder: Vec<Pid> = (0..m)
                .filter(|&i| (mask >> i) & 1 == 0)
                .map(|i| rest[i])
                .collect();
            acc.push(block);
            rec(&remainder, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    rec(processes, &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(n: usize) -> Vec<Pid> {
        Pid::all(n).collect()
    }

    #[test]
    fn fubini_counts() {
        assert_eq!(ordered_partitions(&pids(1)).len(), 1);
        assert_eq!(ordered_partitions(&pids(2)).len(), 3);
        assert_eq!(ordered_partitions(&pids(3)).len(), 13);
        assert_eq!(ordered_partitions(&pids(4)).len(), 75);
    }

    #[test]
    fn partitions_are_distinct_and_cover() {
        let parts = ordered_partitions(&pids(3));
        let mut seen = std::collections::HashSet::new();
        for p in &parts {
            assert!(seen.insert(p.clone()), "duplicate partition");
            assert_eq!(p.len(), 3);
            let mut all: Vec<Pid> = p.participants().collect();
            all.sort();
            assert_eq!(all, pids(3));
        }
    }

    #[test]
    fn split_first_moves_one_process() {
        let part = OrderedPartition::new(vec![pids(3)]);
        let split = part.split_first(Pid::new(1)).expect("block has 3 members");
        assert_eq!(split.blocks().len(), 2);
        assert_eq!(split.blocks()[0], vec![Pid::new(1)]);
        assert_eq!(split.blocks()[1], vec![Pid::new(0), Pid::new(2)]);
        // A singleton cannot be split further.
        assert!(split.split_first(Pid::new(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "two blocks")]
    fn duplicate_process_rejected() {
        let _ = OrderedPartition::new(vec![vec![Pid::new(0)], vec![Pid::new(0)]]);
    }
}
