//! The iterated immediate snapshot (IIS) model with skip-one layers.
//!
//! In round `r` every participating process accesses a fresh one-shot
//! immediate-snapshot object: scheduled by an ordered partition
//! `B₁, …, B_k`, the processes of each block write concurrently and then
//! snapshot, observing the writes of their own and all earlier blocks.
//! The layering allows the environment to skip at most one process per
//! round (the 1-resilient flavor matching the paper's other layerings);
//! the paper's full version extends the Section 7 equivalence to this
//! model, and the experiments verify the same claims here: bivalent
//! initial states, valence-connected layers, ever-bivalent runs, and
//! protocol refutation.
//!
//! Protocols are ordinary [`SmProtocol`]s: `write_value` feeds the IS
//! object, `absorb` receives the snapshot (with `None` for processes whose
//! write is invisible — later blocks or skipped).

use std::collections::HashSet;

use layered_core::{LayeredModel, Pid, Value};
use layered_protocols::SmProtocol;

use crate::partition::{ordered_partitions, OrderedPartition};

/// A global state of the IIS model.
///
/// The environment has no persistent component: each round's IS object is
/// fresh, so the global state is just the processes' protocol states plus
/// bookkeeping.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct IisState<L> {
    /// Completed rounds.
    pub round: u16,
    /// The run's input assignment.
    pub inputs: Vec<Value>,
    /// Per-process protocol local states.
    pub locals: Vec<L>,
    /// Per-process write-once decision variables.
    pub decided: Vec<Option<Value>>,
    /// Per-process completed IS accesses.
    pub phases_done: Vec<u16>,
}

impl<L> IisState<L> {
    /// Number of processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locals.len()
    }

    /// Whether the state is degenerate (no processes). Never true for
    /// model-produced states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locals.is_empty()
    }
}

/// The IIS model, parameterized by a shared-memory phase protocol.
///
/// # Examples
///
/// ```
/// use layered_core::check_consensus;
/// use layered_protocols::SmFloodMin;
/// use layered_iis::IisModel;
///
/// let m = IisModel::new(3, SmFloodMin::new(2));
/// // Consensus is unsolvable here too: the same checker refutes the
/// // candidate.
/// assert!(!check_consensus(&m, 2, 1).passed());
/// ```
#[derive(Clone, Debug)]
pub struct IisModel<P: SmProtocol> {
    n: usize,
    protocol: P,
    obligation: Option<u16>,
}

impl<P: SmProtocol> IisModel<P> {
    /// A model with `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize, protocol: P) -> Self {
        assert!(n >= 2, "the paper assumes n >= 2");
        IisModel {
            n,
            protocol,
            obligation: None,
        }
    }

    /// Obliges every process with at least `phases` completed IS accesses
    /// to have decided at horizon states.
    #[must_use]
    pub fn with_obligation(mut self, phases: u16) -> Self {
        self.obligation = Some(phases);
        self
    }

    /// The protocol under analysis.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// All layer schedules: ordered partitions of all `n` processes plus
    /// ordered partitions of each `(n−1)`-subset (one process skipped).
    #[must_use]
    pub fn actions(&self) -> Vec<OrderedPartition> {
        let all: Vec<Pid> = Pid::all(self.n).collect();
        let mut out = ordered_partitions(&all);
        for skip in Pid::all(self.n) {
            let rest: Vec<Pid> = Pid::all(self.n).filter(|&p| p != skip).collect();
            out.extend(ordered_partitions(&rest));
        }
        out
    }

    /// Applies one IS round under the given schedule.
    #[must_use]
    pub fn apply(
        &self,
        x: &IisState<P::LocalState>,
        schedule: &OrderedPartition,
    ) -> IisState<P::LocalState> {
        let n = self.n;
        let mut locals = x.locals.clone();
        let mut decided = x.decided.clone();
        let mut phases_done = x.phases_done.clone();

        // The IS object's memory for this round.
        let mut memory: Vec<Option<P::Reg>> = vec![None; n];
        for block in schedule.blocks() {
            // All of the block write...
            for &p in block {
                if let Some(w) = self.protocol.write_value(&locals[p.index()]) {
                    memory[p.index()] = Some(w);
                }
            }
            // ...then all of the block snapshot (same view for the block).
            let snapshot = memory.clone();
            for &p in block {
                let ls = self
                    .protocol
                    .absorb(locals[p.index()].clone(), p, &snapshot);
                if decided[p.index()].is_none() {
                    decided[p.index()] = self.protocol.decide(&ls);
                }
                locals[p.index()] = ls;
                phases_done[p.index()] += 1;
            }
        }

        IisState {
            round: x.round + 1,
            inputs: x.inputs.clone(),
            locals,
            decided,
            phases_done,
        }
    }

    /// The layer `S(x)`, deduplicated.
    #[must_use]
    pub fn layer(&self, x: &IisState<P::LocalState>) -> Vec<IisState<P::LocalState>> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for schedule in self.actions() {
            let y = self.apply(x, &schedule);
            if seen.insert(y.clone()) {
                out.push(y);
            }
        }
        out
    }

    /// The classical immediate-snapshot connectivity move: splitting a
    /// process `p` out of its block into a singleton placed first changes
    /// only `p`'s view, so the two round-results agree modulo `p`.
    ///
    /// Returns `None` if the split is undefined (singleton block).
    #[must_use]
    pub fn singleton_split_bridge(
        &self,
        x: &IisState<P::LocalState>,
        schedule: &OrderedPartition,
        p: Pid,
    ) -> Option<bool> {
        let split = schedule.split_first(p)?;
        let a = self.apply(x, schedule);
        let b = self.apply(x, &split);
        Some(self.agree_modulo(&a, &b, p))
    }
}

impl<P: SmProtocol> LayeredModel for IisModel<P> {
    type State = IisState<P::LocalState>;

    fn num_processes(&self) -> usize {
        self.n
    }

    fn max_failures(&self) -> usize {
        1
    }

    fn initial_state(&self, inputs: &[Value]) -> Self::State {
        assert_eq!(inputs.len(), self.n, "one input per process");
        let locals: Vec<P::LocalState> = inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| self.protocol.init(self.n, Pid::new(i), v))
            .collect();
        let decided = locals.iter().map(|ls| self.protocol.decide(ls)).collect();
        IisState {
            round: 0,
            inputs: inputs.to_vec(),
            locals,
            decided,
            phases_done: vec![0; self.n],
        }
    }

    fn successors(&self, x: &Self::State) -> Vec<Self::State> {
        self.layer(x)
    }

    fn depth(&self, x: &Self::State) -> usize {
        usize::from(x.round)
    }

    fn inputs_of(&self, x: &Self::State) -> Vec<Value> {
        x.inputs.clone()
    }

    fn decision(&self, x: &Self::State, i: Pid) -> Option<Value> {
        x.decided[i.index()]
    }

    fn failed_at(&self, _x: &Self::State, _i: Pid) -> bool {
        // No finite failure: a skipped process may participate next round.
        false
    }

    fn agree_modulo(&self, x: &Self::State, y: &Self::State, j: Pid) -> bool {
        // Fresh IS objects leave no persistent environment: compare locals.
        x.round == y.round
            && (0..self.n).all(|i| {
                i == j.index()
                    || (x.locals[i] == y.locals[i]
                        && x.decided[i] == y.decided[i]
                        && x.inputs[i] == y.inputs[i]
                        && x.phases_done[i] == y.phases_done[i])
            })
    }

    fn crash_step(&self, x: &Self::State, j: Pid) -> Self::State {
        let rest: Vec<Pid> = Pid::all(self.n).filter(|&p| p != j).collect();
        self.apply(x, &OrderedPartition::new(vec![rest]))
    }

    fn obligated(&self, x: &Self::State) -> Vec<Pid> {
        match self.obligation {
            Some(r) => Pid::all(self.n)
                .filter(|i| x.phases_done[i.index()] >= r)
                .collect(),
            None => {
                let round = x.round;
                Pid::all(self.n)
                    .filter(|i| x.phases_done[i.index()] == round)
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use layered_core::{
        build_bivalent_run, check_consensus, check_fault_independence, check_graded,
        valence_report, ValenceSolver,
    };
    use layered_protocols::SmFloodMin;

    use super::*;

    fn model(n: usize, phases: u16) -> IisModel<SmFloodMin> {
        IisModel::new(n, SmFloodMin::new(phases))
    }

    #[test]
    fn action_counts() {
        // Fubini(3) + 3 * Fubini(2) = 13 + 9 = 22.
        assert_eq!(model(3, 2).actions().len(), 22);
    }

    #[test]
    fn structural_contracts_hold() {
        let m = model(3, 2);
        assert_eq!(check_graded(&m, 1), None);
        assert_eq!(check_fault_independence(&m, 1), None);
    }

    #[test]
    fn block_order_controls_visibility() {
        let m = model(3, 1);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        // p1 (holding 0) alone in the last block: others decide 1, p1 sees all.
        let late = OrderedPartition::new(vec![vec![Pid::new(1), Pid::new(2)], vec![Pid::new(0)]]);
        let y = m.apply(&x, &late);
        assert_eq!(y.decided[1], Some(Value::ONE));
        assert_eq!(y.decided[2], Some(Value::ONE));
        assert_eq!(y.decided[0], Some(Value::ZERO));
        // One concurrent block: everyone sees everything, all decide 0.
        let all = OrderedPartition::new(vec![Pid::all(3).collect()]);
        let z = m.apply(&x, &all);
        assert!(z.decided.iter().all(|d| *d == Some(Value::ZERO)));
    }

    #[test]
    fn skipped_process_takes_no_phase() {
        let m = model(3, 1);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let skip_p1 = OrderedPartition::new(vec![vec![Pid::new(1), Pid::new(2)]]);
        let y = m.apply(&x, &skip_p1);
        assert_eq!(y.phases_done, vec![0, 1, 1]);
        assert_eq!(y.decided[0], None);
        assert_eq!(y.decided[1], Some(Value::ONE));
    }

    #[test]
    fn singleton_split_bridges_hold() {
        // The IS connectivity move: splitting p first changes only p's view.
        let m = model(3, 3);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        for schedule in m.actions() {
            for p in Pid::all(3) {
                if let Some(holds) = m.singleton_split_bridge(&x, &schedule, p) {
                    assert!(holds, "split bridge failed at {schedule:?}, p={p}");
                }
            }
        }
    }

    #[test]
    fn layers_are_valence_connected_and_runs_bivalent() {
        let m = model(3, 2);
        let mut solver = ValenceSolver::new(&m, 2);
        let x0 = solver.bivalent_initial_state().expect("bivalent init");
        let layer = m.layer(&x0);
        let rep = valence_report(&m, &mut solver, &layer);
        assert!(rep.connected, "IIS layer must be valence connected");
        let run = build_bivalent_run(&mut solver, 1);
        assert!(run.reached_target());
    }

    #[test]
    fn consensus_is_refuted() {
        for phases in 1..=2u16 {
            let m = model(3, phases);
            assert!(
                !check_consensus(&m, usize::from(phases), 1).passed(),
                "SmFloodMin({phases}) unexpectedly solves consensus in IIS"
            );
        }
    }
}
