//! Property tests for the IIS model: immediate-snapshot containment
//! structure and run invariants along random schedules.

use proptest::prelude::*;

use layered_core::{LayeredModel, Pid, Value};
use layered_iis::{ordered_partitions, IisModel, IisState, OrderedPartition};
use layered_protocols::{SmFloodMin, SmProtocol};

type State = IisState<<SmFloodMin as SmProtocol>::LocalState>;

fn arb_inputs(n: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(0u32..2, n).prop_map(|v| v.into_iter().map(Value::new).collect())
}

fn arb_schedule(n: usize) -> impl Strategy<Value = OrderedPartition> {
    let parts = ordered_partitions(&Pid::all(n).collect::<Vec<_>>());
    let count = parts.len();
    (0..count).prop_map(move |i| parts[i].clone())
}

fn walk(m: &IisModel<SmFloodMin>, inputs: &[Value], schedules: &[OrderedPartition]) -> Vec<State> {
    let mut states = vec![m.initial_state(inputs)];
    for s in schedules {
        let next = m.apply(states.last().unwrap(), s);
        states.push(next);
    }
    states
}

proptest! {
    /// Immediate-snapshot containment: within one round, the views of two
    /// processes are comparable or equal if they share a block — concretely
    /// for FloodMin, a later-block process knows at least what any
    /// earlier-block process learned this round.
    #[test]
    fn snapshot_containment(inputs in arb_inputs(3), schedule in arb_schedule(3)) {
        let m = IisModel::new(3, SmFloodMin::new(8));
        let x = m.initial_state(&inputs);
        let y = m.apply(&x, &schedule);
        let block_of = |p: Pid| schedule.block_of(p).expect("full schedule");
        for a in Pid::all(3) {
            for b in Pid::all(3) {
                if block_of(a) <= block_of(b) {
                    prop_assert!(
                        y.locals[a.index()].known.is_subset(&y.locals[b.index()].known),
                        "earlier blocks see subsets: {:?} vs {:?}",
                        y.locals[a.index()].known,
                        y.locals[b.index()].known
                    );
                }
            }
        }
    }

    /// The singleton-split bridge holds at arbitrary reachable states.
    #[test]
    fn split_bridge_everywhere(
        inputs in arb_inputs(3),
        path in proptest::collection::vec(arb_schedule(3), 0..2),
        probe in arb_schedule(3),
        p in 0usize..3,
    ) {
        let m = IisModel::new(3, SmFloodMin::new(8));
        let states = walk(&m, &inputs, &path);
        if let Some(holds) = m.singleton_split_bridge(states.last().unwrap(), &probe, Pid::new(p)) {
            prop_assert!(holds);
        }
    }

    /// Run invariants: grading, write-once decisions, monotone knowledge.
    #[test]
    fn run_invariants(
        inputs in arb_inputs(3),
        path in proptest::collection::vec(arb_schedule(3), 1..3),
    ) {
        let m = IisModel::new(3, SmFloodMin::new(2));
        let states = walk(&m, &inputs, &path);
        for (d, w) in states.windows(2).enumerate() {
            prop_assert_eq!(m.depth(&w[1]), d + 1);
            for i in 0..3 {
                if let Some(v) = w[0].decided[i] {
                    prop_assert_eq!(w[1].decided[i], Some(v));
                }
                prop_assert!(w[0].locals[i].known.is_subset(&w[1].locals[i].known));
            }
        }
    }

    /// A single concurrent block is the "everyone sees everything" round:
    /// afterwards all processes have equal knowledge.
    #[test]
    fn one_block_round_synchronizes(inputs in arb_inputs(3)) {
        let m = IisModel::new(3, SmFloodMin::new(8));
        let x = m.initial_state(&inputs);
        let all = OrderedPartition::new(vec![Pid::all(3).collect()]);
        let y = m.apply(&x, &all);
        prop_assert_eq!(&y.locals[0].known, &y.locals[1].known);
        prop_assert_eq!(&y.locals[1].known, &y.locals[2].known);
    }
}
