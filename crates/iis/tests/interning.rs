//! Interned-space conformance for the iterated-immediate-snapshot model:
//! parallel layer expansion must be bit-identical to sequential and the
//! layer scan must agree across both paths.

use layered_core::{
    scan_layer_valence_connectivity, scan_layer_valence_connectivity_parallel, LayeredModel,
    NoopObserver, StateSpace, ValenceSolver,
};
use layered_iis::IisModel;
use layered_protocols::SmFloodMin;

#[test]
fn parallel_expansion_is_bit_identical_at_n3() {
    let m = IisModel::new(3, SmFloodMin::new(2));
    let roots = m.initial_states();
    let mut seq: StateSpace<IisModel<SmFloodMin>> = StateSpace::new();
    let seq_levels = seq.expand_layers(&m, &roots, 2, &NoopObserver);
    for threads in [2, 8] {
        let mut par: StateSpace<IisModel<SmFloodMin>> = StateSpace::new();
        let par_levels = par.expand_layers_parallel(&m, &roots, 2, threads, &NoopObserver);
        assert_eq!(seq_levels, par_levels, "threads={threads}");
        assert_eq!(seq.len(), par.len());
    }
}

#[test]
fn parallel_scan_matches_sequential_at_n3() {
    let m = IisModel::new(3, SmFloodMin::new(2));
    let mut seq = ValenceSolver::new(&m, 2);
    let a = scan_layer_valence_connectivity(&mut seq, 1, true);
    let mut par = ValenceSolver::new(&m, 2);
    let b = scan_layer_valence_connectivity_parallel(&mut par, 1, true, 4);
    assert_eq!(a, b);
}
