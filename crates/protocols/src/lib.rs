//! Protocol interfaces and a protocol library for the layered-consensus
//! workspace.
//!
//! The paper analyzes arbitrary deterministic protocols; this crate supplies
//! (a) the traits those protocols implement for each model family
//! ([`SyncProtocol`], [`SmProtocol`], [`MpProtocol`]) and (b) the concrete
//! protocols the experiments run:
//!
//! * [`FloodMin`] — flooding consensus with a round deadline. At `t + 1`
//!   rounds it solves t-resilient synchronous consensus (tightness of
//!   Corollary 6.3); at `t` rounds the checker exhibits its agreement
//!   violation (the lower bound itself).
//! * [`FullInfoMin`] — the full-information protocol with a min decision
//!   rule; the worst-case state-space workload.
//! * [`SmFloodMin`] / [`MpFloodMin`] — flooding under the synchronic and
//!   permutation layerings, for the asynchronous impossibility experiments.
//! * [`MpCollectMin`] — quorum-collect; with quorum `n − 1` it solves 2-set
//!   agreement 1-resiliently (Section 7) while violating consensus.
//! * [`HastyMin`] — decides immediately; a checker-calibration protocol.
//!
//! # Example
//!
//! ```
//! use layered_protocols::{FloodMin, SyncProtocol};
//! use layered_core::{Pid, Value};
//!
//! let p = FloodMin::new(2);
//! let ls = p.init(3, Pid::new(0), Value::ZERO);
//! let msg = p.message(&ls, Pid::new(1));
//! assert!(msg.contains(&Value::ZERO));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod collect;
mod early;
mod eig;
mod floodmin;
mod fullinfo;
mod relay;
mod traits;
mod trivial;

pub use collect::{CollectState, MpCollectMin};
pub use early::{EarlyFloodMin, EarlyState};
pub use eig::{Eig, EigState, EigTree};
pub use floodmin::{FloodMin, FloodState, HastyMin, MpFloodMin, SmFloodMin};
pub use fullinfo::{FullInfoMin, View};
pub use relay::{MpRelayRace, RelayMsg, RelayState, SmRelayRace, SyncRelayRace};
pub use traits::{Anonymous, MpProtocol, SmProtocol, SyncProtocol};
pub use trivial::{MpConstant, MpIdentity, TrivialState};
