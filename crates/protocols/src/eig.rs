//! Exponential Information Gathering (EIG) consensus.
//!
//! The classical t+1-round agreement protocol built on the EIG tree: node
//! labels are strings of distinct process ids; `val(σ·j)` is the value `j`
//! reported for node `σ`. For crash/omission failures, deciding the
//! minimum value present anywhere in the tree yields consensus in `t + 1`
//! rounds — behaviorally matching FloodMin but carrying the full
//! who-said-what structure, which makes it (a) a second, independently
//! structured witness that the Dolev–Strong bound is tight, and (b) a
//! heavier state-space workload for the engine.

use std::collections::BTreeMap;

use layered_core::{Pid, Value};

use crate::traits::SyncProtocol;

/// An EIG tree: labels (strings of distinct pids, root = empty) mapped to
/// reported values (`None` = no report, e.g. the reporter was silenced).
pub type EigTree = BTreeMap<Vec<Pid>, Option<Value>>;

/// Local state of [`Eig`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EigState {
    /// The gathered tree.
    pub tree: EigTree,
    /// Completed rounds.
    pub completed: u16,
    /// The process's own id (labels ending in `me` are own reports).
    pub me: Pid,
}

impl EigState {
    /// The frontier of the tree at depth `level`.
    fn frontier(&self, level: usize) -> BTreeMap<Vec<Pid>, Option<Value>> {
        self.tree
            .iter()
            .filter(|(label, _)| label.len() == level)
            .map(|(l, v)| (l.clone(), *v))
            .collect()
    }

    /// The minimum value present anywhere in the tree.
    #[must_use]
    pub fn min_value(&self) -> Value {
        self.tree
            .values()
            .flatten()
            .min()
            .copied()
            .expect("the root always holds the own input")
    }
}

/// EIG consensus with a decision deadline of `rounds` rounds.
///
/// `Eig::new(t + 1)` solves t-resilient consensus in the synchronous
/// model; `Eig::new(t)` is refuted by the checker, like truncated FloodMin.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Eig {
    rounds: u16,
}

impl Eig {
    /// An EIG protocol deciding after exactly `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn new(rounds: u16) -> Self {
        assert!(rounds > 0, "EIG needs at least one round");
        Eig { rounds }
    }

    /// The decision deadline in rounds.
    #[must_use]
    pub fn rounds(&self) -> u16 {
        self.rounds
    }
}

impl SyncProtocol for Eig {
    type LocalState = EigState;
    /// Each round a process relays its current tree frontier.
    type Msg = BTreeMap<Vec<Pid>, Option<Value>>;

    fn init(&self, _n: usize, me: Pid, input: Value) -> EigState {
        let mut tree = EigTree::new();
        tree.insert(Vec::new(), Some(input));
        EigState {
            tree,
            completed: 0,
            me,
        }
    }

    fn message(&self, ls: &EigState, _to: Pid) -> Self::Msg {
        ls.frontier(usize::from(ls.completed))
    }

    fn transition(&self, mut ls: EigState, me: Pid, received: &[Option<Self::Msg>]) -> EigState {
        let level = usize::from(ls.completed);
        for (from, msg) in received.iter().enumerate() {
            let from = Pid::new(from);
            match msg {
                Some(frontier) => {
                    for (label, v) in frontier {
                        if label.len() == level && !label.contains(&from) && from != me {
                            let mut child = label.clone();
                            child.push(from);
                            ls.tree.insert(child, *v);
                        }
                    }
                }
                None => {
                    // The sender was silenced: mark every child label it
                    // would have reported as absent.
                    let labels: Vec<Vec<Pid>> = ls
                        .tree
                        .keys()
                        .filter(|l| l.len() == level && !l.contains(&from))
                        .cloned()
                        .collect();
                    if from != me {
                        for label in labels {
                            let mut child = label;
                            child.push(from);
                            ls.tree.insert(child, None);
                        }
                    }
                }
            }
        }
        ls.completed += 1;
        ls
    }

    fn decide(&self, ls: &EigState) -> Option<Value> {
        (ls.completed >= self.rounds).then(|| ls.min_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg_of(ls: &EigState, p: &Eig) -> BTreeMap<Vec<Pid>, Option<Value>> {
        p.message(ls, Pid::new(0))
    }

    #[test]
    fn tree_grows_one_level_per_round() {
        let p = Eig::new(2);
        let n = 3;
        let states: Vec<EigState> = (0..n)
            .map(|i| p.init(n, Pid::new(i), Value::new(i as u32)))
            .collect();
        let msgs: Vec<_> = states.iter().map(|ls| Some(msg_of(ls, &p))).collect();
        let ls = p.transition(states[0].clone(), Pid::new(0), &msgs);
        // Level 1: one node per other process.
        assert_eq!(
            ls.tree.keys().filter(|l| l.len() == 1).count(),
            2,
            "own report is not duplicated as a child"
        );
        assert_eq!(ls.tree[&vec![Pid::new(1)]], Some(Value::new(1)));
        assert_eq!(ls.tree[&vec![Pid::new(2)]], Some(Value::new(2)));
    }

    #[test]
    fn silence_recorded_as_none() {
        let p = Eig::new(1);
        let n = 3;
        let ls = p.init(n, Pid::new(0), Value::ONE);
        let other = p.init(n, Pid::new(2), Value::ZERO);
        let msgs = vec![Some(msg_of(&ls, &p)), None, Some(msg_of(&other, &p))];
        let ls = p.transition(ls, Pid::new(0), &msgs);
        assert_eq!(ls.tree[&vec![Pid::new(1)]], None);
        assert_eq!(p.decide(&ls), Some(Value::ZERO));
    }

    #[test]
    fn labels_never_repeat_processes() {
        let p = Eig::new(2);
        let n = 3;
        let mut states: Vec<EigState> = (0..n)
            .map(|i| p.init(n, Pid::new(i), Value::new(i as u32)))
            .collect();
        for _ in 0..2 {
            let msgs: Vec<_> = states.iter().map(|ls| Some(msg_of(ls, &p))).collect();
            states = states
                .into_iter()
                .enumerate()
                .map(|(i, ls)| p.transition(ls, Pid::new(i), &msgs))
                .collect();
        }
        for ls in &states {
            for label in ls.tree.keys() {
                let mut sorted = label.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), label.len(), "distinct pids per label");
                assert!(label.len() <= 2);
            }
        }
    }

    #[test]
    fn decides_min_at_deadline() {
        let p = Eig::new(1);
        let n = 3;
        let states: Vec<EigState> = (0..n)
            .map(|i| p.init(n, Pid::new(i), Value::new(2 - i as u32)))
            .collect();
        let msgs: Vec<_> = states.iter().map(|ls| Some(msg_of(ls, &p))).collect();
        let ls = p.transition(states[0].clone(), Pid::new(0), &msgs);
        assert_eq!(p.decide(&ls), Some(Value::ZERO));
    }
}
