//! Quorum-collect protocols for the asynchronous message-passing model.
//!
//! [`MpCollectMin`] waits until it knows the inputs of a *quorum* of
//! processes (its own included) and then decides the minimum of those
//! inputs. The quorum parameter spans the interesting spectrum:
//!
//! * `quorum = n` — never terminates when one process is silent: the
//!   Decision-violation face of the FLP impossibility.
//! * `quorum = n − 1` — always terminates 1-resiliently but decides at most
//!   two distinct values: it *violates* consensus agreement (the checker
//!   finds the run), yet *solves* 2-set agreement, the classical example of
//!   a decision problem solvable 1-resiliently (Section 7 / Corollary 7.3).

use std::collections::BTreeMap;

use layered_core::{Pid, Value};

use crate::traits::MpProtocol;

/// Local state of [`MpCollectMin`]: the inputs known per process, and the
/// completed phase count.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CollectState {
    /// Known (process, input) pairs, always including the own input.
    pub known: BTreeMap<Pid, Value>,
    /// Completed local phases.
    pub completed: u16,
}

/// Collect-then-decide-min with a configurable quorum.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MpCollectMin {
    quorum: usize,
}

impl MpCollectMin {
    /// A protocol that decides the minimum input among the first `quorum`
    /// processes whose inputs it learns.
    ///
    /// # Panics
    ///
    /// Panics if `quorum == 0`.
    #[must_use]
    pub fn new(quorum: usize) -> Self {
        assert!(quorum > 0, "quorum must be positive");
        MpCollectMin { quorum }
    }

    /// The quorum size.
    #[must_use]
    pub fn quorum(&self) -> usize {
        self.quorum
    }
}

impl MpProtocol for MpCollectMin {
    type LocalState = CollectState;
    /// Messages carry the sender's full known map.
    type Msg = BTreeMap<Pid, Value>;

    fn init(&self, _n: usize, me: Pid, input: Value) -> CollectState {
        CollectState {
            known: BTreeMap::from([(me, input)]),
            completed: 0,
        }
    }

    fn send(&self, ls: &CollectState, me: Pid, n: usize) -> Vec<(Pid, BTreeMap<Pid, Value>)> {
        Pid::all(n)
            .filter(|&p| p != me)
            .map(|p| (p, ls.known.clone()))
            .collect()
    }

    fn absorb(
        &self,
        mut ls: CollectState,
        _me: Pid,
        delivered: &[(Pid, BTreeMap<Pid, Value>)],
    ) -> CollectState {
        for (_, msg) in delivered {
            for (&p, &v) in msg {
                ls.known.entry(p).or_insert(v);
            }
        }
        ls.completed += 1;
        ls
    }

    fn decide(&self, ls: &CollectState) -> Option<Value> {
        (ls.known.len() >= self.quorum)
            .then(|| *ls.known.values().min().expect("known is non-empty"))
    }

    fn name(&self) -> String {
        format!("MpCollectMin(quorum={})", self.quorum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decides_once_quorum_known() {
        let p = MpCollectMin::new(2);
        let ls = p.init(3, Pid::new(0), Value::ONE);
        assert_eq!(p.decide(&ls), None);
        let sends = p.send(&ls, Pid::new(0), 3);
        assert_eq!(sends.len(), 2); // broadcast to the other two
        let msg = BTreeMap::from([(Pid::new(1), Value::ZERO)]);
        let ls = p.absorb(ls, Pid::new(0), &[(Pid::new(1), msg)]);
        assert_eq!(p.decide(&ls), Some(Value::ZERO));
    }

    #[test]
    fn quorum_n_waits_for_everyone() {
        let p = MpCollectMin::new(3);
        let ls = p.init(3, Pid::new(0), Value::ONE);
        let msg = BTreeMap::from([(Pid::new(1), Value::ZERO)]);
        let ls = p.absorb(ls, Pid::new(0), &[(Pid::new(1), msg)]);
        assert_eq!(p.decide(&ls), None); // still missing p3's input
    }

    #[test]
    fn first_learned_value_sticks() {
        let p = MpCollectMin::new(2);
        let ls = p.init(2, Pid::new(0), Value::ONE);
        let m1 = BTreeMap::from([(Pid::new(1), Value::ZERO)]);
        let ls = p.absorb(ls, Pid::new(0), &[(Pid::new(1), m1)]);
        // Re-learning a different value for p2 must not overwrite.
        let m2 = BTreeMap::from([(Pid::new(1), Value::new(9))]);
        let ls = p.absorb(ls, Pid::new(0), &[(Pid::new(1), m2)]);
        assert_eq!(ls.known[&Pid::new(1)], Value::ZERO);
    }
}
