//! Early-stopping FloodMin.
//!
//! The classical early-deciding rule for crash-style failures: keep
//! flooding known values, track which senders were heard from each round,
//! and decide as soon as two consecutive rounds deliver messages from the
//! *same* sender set (no failure interfered in between, so everyone heard
//! everything you heard); fall back to the `t + 1`-round deadline
//! otherwise. In failure-free runs this decides after 2 rounds regardless
//! of `t` — matching the spirit of Lemma 6.4 (once failures stop, valence
//! collapses) and the Dwork–Moses-style `f + 2` bounds the paper discusses
//! after it.
//!
//! Its correctness over all `S^t`-runs is *checked*, not assumed: the
//! experiment harness sweeps it exhaustively next to plain FloodMin.

use std::collections::{BTreeMap, BTreeSet};

use layered_core::{Pid, Value};

use crate::traits::SyncProtocol;

/// Local state of [`EarlyFloodMin`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EarlyState {
    /// Input values heard of so far.
    pub known: BTreeSet<Value>,
    /// Senders heard from in the previous round (`None` before round 1).
    pub prev_heard: Option<BTreeSet<Pid>>,
    /// Whether the early rule has fired.
    pub stopped: bool,
    /// Completed rounds.
    pub completed: u16,
}

/// FloodMin with the two-identical-rounds early-stopping rule and a hard
/// deadline of `deadline` rounds (use `t + 1`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EarlyFloodMin {
    deadline: u16,
}

impl EarlyFloodMin {
    /// An early-stopping FloodMin with the given hard deadline.
    ///
    /// # Panics
    ///
    /// Panics if `deadline == 0`.
    #[must_use]
    pub fn new(deadline: u16) -> Self {
        assert!(deadline > 0, "deadline must be at least one round");
        EarlyFloodMin { deadline }
    }

    /// The hard deadline in rounds.
    #[must_use]
    pub fn deadline(&self) -> u16 {
        self.deadline
    }
}

impl SyncProtocol for EarlyFloodMin {
    type LocalState = EarlyState;
    /// Messages carry the sender's known set (keyed to preserve identity).
    type Msg = BTreeMap<Pid, BTreeSet<Value>>;

    fn init(&self, _n: usize, me: Pid, input: Value) -> EarlyState {
        let _ = me;
        EarlyState {
            known: BTreeSet::from([input]),
            prev_heard: None,
            stopped: false,
            completed: 0,
        }
    }

    fn message(&self, ls: &EarlyState, _to: Pid) -> Self::Msg {
        // The sender key is filled in by the receiver via the received
        // index; we still ship the set under a dummy key for simplicity of
        // the type. (A map with a single entry keyed by the true sender
        // would require knowing `me` here; the receiver uses positions.)
        BTreeMap::from([(Pid::new(0), ls.known.clone())])
    }

    fn transition(
        &self,
        mut ls: EarlyState,
        me: Pid,
        received: &[Option<Self::Msg>],
    ) -> EarlyState {
        let mut heard = BTreeSet::new();
        for (from, msg) in received.iter().enumerate() {
            if let Some(m) = msg {
                if Pid::new(from) != me {
                    heard.insert(Pid::new(from));
                }
                for set in m.values() {
                    ls.known.extend(set.iter().copied());
                }
            }
        }
        if !ls.stopped {
            if let Some(prev) = &ls.prev_heard {
                if *prev == heard {
                    ls.stopped = true;
                }
            }
        }
        ls.prev_heard = Some(heard);
        ls.completed += 1;
        ls
    }

    fn decide(&self, ls: &EarlyState) -> Option<Value> {
        (ls.stopped || ls.completed >= self.deadline)
            .then(|| *ls.known.iter().next().expect("known is non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_msg(v: u32) -> Option<BTreeMap<Pid, BTreeSet<Value>>> {
        Some(BTreeMap::from([(
            Pid::new(0),
            BTreeSet::from([Value::new(v)]),
        )]))
    }

    #[test]
    fn decides_after_two_identical_rounds() {
        let p = EarlyFloodMin::new(4);
        let me = Pid::new(0);
        let mut ls = p.init(3, me, Value::ONE);
        // Round 1: heard everyone.
        ls = p.transition(ls, me, &[full_msg(1), full_msg(1), full_msg(0)]);
        assert_eq!(p.decide(&ls), None, "one round is not enough");
        // Round 2: same sender set => early stop, well before the deadline.
        ls = p.transition(ls, me, &[full_msg(1), full_msg(1), full_msg(0)]);
        assert_eq!(p.decide(&ls), Some(Value::ZERO));
        assert_eq!(ls.completed, 2);
    }

    #[test]
    fn sender_set_change_defers_decision() {
        let p = EarlyFloodMin::new(4);
        let me = Pid::new(0);
        let mut ls = p.init(3, me, Value::ONE);
        ls = p.transition(ls, me, &[full_msg(1), full_msg(1), full_msg(1)]);
        // Round 2: p3 silenced — sets differ, no early decision.
        ls = p.transition(ls, me, &[full_msg(1), full_msg(1), None]);
        assert_eq!(p.decide(&ls), None);
        // Round 3: same (reduced) set twice => decide.
        ls = p.transition(ls, me, &[full_msg(1), full_msg(1), None]);
        assert_eq!(p.decide(&ls), Some(Value::ONE));
    }

    #[test]
    fn hard_deadline_forces_decision() {
        let p = EarlyFloodMin::new(2);
        let me = Pid::new(0);
        let mut ls = p.init(2, me, Value::ONE);
        // Alternating sender sets never trigger the early rule...
        ls = p.transition(ls, me, &[full_msg(1), full_msg(0)]);
        ls = p.transition(ls, me, &[full_msg(1), None]);
        // ...but the deadline fires.
        assert_eq!(p.decide(&ls), Some(Value::ZERO));
    }
}
