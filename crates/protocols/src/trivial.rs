//! Trivial message-passing protocols: decide without coordination.
//!
//! These solve the *solvable* corners of the Section 7 task library —
//! [`MpIdentity`] solves the identity task and [`MpConstant`] the constant
//! task, both wait-free (no communication at all) — and double as
//! calibration protocols for the task checker.

use layered_core::{Pid, Value};

use crate::traits::MpProtocol;

/// Local state of the trivial protocols: just the own input.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TrivialState {
    /// The process's input value.
    pub input: Value,
}

/// Decides the own input immediately; sends nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MpIdentity;

impl MpProtocol for MpIdentity {
    type LocalState = TrivialState;
    type Msg = ();

    fn init(&self, _n: usize, _me: Pid, input: Value) -> TrivialState {
        TrivialState { input }
    }

    fn send(&self, _ls: &TrivialState, _me: Pid, _n: usize) -> Vec<(Pid, ())> {
        Vec::new()
    }

    fn absorb(&self, ls: TrivialState, _me: Pid, _delivered: &[(Pid, ())]) -> TrivialState {
        ls
    }

    fn decide(&self, ls: &TrivialState) -> Option<Value> {
        Some(ls.input)
    }
}

/// Decides a fixed value immediately; sends nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MpConstant {
    value: Value,
}

impl MpConstant {
    /// A protocol in which everyone decides `value`.
    #[must_use]
    pub fn new(value: Value) -> Self {
        MpConstant { value }
    }
}

impl MpProtocol for MpConstant {
    type LocalState = TrivialState;
    type Msg = ();

    fn init(&self, _n: usize, _me: Pid, input: Value) -> TrivialState {
        TrivialState { input }
    }

    fn send(&self, _ls: &TrivialState, _me: Pid, _n: usize) -> Vec<(Pid, ())> {
        Vec::new()
    }

    fn absorb(&self, ls: TrivialState, _me: Pid, _delivered: &[(Pid, ())]) -> TrivialState {
        ls
    }

    fn decide(&self, _ls: &TrivialState) -> Option<Value> {
        Some(self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_decides_input() {
        let p = MpIdentity;
        let ls = p.init(3, Pid::new(1), Value::ONE);
        assert_eq!(p.decide(&ls), Some(Value::ONE));
        assert!(p.send(&ls, Pid::new(1), 3).is_empty());
    }

    #[test]
    fn constant_ignores_input() {
        let p = MpConstant::new(Value::ZERO);
        let ls = p.init(3, Pid::new(1), Value::ONE);
        assert_eq!(p.decide(&ls), Some(Value::ZERO));
    }
}
