//! Protocol interfaces for the three model families of the paper.
//!
//! The paper fixes a deterministic protocol `A` and analyzes the system
//! `R(A, M)` of its runs in a model `M`. These traits are the executable
//! protocol interfaces; the model crates (`layered-sync-mobile`,
//! `layered-async-sm`, `layered-async-mp`, `layered-sync-crash`) turn a
//! protocol into a [`LayeredModel`](layered_core::LayeredModel) by pairing
//! it with a layering.
//!
//! Protocols are *deterministic* (Section 5: "we will focus on deterministic
//! protocols") and *full-information-capable*: local states can grow without
//! bound, and the environment (scheduler) is the only source of
//! nondeterminism.

use std::fmt::Debug;
use std::hash::Hash;

use layered_core::{FieldPacker, Pid, Value};

/// The default for the `name` hooks below: the implementing type's bare name
/// (no module path), for labeling simulation records and reports.
fn type_short_name<T>() -> String {
    std::any::type_name::<T>()
        .rsplit("::")
        .next()
        .unwrap_or("protocol")
        .to_string()
}

/// Marker for *anonymous* (pid-oblivious) protocols: the behavior of a
/// process depends only on its input and on the contents of the messages /
/// registers it observes — never on process identifiers.
///
/// Formally, for every permutation `π` of the process names, running the
/// protocol at process `π(i)` with `i`'s input and `π`-renamed observations
/// produces the `π`-renamed local state of running it at `i`. FloodMin-style
/// protocols qualify (their local state is a value *set* plus a counter);
/// protocols that break ties by pid, inspect sender identities, or seed
/// state with `me` do not.
///
/// Anonymity is what makes a model's global transition relation equivariant
/// under process renaming, which in turn is the soundness precondition for
/// the symmetry-reduced quotient engine
/// ([`QuotientSpace`](layered_core::QuotientSpace)): the model crates'
/// `Symmetric` impls are bounded on this marker. Implement it only after
/// checking the law above — an incorrect `Anonymous` claim silently
/// invalidates every quotient verdict (the per-model `symmetry.rs` tests
/// check equivariance empirically at small `n`).
pub trait Anonymous {}

/// A protocol for synchronous round-based models (`M^mf` of Section 5 and
/// the t-resilient synchronous model of Section 6).
///
/// In every round each process sends one message to every other process
/// (computed by [`message`](SyncProtocol::message)), then moves to a new
/// local state based on the vector of received messages
/// ([`transition`](SyncProtocol::transition)); the environment decides which
/// messages are lost. A `None` entry in the received vector means the
/// message was lost (or the sender is silenced); a process always "receives"
/// its own message.
pub trait SyncProtocol {
    /// The protocol's local state.
    type LocalState: Clone + Eq + Hash + Debug + 'static;
    /// The message type.
    type Msg: Clone + Eq + Hash + Debug + 'static;

    /// Initial local state of process `me` with input `input` in an
    /// `n`-process system.
    fn init(&self, n: usize, me: Pid, input: Value) -> Self::LocalState;

    /// The message `ls`'s owner sends to `to` this round.
    fn message(&self, ls: &Self::LocalState, to: Pid) -> Self::Msg;

    /// The next local state after receiving `received` (indexed by sender;
    /// `received[me]` is the process's own message).
    fn transition(
        &self,
        ls: Self::LocalState,
        me: Pid,
        received: &[Option<Self::Msg>],
    ) -> Self::LocalState;

    /// The protocol's decision at `ls`, if any. Decisions are latched
    /// (write-once) by the model; returning `None` after having returned
    /// `Some` does not un-decide.
    fn decide(&self, ls: &Self::LocalState) -> Option<Value>;

    /// A human-readable protocol label, used by reports and simulation
    /// records. Defaults to the implementing type's name; implementations
    /// with parameters (deadlines, quorums) should include them.
    fn name(&self) -> String
    where
        Self: Sized,
    {
        type_short_name::<Self>()
    }

    /// A fixed-width bitfield codec for the local state, if the protocol's
    /// reachable local states fit one (see
    /// [`FieldPacker`]'s contract). Models compose it into per-process
    /// lanes of a packed arena word; the default `None` keeps boxed
    /// storage.
    fn local_packer(&self) -> Option<FieldPacker<Self::LocalState>> {
        None
    }
}

/// A protocol for the asynchronous single-writer/multi-reader shared-memory
/// model `M^rw` under the synchronic layering `S^rw` (Section 5.1).
///
/// A *local phase* of process `i` is: at most one `write_i` action followed
/// by a maximal sequence of reads in which no variable is read twice —
/// i.e. one optional write of `V_i` and then a read of every variable. The
/// layering schedules whole local phases; the protocol only specifies what
/// to write and how to absorb the read vector.
pub trait SmProtocol {
    /// The protocol's local state.
    type LocalState: Clone + Eq + Hash + Debug + 'static;
    /// The register value type (contents of the single-writer variables).
    type Reg: Clone + Eq + Hash + Debug + 'static;

    /// Initial local state of process `me` with input `input`.
    fn init(&self, n: usize, me: Pid, input: Value) -> Self::LocalState;

    /// The value to write into `V_me` at the start of this local phase, or
    /// `None` to skip the write.
    fn write_value(&self, ls: &Self::LocalState) -> Option<Self::Reg>;

    /// Absorbs the vector of register values read during the phase
    /// (`regs[i]` is `V_i`'s value at read time; `None` = never written).
    fn absorb(&self, ls: Self::LocalState, me: Pid, regs: &[Option<Self::Reg>])
        -> Self::LocalState;

    /// The protocol's decision at `ls`, if any (latched by the model).
    fn decide(&self, ls: &Self::LocalState) -> Option<Value>;

    /// A human-readable protocol label, used by reports and simulation
    /// records. Defaults to the implementing type's name.
    fn name(&self) -> String
    where
        Self: Sized,
    {
        type_short_name::<Self>()
    }

    /// A fixed-width bitfield codec for the local state (see
    /// [`SyncProtocol::local_packer`]). Default `None`.
    fn local_packer(&self) -> Option<FieldPacker<Self::LocalState>> {
        None
    }

    /// A fixed-width bitfield codec for register contents, used by packed
    /// arena words to encode the shared-memory array. Default `None`.
    fn reg_packer(&self) -> Option<FieldPacker<Self::Reg>> {
        None
    }
}

/// A protocol for the asynchronous message-passing model under the
/// permutation layering `S^per` (Section 5.1).
///
/// A *local phase* of process `i` consists of a send step and a receive
/// step: `i` emits at most one message per destination — computed from its
/// local state at the *start* of the phase — and then absorbs every message
/// outstanding for it. This is the message-passing analogue of an immediate
/// snapshot's write-then-read phase ([5, 25, 4] in the paper): when two
/// processes are scheduled concurrently, both send before either receives,
/// so each sees the other's current-phase message; when scheduled
/// sequentially, only the later one sees the earlier one's message. These
/// one-process differences are exactly what make adjacent-transposition
/// states similar (Section 5.1).
pub trait MpProtocol {
    /// The protocol's local state.
    type LocalState: Clone + Eq + Hash + Debug + 'static;
    /// The message type.
    type Msg: Clone + Eq + Hash + Debug + 'static;

    /// Initial local state of process `me` with input `input`.
    fn init(&self, n: usize, me: Pid, input: Value) -> Self::LocalState;

    /// The send step: messages to emit this phase, at most one per
    /// destination, destinations drawn from the `n` processes (never `me`).
    fn send(&self, ls: &Self::LocalState, me: Pid, n: usize) -> Vec<(Pid, Self::Msg)>;

    /// The receive step: absorbs every outstanding message (`delivered` in
    /// arrival order, tagged with senders) and completes the phase.
    fn absorb(
        &self,
        ls: Self::LocalState,
        me: Pid,
        delivered: &[(Pid, Self::Msg)],
    ) -> Self::LocalState;

    /// The protocol's decision at `ls`, if any (latched by the model).
    fn decide(&self, ls: &Self::LocalState) -> Option<Value>;

    /// A human-readable protocol label, used by reports and simulation
    /// records. Defaults to the implementing type's name.
    fn name(&self) -> String
    where
        Self: Sized,
    {
        type_short_name::<Self>()
    }

    /// A fixed-width bitfield codec for the local state (see
    /// [`SyncProtocol::local_packer`]). Default `None`.
    fn local_packer(&self) -> Option<FieldPacker<Self::LocalState>> {
        None
    }

    /// A fixed-width bitfield codec for message payloads, used by packed
    /// arena words to encode in-flight mailboxes. Default `None`.
    fn msg_packer(&self) -> Option<FieldPacker<Self::Msg>> {
        None
    }
}
