//! The FloodSet/FloodMin protocol family.
//!
//! FloodMin is the classical flooding consensus protocol: every process
//! maintains the set of input values it has heard of, forwards that set
//! every round (phase), and after a fixed number of rounds decides the
//! minimum of its set. With deadline `t + 1` rounds it solves t-resilient
//! consensus in the synchronous model — witnessing that the Dolev–Strong
//! lower bound reproduced by Corollary 6.3 is *tight*. With any shorter
//! deadline, or in any of the asynchronous models, the layered-analysis
//! engine finds explicit violations, as the paper's impossibility results
//! dictate.
//!
//! Variants for all three model families are provided: [`FloodMin`]
//! (synchronous rounds), [`SmFloodMin`] (shared-memory phases), and
//! [`MpFloodMin`] (message-passing phases).

use std::collections::BTreeSet;

use layered_core::{FieldPacker, Pid, SnapshotError, SnapshotReader, SnapshotState, Value};

use crate::traits::{Anonymous, MpProtocol, SmProtocol, SyncProtocol};

/// Width of the value-set bitmask in the packed codecs below: sets over
/// values `0..4` pack, wider values spill.
const MASK_BITS: u32 = 4;

/// The 8-bit [`FloodState`] codec every FloodMin variant reports from its
/// `local_packer` hook: a 4-bit membership mask over values `0..4` in the
/// low bits, the completed-phase counter (capped at 15) above it.
fn flood_local_packer() -> FieldPacker<FloodState> {
    FieldPacker::new(
        2 * MASK_BITS,
        |ls: &FloodState| {
            if ls.completed >= 1 << MASK_BITS {
                return None;
            }
            Some(pack_value_set(&ls.known)? | (u64::from(ls.completed) << MASK_BITS))
        },
        |w| FloodState {
            known: unpack_value_set(w & ((1 << MASK_BITS) - 1)),
            completed: ((w >> MASK_BITS) & ((1 << MASK_BITS) - 1)) as u16,
        },
    )
}

/// The 4-bit value-set codec the shared-memory and message-passing variants
/// report for registers and messages (both are `BTreeSet<Value>`).
fn flood_set_packer() -> FieldPacker<BTreeSet<Value>> {
    FieldPacker::new(MASK_BITS, pack_value_set, unpack_value_set)
}

fn pack_value_set(s: &BTreeSet<Value>) -> Option<u64> {
    let mut mask = 0u64;
    for v in s {
        if v.get() >= MASK_BITS {
            return None;
        }
        mask |= 1 << v.get();
    }
    Some(mask)
}

fn unpack_value_set(mask: u64) -> BTreeSet<Value> {
    (0..MASK_BITS)
        .filter(|b| mask & (1 << b) != 0)
        .map(Value::new)
        .collect()
}

/// Local state of every FloodMin variant: the set of known input values and
/// the number of completed rounds/phases.
///
/// Derives `Ord` (sets compare lexicographically, then the phase counter)
/// so model states built over it can be canonicalized by the symmetry
/// engine's minimum-over-orbit rule.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FloodState {
    /// Input values heard of so far (always contains the own input).
    pub known: BTreeSet<Value>,
    /// Completed rounds (synchronous) or local phases (asynchronous).
    pub completed: u16,
}

impl FloodState {
    fn new(input: Value) -> Self {
        FloodState {
            known: BTreeSet::from([input]),
            completed: 0,
        }
    }

    fn min_known(&self) -> Value {
        *self
            .known
            .iter()
            .next()
            .expect("known always contains own input")
    }
}

impl SnapshotState for FloodState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.known.encode(out);
        self.completed.encode(out);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FloodState {
            known: BTreeSet::decode(r)?,
            completed: u16::decode(r)?,
        })
    }
}

/// Synchronous FloodMin with a decision deadline of `rounds` rounds.
///
/// `FloodMin::new(t + 1)` solves consensus t-resiliently; `FloodMin::new(t)`
/// is the *truncated* variant whose agreement violation the Section 6
/// experiments exhibit.
///
/// # Examples
///
/// ```
/// use layered_protocols::{FloodMin, SyncProtocol};
/// use layered_core::{Pid, Value};
///
/// let p = FloodMin::new(2);
/// let ls = p.init(3, Pid::new(0), Value::ONE);
/// assert_eq!(p.decide(&ls), None); // undecided before the deadline
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FloodMin {
    rounds: u16,
}

impl FloodMin {
    /// A FloodMin deciding after exactly `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` (use [`HastyMin`](crate::HastyMin) for the
    /// degenerate protocol that decides immediately).
    #[must_use]
    pub fn new(rounds: u16) -> Self {
        assert!(rounds > 0, "FloodMin needs at least one round");
        FloodMin { rounds }
    }

    /// The decision deadline in rounds.
    #[must_use]
    pub fn rounds(&self) -> u16 {
        self.rounds
    }
}

impl SyncProtocol for FloodMin {
    type LocalState = FloodState;
    type Msg = BTreeSet<Value>;

    fn init(&self, _n: usize, _me: Pid, input: Value) -> FloodState {
        FloodState::new(input)
    }

    fn message(&self, ls: &FloodState, _to: Pid) -> BTreeSet<Value> {
        ls.known.clone()
    }

    fn transition(
        &self,
        mut ls: FloodState,
        _me: Pid,
        received: &[Option<BTreeSet<Value>>],
    ) -> FloodState {
        for msg in received.iter().flatten() {
            ls.known.extend(msg.iter().copied());
        }
        ls.completed += 1;
        ls
    }

    fn decide(&self, ls: &FloodState) -> Option<Value> {
        (ls.completed >= self.rounds).then(|| ls.min_known())
    }

    fn name(&self) -> String {
        format!("FloodMin(deadline={})", self.rounds)
    }

    fn local_packer(&self) -> Option<FieldPacker<FloodState>> {
        Some(flood_local_packer())
    }
}

// FloodMin's transitions only union value sets and bump a counter; no hook
// reads `me`, `to`, or a sender pid.
impl Anonymous for FloodMin {}

/// A protocol that decides its own input immediately, without communicating.
///
/// Violates Agreement on every mixed-input run; used to validate that the
/// checker reports agreement violations (and as the paper's reminder that
/// Validity alone is trivial to satisfy).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HastyMin;

impl SyncProtocol for HastyMin {
    type LocalState = FloodState;
    type Msg = BTreeSet<Value>;

    fn init(&self, _n: usize, _me: Pid, input: Value) -> FloodState {
        FloodState::new(input)
    }

    fn message(&self, ls: &FloodState, _to: Pid) -> BTreeSet<Value> {
        ls.known.clone()
    }

    fn transition(
        &self,
        mut ls: FloodState,
        _me: Pid,
        received: &[Option<BTreeSet<Value>>],
    ) -> FloodState {
        for msg in received.iter().flatten() {
            ls.known.extend(msg.iter().copied());
        }
        ls.completed += 1;
        ls
    }

    fn decide(&self, ls: &FloodState) -> Option<Value> {
        Some(ls.min_known())
    }

    fn local_packer(&self) -> Option<FieldPacker<FloodState>> {
        Some(flood_local_packer())
    }
}

impl Anonymous for HastyMin {}

/// Shared-memory FloodMin: write the known set, read all registers, union
/// them in; decide the minimum after `phases` local phases.
///
/// In the synchronic layering `S^rw` this protocol cannot solve consensus
/// (Corollary 5.4): the experiments exhibit its agreement/decision
/// violations for every deadline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SmFloodMin {
    phases: u16,
}

impl SmFloodMin {
    /// A shared-memory FloodMin deciding after `phases` local phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases == 0`.
    #[must_use]
    pub fn new(phases: u16) -> Self {
        assert!(phases > 0, "SmFloodMin needs at least one phase");
        SmFloodMin { phases }
    }

    /// The decision deadline in local phases.
    #[must_use]
    pub fn phases(&self) -> u16 {
        self.phases
    }
}

impl SmProtocol for SmFloodMin {
    type LocalState = FloodState;
    type Reg = BTreeSet<Value>;

    fn init(&self, _n: usize, _me: Pid, input: Value) -> FloodState {
        FloodState::new(input)
    }

    fn write_value(&self, ls: &FloodState) -> Option<BTreeSet<Value>> {
        Some(ls.known.clone())
    }

    fn absorb(&self, mut ls: FloodState, _me: Pid, regs: &[Option<BTreeSet<Value>>]) -> FloodState {
        for reg in regs.iter().flatten() {
            ls.known.extend(reg.iter().copied());
        }
        ls.completed += 1;
        ls
    }

    fn decide(&self, ls: &FloodState) -> Option<Value> {
        (ls.completed >= self.phases).then(|| ls.min_known())
    }

    fn name(&self) -> String {
        format!("SmFloodMin(deadline={})", self.phases)
    }

    fn local_packer(&self) -> Option<FieldPacker<FloodState>> {
        Some(flood_local_packer())
    }

    fn reg_packer(&self) -> Option<FieldPacker<BTreeSet<Value>>> {
        Some(flood_set_packer())
    }
}

impl Anonymous for SmFloodMin {}

/// Message-passing FloodMin: broadcast the known set each local phase;
/// decide the minimum after `phases` local phases.
///
/// The FLP-style impossibility under the permutation layering `S^per`
/// guarantees this protocol cannot solve consensus for any deadline; the
/// experiments exhibit its violations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MpFloodMin {
    phases: u16,
}

impl MpFloodMin {
    /// A message-passing FloodMin deciding after `phases` local phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases == 0`.
    #[must_use]
    pub fn new(phases: u16) -> Self {
        assert!(phases > 0, "MpFloodMin needs at least one phase");
        MpFloodMin { phases }
    }

    /// The decision deadline in local phases.
    #[must_use]
    pub fn phases(&self) -> u16 {
        self.phases
    }
}

impl MpProtocol for MpFloodMin {
    type LocalState = FloodState;
    type Msg = BTreeSet<Value>;

    fn init(&self, _n: usize, _me: Pid, input: Value) -> FloodState {
        FloodState::new(input)
    }

    fn send(&self, ls: &FloodState, me: Pid, n: usize) -> Vec<(Pid, BTreeSet<Value>)> {
        Pid::all(n)
            .filter(|&p| p != me)
            .map(|p| (p, ls.known.clone()))
            .collect()
    }

    fn absorb(
        &self,
        mut ls: FloodState,
        _me: Pid,
        delivered: &[(Pid, BTreeSet<Value>)],
    ) -> FloodState {
        for (_, msg) in delivered {
            ls.known.extend(msg.iter().copied());
        }
        ls.completed += 1;
        ls
    }

    fn decide(&self, ls: &FloodState) -> Option<Value> {
        (ls.completed >= self.phases).then(|| ls.min_known())
    }

    fn name(&self) -> String {
        format!("MpFloodMin(deadline={})", self.phases)
    }

    fn local_packer(&self) -> Option<FieldPacker<FloodState>> {
        Some(flood_local_packer())
    }

    fn msg_packer(&self) -> Option<FieldPacker<BTreeSet<Value>>> {
        Some(flood_set_packer())
    }
}

// The broadcast in `send` enumerates destinations but the *message* is
// pid-independent, and `absorb` ignores sender tags.
impl Anonymous for MpFloodMin {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_state_tracks_minimum() {
        let mut s = FloodState::new(Value::new(3));
        assert_eq!(s.min_known(), Value::new(3));
        s.known.insert(Value::ZERO);
        assert_eq!(s.min_known(), Value::ZERO);
    }

    #[test]
    fn floodmin_decides_only_at_deadline() {
        let p = FloodMin::new(2);
        let mut ls = p.init(3, Pid::new(0), Value::ONE);
        assert_eq!(p.decide(&ls), None);
        ls = p.transition(ls, Pid::new(0), &[None, None, None]);
        assert_eq!(p.decide(&ls), None);
        ls = p.transition(ls, Pid::new(0), &[None, None, None]);
        assert_eq!(p.decide(&ls), Some(Value::ONE));
    }

    #[test]
    fn floodmin_unions_received_sets() {
        let p = FloodMin::new(1);
        let ls = p.init(2, Pid::new(0), Value::ONE);
        let msg = BTreeSet::from([Value::ZERO]);
        let ls = p.transition(ls, Pid::new(0), &[None, Some(msg)]);
        assert_eq!(p.decide(&ls), Some(Value::ZERO));
    }

    #[test]
    fn hasty_decides_immediately() {
        let p = HastyMin;
        let ls = p.init(2, Pid::new(1), Value::ONE);
        assert_eq!(p.decide(&ls), Some(Value::ONE));
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn floodmin_zero_rounds_rejected() {
        let _ = FloodMin::new(0);
    }

    #[test]
    fn flood_codec_round_trips_and_spills_wide_states() {
        let p = FloodMin::new(2).local_packer().expect("FloodMin packs");
        assert_eq!(p.bits(), 8);
        for mask in 1u64..16 {
            for completed in 0u16..16 {
                let s = FloodState {
                    known: unpack_value_set(mask),
                    completed,
                };
                let w = p.pack(&s).expect("in-range state packs");
                assert_eq!(p.unpack(w), s);
            }
        }
        let wide_value = FloodState {
            known: BTreeSet::from([Value::new(4)]),
            completed: 0,
        };
        assert_eq!(p.pack(&wide_value), None, "values above 3 spill");
        let deep = FloodState {
            known: BTreeSet::from([Value::ZERO]),
            completed: 16,
        };
        assert_eq!(p.pack(&deep), None, "phase counters above 15 spill");
    }

    #[test]
    fn flood_set_codec_round_trips() {
        let p = SmFloodMin::new(1)
            .reg_packer()
            .expect("SmFloodMin packs regs");
        let set = BTreeSet::from([Value::ZERO, Value::new(2)]);
        let w = p.pack(&set).expect("small set packs");
        assert_eq!(p.unpack(w), set);
        assert_eq!(p.pack(&BTreeSet::from([Value::new(9)])), None);
    }
}
