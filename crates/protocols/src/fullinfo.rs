//! The full-information protocol for synchronous round-based models.
//!
//! Each process's local state is its *view*: the complete history of what it
//! has seen. Every round it sends its entire view to everyone and stacks the
//! received views into a new root node. Full-information protocols are the
//! canonical "hardest to fool" protocols: any protocol's behavior is a
//! function of the full-information view, so lower bounds exhibited against
//! full-information deciders (here: decide the minimum input visible in the
//! view at a deadline) carry the most structure. The paper appeals to
//! full-information protocols when arguing that the synchronic submodel is
//! "very close to being synchronous" (Section 5.1).

use std::collections::BTreeSet;

use layered_core::{Pid, Value};

use crate::traits::SyncProtocol;

/// A process's complete knowledge after some number of rounds.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum View {
    /// The initial view: own identity and input.
    Input(Pid, Value),
    /// One round of exchange: own identity plus the views received from each
    /// process (`None` = message lost).
    Round(Pid, Vec<Option<View>>),
}

impl View {
    /// The owner of this view.
    #[must_use]
    pub fn owner(&self) -> Pid {
        match self {
            View::Input(p, _) | View::Round(p, _) => *p,
        }
    }

    /// Number of completed rounds recorded in the view.
    #[must_use]
    pub fn rounds(&self) -> usize {
        match self {
            View::Input(..) => 0,
            View::Round(_, received) => {
                1 + received
                    .iter()
                    .flatten()
                    .map(View::rounds)
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    /// All input values visible anywhere in the view.
    #[must_use]
    pub fn visible_inputs(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        self.collect_inputs(&mut out);
        out
    }

    fn collect_inputs(&self, out: &mut BTreeSet<Value>) {
        match self {
            View::Input(_, v) => {
                out.insert(*v);
            }
            View::Round(_, received) => {
                for sub in received.iter().flatten() {
                    sub.collect_inputs(out);
                }
            }
        }
    }
}

/// The full-information protocol with a min-of-visible-inputs decision rule
/// at a deadline of `rounds` rounds.
///
/// Behaviorally equivalent to [`FloodMin`](crate::FloodMin) in what it
/// decides, but its state space is the full view structure — useful for
/// validating that the layered analysis does not depend on protocol state
/// granularity, and as the worst-case workload for the benchmarks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FullInfoMin {
    rounds: u16,
}

impl FullInfoMin {
    /// A full-information protocol deciding after `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn new(rounds: u16) -> Self {
        assert!(rounds > 0, "FullInfoMin needs at least one round");
        FullInfoMin { rounds }
    }

    /// The decision deadline in rounds.
    #[must_use]
    pub fn rounds(&self) -> u16 {
        self.rounds
    }
}

impl SyncProtocol for FullInfoMin {
    type LocalState = View;
    type Msg = View;

    fn init(&self, _n: usize, me: Pid, input: Value) -> View {
        View::Input(me, input)
    }

    fn message(&self, ls: &View, _to: Pid) -> View {
        ls.clone()
    }

    fn transition(&self, _ls: View, me: Pid, received: &[Option<View>]) -> View {
        View::Round(me, received.to_vec())
    }

    fn decide(&self, ls: &View) -> Option<Value> {
        (ls.rounds() >= usize::from(self.rounds)).then(|| {
            *ls.visible_inputs()
                .iter()
                .next()
                .expect("a view always contains the own input")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_round_counting() {
        let p = FullInfoMin::new(2);
        let v0 = p.init(2, Pid::new(0), Value::ZERO);
        assert_eq!(v0.rounds(), 0);
        let w0 = p.init(2, Pid::new(1), Value::ONE);
        let v1 = p.transition(v0.clone(), Pid::new(0), &[Some(v0.clone()), Some(w0)]);
        assert_eq!(v1.rounds(), 1);
        assert_eq!(v1.owner(), Pid::new(0));
    }

    #[test]
    fn visible_inputs_accumulate() {
        let p = FullInfoMin::new(1);
        let v0 = p.init(2, Pid::new(0), Value::ONE);
        let w0 = p.init(2, Pid::new(1), Value::ZERO);
        let v1 = p.transition(v0.clone(), Pid::new(0), &[Some(v0), Some(w0)]);
        assert_eq!(
            v1.visible_inputs(),
            BTreeSet::from([Value::ZERO, Value::ONE])
        );
        assert_eq!(p.decide(&v1), Some(Value::ZERO));
    }

    #[test]
    fn lost_messages_hide_inputs() {
        let p = FullInfoMin::new(1);
        let v0 = p.init(2, Pid::new(0), Value::ONE);
        let v1 = p.transition(v0.clone(), Pid::new(0), &[Some(v0), None]);
        assert_eq!(p.decide(&v1), Some(Value::ONE));
    }

    #[test]
    fn undecided_before_deadline() {
        let p = FullInfoMin::new(3);
        let v0 = p.init(2, Pid::new(0), Value::ZERO);
        assert_eq!(p.decide(&v0), None);
    }
}
