//! The RelayRace protocol family: agreement-safe, schedule-dependent
//! deciders.
//!
//! A fixed leader (process `p1`) adopts the input of the first other
//! process it hears from and then announces the decision; everyone else
//! decides on hearing the announcement. These protocols satisfy *Agreement*
//! and *Validity* in **every** run (the adopted value is unique and is
//! somebody's input) while sacrificing *Decision* (a silent leader blocks
//! everyone) — exactly the hypothesis profile of Lemma 3.2, whose
//! conclusion (a bivalent state has no decided processes) the experiments
//! check against these protocols. They are genuinely bivalent at mixed
//! inputs: the scheduler decides whose input reaches the leader first.
//!
//! Variants: [`SyncRelayRace`] (synchronous rounds, including `M^mf`),
//! [`SmRelayRace`] (shared-memory phases), [`MpRelayRace`] (message-passing
//! phases).

use layered_core::{Pid, Value};

use crate::traits::{MpProtocol, SmProtocol, SyncProtocol};

/// The leader is always process `p1`.
const LEADER: Pid = Pid::new(0);

/// Local state of every RelayRace variant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RelayState {
    /// The own input.
    pub input: Value,
    /// The leader's adopted value (leader only; `None` before the race is
    /// won).
    pub chosen: Option<Value>,
    /// The announced decision, once heard.
    pub heard: Option<Value>,
}

impl RelayState {
    fn new(input: Value) -> Self {
        RelayState {
            input,
            chosen: None,
            heard: None,
        }
    }
}

/// Messages of the RelayRace protocols.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RelayMsg {
    /// A non-leader's input offer.
    Input(Value),
    /// The leader's decision announcement.
    Decide(Value),
    /// Padding for rounds in which nothing is said (synchronous variant).
    Silence,
}

/// RelayRace for synchronous round models (`M^mf`, t-resilient).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SyncRelayRace;

/// The decision of a process is held in the local state; the model latches
/// it. We track `me` implicitly: `init` stores nothing extra because the
/// leader test uses the pid passed to each callback.
impl SyncProtocol for SyncRelayRace {
    type LocalState = RelayState;
    type Msg = RelayMsg;

    fn init(&self, _n: usize, _me: Pid, input: Value) -> RelayState {
        RelayState::new(input)
    }

    fn message(&self, ls: &RelayState, _to: Pid) -> RelayMsg {
        // The leader announces once it has chosen; everyone else keeps
        // offering their input. (A non-leader's `chosen` is always None.)
        match ls.chosen.or(ls.heard) {
            Some(v) => RelayMsg::Decide(v),
            None => RelayMsg::Input(ls.input),
        }
    }

    fn transition(&self, mut ls: RelayState, me: Pid, received: &[Option<RelayMsg>]) -> RelayState {
        if me == LEADER {
            if ls.chosen.is_none() {
                ls.chosen = received
                    .iter()
                    .enumerate()
                    .filter(|&(from, _)| from != LEADER.index())
                    .find_map(|(_, msg)| match msg {
                        Some(RelayMsg::Input(v)) => Some(*v),
                        _ => None,
                    });
            }
        } else if ls.heard.is_none() {
            ls.heard = received.iter().flatten().find_map(|msg| match msg {
                RelayMsg::Decide(v) => Some(*v),
                _ => None,
            });
        }
        ls
    }

    fn decide(&self, ls: &RelayState) -> Option<Value> {
        // `decide` has no pid; leader state is distinguishable because only
        // the leader ever sets `chosen`.
        ls.chosen.or(ls.heard)
    }
}

/// RelayRace for the shared-memory synchronic layering.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SmRelayRace;

impl SmProtocol for SmRelayRace {
    type LocalState = RelayState;
    type Reg = RelayMsg;

    fn init(&self, _n: usize, _me: Pid, input: Value) -> RelayState {
        RelayState::new(input)
    }

    fn write_value(&self, ls: &RelayState) -> Option<RelayMsg> {
        match ls.chosen.or(ls.heard) {
            Some(v) => Some(RelayMsg::Decide(v)),
            None => Some(RelayMsg::Input(ls.input)),
        }
    }

    fn absorb(&self, mut ls: RelayState, me: Pid, regs: &[Option<RelayMsg>]) -> RelayState {
        if me == LEADER {
            if ls.chosen.is_none() {
                ls.chosen = regs
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != LEADER.index())
                    .find_map(|(_, reg)| match reg {
                        Some(RelayMsg::Input(v)) => Some(*v),
                        _ => None,
                    });
            }
        } else if ls.heard.is_none() {
            ls.heard = match regs[LEADER.index()] {
                Some(RelayMsg::Decide(v)) => Some(v),
                _ => None,
            };
        }
        ls
    }

    fn decide(&self, ls: &RelayState) -> Option<Value> {
        ls.chosen.or(ls.heard)
    }
}

/// RelayRace for the message-passing permutation layering.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MpRelayRace;

impl MpProtocol for MpRelayRace {
    type LocalState = RelayState;
    type Msg = RelayMsg;

    fn init(&self, _n: usize, _me: Pid, input: Value) -> RelayState {
        RelayState::new(input)
    }

    fn send(&self, ls: &RelayState, me: Pid, n: usize) -> Vec<(Pid, RelayMsg)> {
        if me == LEADER {
            match ls.chosen {
                Some(v) => Pid::all(n)
                    .filter(|&p| p != me)
                    .map(|p| (p, RelayMsg::Decide(v)))
                    .collect(),
                None => Vec::new(),
            }
        } else if ls.heard.is_none() {
            vec![(LEADER, RelayMsg::Input(ls.input))]
        } else {
            Vec::new()
        }
    }

    fn absorb(&self, mut ls: RelayState, me: Pid, delivered: &[(Pid, RelayMsg)]) -> RelayState {
        if me == LEADER {
            if ls.chosen.is_none() {
                ls.chosen = delivered.iter().find_map(|(_, msg)| match msg {
                    RelayMsg::Input(v) => Some(*v),
                    _ => None,
                });
            }
        } else if ls.heard.is_none() {
            ls.heard = delivered.iter().find_map(|(_, msg)| match msg {
                RelayMsg::Decide(v) => Some(*v),
                _ => None,
            });
        }
        ls
    }

    fn decide(&self, ls: &RelayState) -> Option<Value> {
        ls.chosen.or(ls.heard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_leader_adopts_first_input_by_sender_order() {
        let p = SyncRelayRace;
        let ls = p.init(3, LEADER, Value::ZERO);
        let received = vec![
            Some(RelayMsg::Input(Value::ZERO)), // own
            Some(RelayMsg::Input(Value::ONE)),  // p2
            Some(RelayMsg::Input(Value::ZERO)), // p3
        ];
        let ls = p.transition(ls, LEADER, &received);
        assert_eq!(ls.chosen, Some(Value::ONE), "min non-leader sender wins");
        assert_eq!(p.decide(&ls), Some(Value::ONE));
    }

    #[test]
    fn sync_leader_waits_when_nothing_arrives() {
        let p = SyncRelayRace;
        let ls = p.init(3, LEADER, Value::ZERO);
        let ls = p.transition(
            ls,
            LEADER,
            &[Some(RelayMsg::Input(Value::ZERO)), None, None],
        );
        assert_eq!(p.decide(&ls), None);
    }

    #[test]
    fn sync_follower_decides_on_announcement() {
        let p = SyncRelayRace;
        let me = Pid::new(2);
        let ls = p.init(3, me, Value::ZERO);
        let ls = p.transition(
            ls,
            me,
            &[
                Some(RelayMsg::Decide(Value::ONE)),
                None,
                Some(RelayMsg::Input(Value::ZERO)),
            ],
        );
        assert_eq!(p.decide(&ls), Some(Value::ONE));
        // And the decision is sticky.
        let ls = p.transition(ls, me, &[Some(RelayMsg::Decide(Value::ZERO)), None, None]);
        assert_eq!(p.decide(&ls), Some(Value::ONE));
    }

    #[test]
    fn mp_leader_race_depends_on_delivery() {
        let p = MpRelayRace;
        let ls = p.init(3, LEADER, Value::ZERO);
        // Only p3's offer arrives.
        let (ls, _) = (
            p.absorb(ls, LEADER, &[(Pid::new(2), RelayMsg::Input(Value::ONE))]),
            (),
        );
        assert_eq!(p.decide(&ls), Some(Value::ONE));
    }

    #[test]
    fn mp_followers_offer_only_to_leader() {
        let p = MpRelayRace;
        let ls = p.init(3, Pid::new(1), Value::ONE);
        let sends = p.send(&ls, Pid::new(1), 3);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, LEADER);
    }

    #[test]
    fn sm_follower_reads_leader_register() {
        let p = SmRelayRace;
        let me = Pid::new(1);
        let ls = p.init(3, me, Value::ZERO);
        let regs = vec![Some(RelayMsg::Decide(Value::ONE)), None, None];
        let ls = p.absorb(ls, me, &regs);
        assert_eq!(p.decide(&ls), Some(Value::ONE));
    }
}
