//! Fixture tests for the lint engine: a known-bad and a known-good
//! snippet per rule, plus suppression handling.

use layered_lint::rules::{check_file, FileInput, FileKind, Severity, RULES};

const FIXTURE_NAMES: &[&str] = &[
    "engine.states_visited",
    "scan.progress",
    "space.intern.probe_len",
    "valence.memo_hits",
];

fn lint(src: &str) -> layered_lint::rules::FileReport {
    lint_as(src, FileKind::Library, false)
}

fn lint_as(src: &str, kind: FileKind, crate_root: bool) -> layered_lint::rules::FileReport {
    check_file(
        &FileInput {
            path: "crates/fake/src/fixture.rs".to_string(),
            kind,
            crate_root,
            src,
        },
        FIXTURE_NAMES,
    )
}

fn rules_hit(report: &layered_lint::rules::FileReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn l001_flags_hashmap_iteration_in_library_code() {
    let bad = r#"
        use std::collections::HashMap;
        fn leak(m: &HashMap<u32, u32>) -> Vec<u32> {
            m.keys().copied().collect()
        }
    "#;
    let report = lint(bad);
    assert_eq!(rules_hit(&report), vec!["L001"]);
    assert_eq!(report.findings[0].line, 4);
    assert!(report.findings[0].message.contains("keys"));
}

#[test]
fn l001_flags_let_bound_sets_and_for_loops() {
    let bad = r#"
        fn leak() {
            let mut seen = std::collections::HashSet::new();
            seen.insert(1u32);
            for x in &seen { emit(x); }
        }
    "#;
    assert_eq!(rules_hit(&lint(bad)), vec!["L001"]);
}

#[test]
fn l001_allows_order_insensitive_reductions_and_sorts() {
    let good = r#"
        use std::collections::{HashMap, HashSet};
        fn fine(m: &HashMap<u32, u32>, s: &HashSet<u32>) -> (usize, u32, Vec<u32>) {
            let n = m.keys().count();
            let mx = s.iter().copied().max().unwrap_or(0);
            let mut v: Vec<u32> = m.values().copied().collect::<std::collections::BTreeSet<_>>().into_iter().collect();
            v.extend(s.iter().copied().map(|x| x).sum::<u32>().to_string().bytes().map(u32::from));
            (n, mx, v)
        }
    "#;
    assert_eq!(rules_hit(&lint(good)), Vec::<&str>::new());
}

#[test]
fn l001_exempt_in_cfg_test_and_test_files() {
    let in_test_mod = r#"
        fn lib_code() {}
        #[cfg(test)]
        mod tests {
            fn helper(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {
                m.keys().copied().collect()
            }
        }
    "#;
    assert_eq!(rules_hit(&lint(in_test_mod)), Vec::<&str>::new());
    let bad = "fn f(m: &std::collections::HashMap<u32,u32>) -> Vec<u32> { m.keys().collect() }";
    assert_eq!(
        rules_hit(&lint_as(bad, FileKind::Test, false)),
        Vec::<&str>::new()
    );
    assert_eq!(
        rules_hit(&lint_as(bad, FileKind::Example, false)),
        Vec::<&str>::new()
    );
}

#[test]
fn l002_flags_wall_clock_reads() {
    let bad = r#"
        fn record() -> u64 {
            let t = std::time::Instant::now();
            t.elapsed().as_nanos() as u64
        }
    "#;
    assert_eq!(rules_hit(&lint(bad)), vec!["L002"]);
    let bad_sys = "fn now() { let _ = SystemTime::now(); }";
    assert_eq!(rules_hit(&lint(bad_sys)), vec!["L002"]);
}

#[test]
fn l002_exempt_in_benches() {
    let timing = "fn bench() { let _ = std::time::Instant::now(); }";
    assert_eq!(
        rules_hit(&lint_as(timing, FileKind::Bench, false)),
        Vec::<&str>::new()
    );
}

#[test]
fn l003_flags_unwrap_and_empty_expect() {
    let bad = r#"
        fn f(x: Option<u32>, y: Option<u32>) -> u32 {
            x.unwrap() + y.expect("")
        }
    "#;
    let report = lint(bad);
    assert_eq!(rules_hit(&report), vec!["L003", "L003"]);
    assert_eq!(report.findings[0].severity, Severity::Warn);
}

#[test]
fn l003_allows_stated_invariants_and_test_code() {
    let good = r#"
        fn f(x: Option<u32>) -> u32 {
            x.expect("interning guarantees the id was assigned")
        }
        #[cfg(test)]
        mod tests {
            fn t(x: Option<u32>) -> u32 { x.unwrap() }
        }
    "#;
    assert_eq!(rules_hit(&lint(good)), Vec::<&str>::new());
    let bench = "fn b(x: Option<u32>) -> u32 { x.unwrap() }";
    assert_eq!(
        rules_hit(&lint_as(bench, FileKind::Bench, false)),
        Vec::<&str>::new()
    );
}

#[test]
fn l003_does_not_fire_on_strings_or_comments() {
    let good = r#"
        /// Calling `.unwrap()` here would be wrong; see the docs.
        fn f() -> &'static str {
            "contains .unwrap() in text"
        }
    "#;
    assert_eq!(rules_hit(&lint(good)), Vec::<&str>::new());
}

#[test]
fn l004_requires_both_crate_headers() {
    let bare = "//! Docs.\npub fn f() {}";
    let report = lint_as(bare, FileKind::Library, true);
    assert_eq!(rules_hit(&report), vec!["L004", "L004"]);
    let good = "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}";
    assert_eq!(
        rules_hit(&lint_as(good, FileKind::Library, true)),
        Vec::<&str>::new()
    );
    // Non-roots are exempt.
    assert_eq!(
        rules_hit(&lint_as(bare, FileKind::Library, false)),
        Vec::<&str>::new()
    );
}

#[test]
fn l005_flags_unregistered_telemetry_names() {
    let bad = r#"
        fn instrument(obs: &dyn Observer) {
            obs.counter("engine.states_visited", 1);
            obs.counter("valence.memo_hit", 1);
        }
    "#;
    let report = lint(bad);
    assert_eq!(rules_hit(&report), vec!["L005"]);
    assert!(report.findings[0].message.contains("valence.memo_hit"));
}

#[test]
fn l005_checks_span_enter_names() {
    let bad = r#"
        fn timed(obs: &dyn Observer) {
            let _span = Span::enter(obs, "typo.span");
        }
    "#;
    assert_eq!(rules_hit(&lint(bad)), vec!["L005"]);
    let good = r#"
        fn timed(obs: &dyn Observer) {
            let _span = Span::enter(obs, "engine.states_visited");
        }
    "#;
    assert_eq!(rules_hit(&lint(good)), Vec::<&str>::new());
}

#[test]
fn l005_checks_span_enter_with_and_enter_under_names() {
    let bad = r#"
        fn timed(obs: &dyn Observer) {
            let _a = Span::enter_with(obs, "typo.with", &[("depth", 1)]);
            let _b = Span::enter_under(obs, "typo.under", 7, &[]);
        }
    "#;
    assert_eq!(rules_hit(&lint(bad)), vec!["L005", "L005"]);
    let good = r#"
        fn timed(obs: &dyn Observer) {
            let _a = Span::enter_with(obs, "engine.states_visited", &[("depth", 1)]);
            let _b = Span::enter_under(obs, "valence.memo_hits", 7, &[]);
        }
    "#;
    assert_eq!(rules_hit(&lint(good)), Vec::<&str>::new());
}

#[test]
fn l005_checks_histogram_and_progress_names() {
    let bad = r#"
        fn instrument(obs: &dyn Observer) {
            obs.histogram("typo.probe_len", 3);
            obs.progress("typo.progress", "depth=1");
        }
    "#;
    assert_eq!(rules_hit(&lint(bad)), vec!["L005", "L005"]);
    let good = r#"
        fn instrument(obs: &dyn Observer) {
            obs.histogram("space.intern.probe_len", 3);
            obs.progress("scan.progress", "depth=1");
        }
    "#;
    assert_eq!(rules_hit(&lint(good)), Vec::<&str>::new());
}

#[test]
fn l006_flags_float_formatting_into_json_text() {
    let bad = r#"
        fn emit(rate: u64) -> String {
            format!("{{\"rate\":{}}}", rate as f64 / 1000.0)
        }
    "#;
    assert_eq!(rules_hit(&lint(bad)), vec!["L006"]);
}

#[test]
fn l006_allows_integer_json_and_non_json_floats() {
    let good = r#"
        fn emit(delta: u64, ratio: f64) -> (String, String) {
            let json = format!("{{\"delta\":{delta}}}");
            let label = format!("ratio {:.3}", ratio * 0.5);
            (json, label)
        }
    "#;
    assert_eq!(rules_hit(&lint(good)), Vec::<&str>::new());
}

#[test]
fn suppressions_waive_and_are_counted_with_reasons() {
    let suppressed = r#"
        fn record() -> u64 {
            // lint:allow(L002, timing lands in a documented field)
            let t = std::time::Instant::now();
            t.elapsed().as_nanos() as u64
        }
    "#;
    let report = lint(suppressed);
    assert!(report.findings.is_empty());
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].finding.rule, "L002");
    assert_eq!(
        report.suppressed[0].reason,
        "timing lands in a documented field"
    );
}

#[test]
fn suppression_only_covers_its_own_rule_and_adjacent_line() {
    let wrong_rule = r#"
        fn f(x: Option<u32>) -> u32 {
            // lint:allow(L002, wrong rule for this site)
            x.unwrap()
        }
    "#;
    assert_eq!(rules_hit(&lint(wrong_rule)), vec!["L003"]);
    let too_far = r#"
        // lint:allow(L002, too far above the offending line)
        fn pad() {}
        fn record() -> std::time::Instant { std::time::Instant::now() }
    "#;
    assert_eq!(rules_hit(&lint(too_far)), vec!["L002"]);
}

#[test]
fn trailing_same_line_suppressions_work() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(L003, fixture)";
    let report = lint(src);
    assert!(report.findings.is_empty());
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn catalog_is_complete_and_ordered() {
    let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    assert_eq!(
        ids,
        vec!["L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010"]
    );
}

#[test]
fn every_rule_has_explain_prose() {
    for r in RULES {
        let prose = layered_lint::rules::explain(r.id)
            .unwrap_or_else(|| panic!("--explain {} has prose", r.id));
        assert!(
            prose.starts_with(r.id),
            "explain text opens with the rule id: {prose}"
        );
        assert!(prose.len() > 120, "more than a one-liner for {}", r.id);
    }
    assert!(layered_lint::rules::explain("L999").is_none());
}
