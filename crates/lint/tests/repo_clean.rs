//! The repo-wide lint-clean assertion: the workspace must have zero
//! unsuppressed findings, and every suppression must state a reason.
//!
//! This is the CI teeth of the determinism contract — a `HashMap`
//! iteration leaking into output, a typo'd telemetry name, or a new
//! `unwrap()` in a library hot path fails this test.

use layered_lint::{default_root, lint_workspace};

#[test]
fn workspace_is_lint_clean() {
    let root = default_root();
    let report = lint_workspace(&root);
    assert!(
        report.files_scanned > 50,
        "walker found only {} files under {root:?} — wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        report.is_clean(),
        "workspace has {} unsuppressed lint finding(s):\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
}

#[test]
fn every_suppression_states_a_reason() {
    let report = lint_workspace(&default_root());
    for s in &report.suppressed {
        assert!(
            !s.reason.is_empty(),
            "{}:{}: lint:allow({}) without a reason — suppressions must say why",
            s.finding.file,
            s.finding.line,
            s.finding.rule
        );
    }
}

#[test]
fn json_report_is_canonical_and_consistent() {
    let report = lint_workspace(&default_root());
    let json = report.to_json();
    let rendered = json.to_string();
    // Canonical: re-rendering a parsed copy is byte-identical.
    let reparsed = layered_core::telemetry::json::Json::parse(&rendered).expect("report parses");
    assert_eq!(
        reparsed.to_string(),
        rendered,
        "canonical key order survives"
    );
    // Counts in the report body match the structured totals.
    let by_rule_total: u64 = [
        "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010",
    ]
    .iter()
    .filter_map(|r| reparsed["rules"][*r]["suppressed"].as_u64())
    .sum();
    assert_eq!(by_rule_total, report.suppressed.len() as u64);
    assert_eq!(
        reparsed["files_scanned"].as_u64(),
        Some(report.files_scanned as u64)
    );
    // The graph census from the whole-program tier rides along.
    let graph = &reparsed["graph"];
    assert!(graph["fns"].as_u64().unwrap_or(0) > 500, "{graph:?}");
    assert!(graph["entries"].as_u64().unwrap_or(0) > 20, "{graph:?}");
}

#[test]
fn finding_and_suppression_census_is_exact() {
    // The workspace carries zero findings and exactly one suppression
    // (the documented `Instant` read inside `telemetry::clock`). A new
    // suppression is a deliberate act: update this count in the same
    // change that adds the `lint:allow` and its reason.
    let report = lint_workspace(&default_root());
    assert_eq!(report.findings.len(), 0);
    assert_eq!(
        report.suppressed.len(),
        1,
        "suppression census changed: {:?}",
        report
            .suppressed
            .iter()
            .map(|s| format!(
                "{}:{} [{}] {}",
                s.finding.file, s.finding.line, s.finding.rule, s.reason
            ))
            .collect::<Vec<_>>()
    );
    assert_eq!(report.suppressed[0].finding.rule, "L002");
    assert_eq!(
        report.suppressed[0].finding.file,
        "crates/core/src/telemetry/clock.rs"
    );
}
