//! Fixture tests for the whole-program tier through the public
//! [`lint_sources`] entry point — both tiers run together, exactly as
//! they do over the real workspace. The headline fixture is the
//! *laundering* case: a hash-ordered field iterated behind two layers
//! of helpers, which the token-local L001 provably misses and the
//! call-graph L007 catches with the full entry→source chain.

use layered_lint::lint_sources;
use layered_lint::report::Report;

const FIXTURE_NAMES: &[&str] = &["sim.step", "scan.progress"];

fn lint(files: &[(&str, &str)]) -> Report {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| ((*rel).to_string(), (*src).to_string()))
        .collect();
    lint_sources(&sources, FIXTURE_NAMES)
}

/// The two-file laundering fixture: `store.rs` declares the unordered
/// field, `scan.rs` drains it behind `scan_all → summarize →
/// bucket_order`. No single file both names a hash type and iterates
/// it, so L001 has nothing to see.
fn laundering_fixture() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "crates/x/src/store.rs",
            "pub struct Store { pub buckets: HashMap<u64, u32> }",
        ),
        (
            "crates/x/src/scan.rs",
            "pub fn scan_all(s: &Store) -> Vec<u32> { summarize(s) }\n\
             fn summarize(s: &Store) -> Vec<u32> { bucket_order(s) }\n\
             fn bucket_order(s: &Store) -> Vec<u32> { s.buckets.values().copied().collect() }",
        ),
    ]
}

#[test]
fn laundered_iteration_is_invisible_to_l001_but_caught_by_l007() {
    let report = lint(&laundering_fixture());
    assert!(
        !report.findings.iter().any(|f| f.rule == "L001"),
        "the token tier cannot see the laundering: {:?}",
        report.findings
    );
    let l007: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "L007")
        .collect();
    assert_eq!(l007.len(), 1, "{:?}", report.findings);
    let f = l007[0];
    assert_eq!(f.file, "crates/x/src/scan.rs");
    assert_eq!(f.line, 3, "flagged at the source site, not the entry");
    // The chain is ≥2 calls deep: entry → helper → source.
    assert!(
        f.message.contains("scan_all → summarize → bucket_order"),
        "full call chain in the diagnostic: {}",
        f.message
    );
}

#[test]
fn the_same_pattern_in_one_function_is_an_l001_matter() {
    // Control: collapse the laundering into one function that names the
    // hash type directly, and the token tier owns the finding.
    let report = lint(&[(
        "crates/x/src/scan.rs",
        "pub fn scan_all(m: &HashMap<u64, u32>) -> Vec<u32> { m.values().copied().collect() }",
    )]);
    assert!(
        report.findings.iter().any(|f| f.rule == "L001"),
        "{:?}",
        report.findings
    );
}

#[test]
fn both_tiers_report_into_one_sorted_document() {
    let mut files = laundering_fixture();
    files.push((
        "crates/x/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }",
    ));
    let report = lint(&files);
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"L003"), "token tier ran: {rules:?}");
    assert!(rules.contains(&"L007"), "graph tier ran: {rules:?}");
    let mut sorted = report.findings.clone();
    sorted.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    assert_eq!(
        report.findings, sorted,
        "combined findings arrive in canonical order"
    );
}

#[test]
fn l008_window_closes_at_drop_and_block_end() {
    let report = lint(&[(
        "crates/x/src/space/mod.rs",
        "struct Ix;\nimpl Ix {\n\
         fn shard(&self) -> u32 { let g = self.inner.lock(); 0 }\n\
         fn nested(&self) {\nlet a = self.inner.lock();\nlet b = self.other.lock();\n}\n\
         fn fine(&self) {\nlet a = self.inner.lock();\ndrop(a);\nself.shard();\n}\n}",
    )]);
    let l008: Vec<u32> = report
        .findings
        .iter()
        .filter(|f| f.rule == "L008")
        .map(|f| f.line)
        .collect();
    assert_eq!(
        l008,
        vec![6],
        "only the nested acquisition: {:?}",
        report.findings
    );
}

#[test]
fn l009_scopes_to_reachable_code_and_suppressions_carry_reasons() {
    let report = lint(&[(
        "crates/x/src/scan.rs",
        "pub fn scan_bytes(v: &[u8]) -> &[u8] { window(v, 2, 3) }\n\
         fn window(v: &[u8], a: usize, n: usize) -> &[u8] {\n\
         // lint:allow(L009, fixture states the bounds invariant)\n\
         &v[a..a + n] }\n\
         fn cold(v: &[u8]) -> &[u8] { &v[1..1 + 1] }",
    )]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].finding.rule, "L009");
    assert_eq!(
        report.suppressed[0].reason,
        "fixture states the bounds invariant"
    );
}

#[test]
fn l010_cross_crate_conformance_and_dead_names() {
    let report = lint(&[
        (
            "crates/badmodel/src/lib.rs",
            "pub struct M;\nimpl SimModel for M { fn moves(&self) {} }",
        ),
        (
            "crates/core/src/telemetry/names.rs",
            "pub const NAMES: &[&str] = &[\"sim.step\", \"scan.progress\"];",
        ),
        (
            "crates/x/src/lib.rs",
            "pub fn emit(obs: &dyn Observer) { obs.counter(\"scan.progress\", 1); }",
        ),
    ]);
    let l010: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "L010")
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(l010.len(), 2, "{:?}", report.findings);
    assert!(l010.iter().any(|m| m.contains("SnapshotState")));
    assert!(
        l010.iter().any(|m| m.contains("sim.step")),
        "the un-emitted name is dead; the emitted one is not: {l010:?}"
    );
}

#[test]
fn graph_stats_ride_along_in_the_json_report() {
    let report = lint(&laundering_fixture());
    let stats = report.graph.as_ref().expect("whole-program tier ran");
    assert_eq!(stats.files, 2);
    assert!(stats.fns >= 3, "store has none, scan has three: {stats:?}");
    assert!(
        stats.edges >= 2,
        "scan_all→summarize→bucket_order: {stats:?}"
    );
    assert!(stats.entries >= 1);
    let json = report.to_json();
    let rendered = json.to_string();
    assert!(rendered.contains("\"graph\":{"), "{rendered}");
    assert!(rendered.contains("\"unordered-iter\""), "{rendered}");
}

#[test]
fn sarif_export_carries_results_rules_and_suppressions() {
    let mut files = laundering_fixture();
    files.push((
        "crates/x/src/pack.rs",
        "pub fn build_pack(x: Option<u32>) -> u32 {\n\
         x.unwrap() // lint:allow(L003, fixture)\n}",
    ));
    let report = lint(&files);
    let sarif = report.to_sarif().to_string();
    let parsed = layered_core::telemetry::json::Json::parse(&sarif).expect("SARIF parses");
    assert_eq!(parsed["version"].as_str(), Some("2.1.0"));
    let runs = &parsed["runs"];
    let driver = &runs[0]["tool"]["driver"];
    assert_eq!(driver["name"].as_str(), Some("layered-lint"));
    // One catalog entry per rule, L001..L010.
    let rules_json = driver["rules"].to_string();
    for id in ["L001", "L007", "L010"] {
        assert!(rules_json.contains(id), "{rules_json}");
    }
    let results = runs[0]["results"].to_string();
    assert!(results.contains("\"ruleId\":\"L007\""), "{results}");
    assert!(results.contains("\"startLine\":3"), "{results}");
    assert!(
        results.contains("\"suppressions\":[{\"kind\":\"inSource\"}]"),
        "suppressed finding carried as a suppressed SARIF result: {results}"
    );
    // Canonical: re-render round-trips byte-identically.
    assert_eq!(parsed.to_string(), sarif);
}
