//! A small, lossy Rust tokenizer — just enough syntax for the lint rules.
//!
//! The lexer understands the token classes the rules in [`crate::rules`]
//! match on: identifiers, string/char/number literals, single-character
//! punctuation, lifetimes, and comments (which it strips, except for
//! `// lint:allow(...)` suppression comments, which it records). It is
//! deliberately *not* a full Rust lexer: multi-character operators come
//! out as runs of single [`TokKind::Punct`] tokens (`::` is two `:`),
//! float literals may split at an exponent sign, and no macro expansion
//! happens. Every rule is written against this lossy stream, so the
//! simplifications are part of the (documented) heuristics.
//!
//! What it *does* get right, because the rules depend on it:
//!
//! * string literals — including raw (`r#"…"#`) and byte strings — are
//!   single tokens with their escapes decoded, so `"unwrap"` in a string
//!   never looks like a call to `.unwrap()`;
//! * nested block comments and doc comments are skipped entirely, so
//!   example code in `///` docs is never linted;
//! * raw identifiers (`r#type`, `r#fn`) are single [`TokKind::Ident`]
//!   tokens whose text keeps the `r#` prefix — they are *names*, never
//!   keywords, and never the start of a raw string;
//! * every token carries the 1-based source line it starts on, and line
//!   counts stay correct across multi-line strings and comments.

/// The token classes the rules distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`let`, `HashMap`, `unwrap`, …). Raw
    /// identifiers keep their `r#` prefix (`r#type`), so they never
    /// compare equal to the bare keyword.
    Ident,
    /// A string literal (normal, raw, or byte), escapes decoded.
    Str,
    /// A character literal (`'a'`, `'\n'`).
    Char,
    /// A numeric literal; float literals contain a `.`.
    Num,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// A lifetime (`'a`), kept distinct from char literals.
    Lifetime,
}

/// One token: its class, text (decoded for strings), and 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text. For [`TokKind::Str`] this is the decoded content
    /// without the surrounding quotes; for everything else, the source
    /// spelling.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// An inline `// lint:allow(L00x, reason)` suppression comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// The rule ids listed before the first comma (e.g. `["L002"]`).
    pub rules: Vec<String>,
    /// The free-form reason after the first comma; empty if omitted.
    /// The repo-wide lint-clean test rejects empty reasons.
    pub reason: String,
}

/// The lexer's output: the token stream plus any suppression comments.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Suppression comments in source order.
    pub suppressions: Vec<Suppression>,
}

/// Tokenizes `src`. Never fails: unrecognized bytes become punctuation
/// and unterminated literals run to end of input — a linter must degrade
/// gracefully on code it cannot fully parse.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(false),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_string(),
                _ => {
                    let line = self.line;
                    let c = self.bump().expect("peeked");
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(self.bump().expect("peeked"));
        }
        if let Some(sup) = parse_suppression(&text, line) {
            self.out.suppressions.push(sup);
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string(&mut self, byte_prefixed: bool) {
        let line = self.line;
        let _ = byte_prefixed;
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => match self.bump() {
                    Some('n') => text.push('\n'),
                    Some('r') => text.push('\r'),
                    Some('t') => text.push('\t'),
                    Some('0') => text.push('\0'),
                    Some('\n') => {
                        // Line-continuation escape: skip leading whitespace.
                        while self.peek(0).is_some_and(|c| c == ' ' || c == '\t') {
                            self.bump();
                        }
                    }
                    Some(other) => text.push(other), // \" \\ \' \u{…} kept approximate
                    None => break,
                },
                c => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by `hashes` hash marks.
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        text.push('"');
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the opening '
        if self.peek(0) == Some('\\') {
            // Escaped char literal.
            self.bump();
            let mut text = String::from("\\");
            while let Some(c) = self.bump() {
                if c == '\'' {
                    break;
                }
                text.push(c);
            }
            self.push(TokKind::Char, text, line);
            return;
        }
        let starts_ident = self
            .peek(0)
            .is_some_and(|c| c == '_' || c.is_alphanumeric());
        if starts_ident && self.peek(1) != Some('\'') {
            // A lifetime: 'ident not closed by a quote.
            let mut text = String::new();
            while self
                .peek(0)
                .is_some_and(|c| c == '_' || c.is_alphanumeric())
            {
                text.push(self.bump().expect("peeked"));
            }
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        // Plain char literal, e.g. 'a' or '('.
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '\'' {
                break;
            }
            text.push(c);
        }
        self.push(TokKind::Char, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            text.push(self.bump().expect("peeked"));
        }
        // A `.` followed by a digit continues a float literal; `0..n`
        // (range) and `1.method()` do not.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push(self.bump().expect("peeked"));
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                text.push(self.bump().expect("peeked"));
            }
        }
        self.push(TokKind::Num, text, line);
    }

    fn ident_or_prefixed_string(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while self
            .peek(0)
            .is_some_and(|c| c == '_' || c.is_alphanumeric())
        {
            text.push(self.bump().expect("peeked"));
        }
        // r"…" / r#"…"# / b"…" / br#"…"# are string literals, not idents —
        // but r#ident is a *raw identifier* and must stay one token, or the
        // item parser would see a phantom keyword (`r#fn` as `fn`, `r#type`
        // as `type`) and misparse everything after it.
        let is_raw_prefix = matches!(text.as_str(), "r" | "br" | "rb");
        let is_byte_prefix = text == "b";
        match self.peek(0) {
            Some('"') if is_raw_prefix => self.raw_string(),
            Some('#') if is_raw_prefix && is_raw_start(&self.chars[self.pos..]) => {
                self.raw_string();
            }
            Some('#') if text == "r" && self.raw_ident_follows() => {
                self.bump(); // the #
                text.push('#');
                while self
                    .peek(0)
                    .is_some_and(|c| c == '_' || c.is_alphanumeric())
                {
                    text.push(self.bump().expect("peeked"));
                }
                self.push(TokKind::Ident, text, line);
            }
            Some('"') if is_byte_prefix => self.string(true),
            _ => self.push(TokKind::Ident, text, line),
        }
    }

    /// Whether the cursor (at a `#` after a lone `r`) starts a raw
    /// identifier: `#` followed directly by an identifier character.
    fn raw_ident_follows(&self) -> bool {
        self.peek(1).is_some_and(|c| c == '_' || c.is_alphabetic())
    }
}

/// Index of the delimiter matching the opener at `open` (which must hold
/// `open_c`), or `None` if unbalanced. Shared by the token rules and the
/// item parser; operates purely on [`TokKind::Punct`] tokens, so string
/// and char contents never unbalance it.
#[must_use]
pub fn matching(toks: &[Tok], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (idx, tok) in toks.iter().enumerate().skip(open) {
        if tok.is_punct(open_c) {
            depth += 1;
        } else if tok.is_punct(close_c) {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

/// Whether `rest` (starting at a `#`) begins `#…#"`, i.e. a raw-string
/// guard rather than an attribute.
fn is_raw_start(rest: &[char]) -> bool {
    let hashes = rest.iter().take_while(|&&c| c == '#').count();
    rest.get(hashes) == Some(&'"')
}

/// Parses a `lint:allow(L00x[, reason])` directive out of a line comment.
fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    let start = comment.find("lint:allow(")?;
    let body = &comment[start + "lint:allow(".len()..];
    let body = &body[..body.find(')')?];
    let (rules_part, reason) = match body.find(',') {
        Some(comma) => (&body[..comma], body[comma + 1..].trim().to_string()),
        None => (body, String::new()),
    };
    let rules: Vec<String> = rules_part
        .split_whitespace()
        .map(str::to_string)
        .filter(|r| r.starts_with('L') && r[1..].chars().all(|c| c.is_ascii_digit()))
        .collect();
    if rules.is_empty() {
        return None;
    }
    Some(Suppression {
        line,
        rules,
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let lexed = lex("let x = 1;\nlet y = x;");
        assert_eq!(lexed.toks[0].text, "let");
        assert_eq!(lexed.toks[0].line, 1);
        let y = lexed.toks.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.line, 2);
    }

    #[test]
    fn strings_are_single_tokens_with_decoded_escapes() {
        let toks = kinds(r#"call("a \"b\"\n", x)"#);
        assert_eq!(toks[2], (TokKind::Str, "a \"b\"\n".to_string()));
        // Nothing inside the string leaked out as idents.
        assert!(!toks.iter().any(|(_, t)| t == "b"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds("r#\"no \"escape\" at all\"# b\"bytes\" br#\"raw bytes\"#");
        assert_eq!(toks[0], (TokKind::Str, "no \"escape\" at all".to_string()));
        assert_eq!(toks[1], (TokKind::Str, "bytes".to_string()));
        assert_eq!(toks[2], (TokKind::Str, "raw bytes".to_string()));
    }

    #[test]
    fn comments_are_stripped_including_nested_blocks() {
        let toks = kinds("a /* x /* y */ z */ b // trailing unwrap()\nc");
        let idents: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "a".to_string())));
        assert!(toks.contains(&(TokKind::Char, "x".to_string())));
        assert!(toks.contains(&(TokKind::Char, "\\n".to_string())));
    }

    #[test]
    fn float_literals_keep_their_dot_but_ranges_split() {
        let toks = kinds("let x = 1.5; for i in 0..10 {}");
        assert!(toks.contains(&(TokKind::Num, "1.5".to_string())));
        assert!(toks.contains(&(TokKind::Num, "0".to_string())));
        assert!(toks.contains(&(TokKind::Num, "10".to_string())));
    }

    #[test]
    fn suppressions_are_recorded_with_rules_and_reason() {
        let lexed = lex("// lint:allow(L002, span timing is documented)\nlet t = now();");
        assert_eq!(lexed.suppressions.len(), 1);
        let sup = &lexed.suppressions[0];
        assert_eq!(sup.line, 1);
        assert_eq!(sup.rules, vec!["L002".to_string()]);
        assert_eq!(sup.reason, "span timing is documented");
    }

    #[test]
    fn multi_rule_suppression_and_missing_reason() {
        let lexed = lex("// lint:allow(L001 L003)\nx();");
        assert_eq!(
            lexed.suppressions[0].rules,
            vec!["L001".to_string(), "L003".to_string()]
        );
        assert_eq!(lexed.suppressions[0].reason, "");
        assert!(lex("// lint:allow()").suppressions.is_empty());
        assert!(lex("// plain comment").suppressions.is_empty());
    }

    #[test]
    fn raw_identifiers_are_single_tokens_not_raw_strings() {
        // Regression: `r#type` must not be mistaken for a raw-string
        // start (which would swallow the rest of the file), nor split
        // into `r`, `#`, `type` (which would plant a phantom keyword in
        // front of the item parser).
        let toks = kinds("let r#type = 1; let s = \"str\"; end();");
        assert!(toks.contains(&(TokKind::Ident, "r#type".to_string())));
        assert!(toks.contains(&(TokKind::Str, "str".to_string())));
        assert!(toks.contains(&(TokKind::Ident, "end".to_string())));
        assert!(!toks.contains(&(TokKind::Ident, "type".to_string())));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Punct && t == "#"));
    }

    #[test]
    fn raw_identifier_fn_names_do_not_shadow_keywords() {
        let toks = kinds("fn r#fn() { body(); } fn r#match(x: u8) {}");
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokKind::Ident && t == "fn")
                .count(),
            2,
            "only the two real `fn` keywords remain"
        );
        assert!(toks.contains(&(TokKind::Ident, "r#fn".to_string())));
        assert!(toks.contains(&(TokKind::Ident, "r#match".to_string())));
    }

    #[test]
    fn raw_strings_still_lex_after_the_raw_ident_fix() {
        let toks = kinds("r#\"raw\"# r\"plain\" r#_ident");
        assert_eq!(toks[0], (TokKind::Str, "raw".to_string()));
        assert_eq!(toks[1], (TokKind::Str, "plain".to_string()));
        assert_eq!(toks[2], (TokKind::Ident, "r#_ident".to_string()));
    }

    #[test]
    fn multiline_strings_keep_line_numbers_straight() {
        let lexed = lex("let s = \"one\ntwo\";\nlet after = 1;");
        let after = lexed.toks.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
    }
}
