//! The approximate call graph and per-function effect summaries.
//!
//! Built on the [`crate::items`] symbol table, this module recovers the
//! second ingredient the whole-program rules need: *who calls whom*, and
//! *what each function does* that the determinism contract cares about.
//! Both are deliberately approximate — no type inference, no trait
//! dispatch — and both err in documented directions:
//!
//! * **Edges** are found by token shape. Free calls (`helper(…)`)
//!   resolve within the defining crate (same file, then same module,
//!   then crate-wide, then through `use` aliases). Qualified calls
//!   (`Type::method(…)`, `module::helper(…)`) resolve by the last two
//!   path segments. Bare method calls (`x.method(…)`) link to *every*
//!   workspace method of that name — an over-approximation — except for
//!   names on the [`COMMON_METHODS`] list, which shadow ubiquitous std
//!   methods and would wire unrelated types together; those resolve to
//!   nothing (an under-approximation the rule docs call out).
//! * **Local effects** are token patterns scanned over each function
//!   body (nested `fn` bodies excluded — they are their own nodes):
//!   wall-clock reads, laundered unordered-container iteration,
//!   non-deterministic hashing, computed-range slicing, and
//!   intern-shard guard acquisition.
//!
//! Transitive summaries propagate local effects from callee to caller
//! to a fixed point (a reverse breadth-first search per effect bit),
//! and a forward breadth-first search from the entry-point set records
//! parent pointers so every diagnostic can print a concrete call chain
//! from an entry to the offending site. All traversals iterate sorted
//! structures in index order, so summaries, chains, and therefore the
//! lint's own output are deterministic.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::items::{is_keyword, FnDef, Workspace};
use crate::lexer::{matching, Tok, TokKind};
use crate::rules::{ITER_METHODS, ORDER_INSENSITIVE};

/// Effect bits tracked per function. Stored as a mask in [`Effects`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Reads the wall clock (`Instant`/`SystemTime`) outside the
    /// sanctioned `telemetry::clock` wrapper.
    WallClock,
    /// Iterates an unordered hash container *field* in an
    /// order-sensitive position — the laundering pattern the per-file
    /// L001 cannot see.
    UnorderedIter,
    /// Uses non-deterministic hashing or randomness (`RandomState`,
    /// `thread_rng`).
    Random,
    /// Slices with a computed range (`[a..a + b]` and friends) that
    /// panics when out of bounds.
    PanicIndex,
    /// Acquires an intern-shard guard (`lock_counting`, or
    /// `.lock()`/`.try_lock()` inside a `space` module).
    AcquiresGuard,
}

/// All effect bits, in mask-bit order.
pub const EFFECTS: &[Effect] = &[
    Effect::WallClock,
    Effect::UnorderedIter,
    Effect::Random,
    Effect::PanicIndex,
    Effect::AcquiresGuard,
];

impl Effect {
    /// The effect's bit in an [`Effects`] mask.
    #[must_use]
    pub fn bit(self) -> u8 {
        match self {
            Effect::WallClock => 1,
            Effect::UnorderedIter => 1 << 1,
            Effect::Random => 1 << 2,
            Effect::PanicIndex => 1 << 3,
            Effect::AcquiresGuard => 1 << 4,
        }
    }

    /// Index of the effect in [`EFFECTS`] (for per-bit tables).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Effect::WallClock => 0,
            Effect::UnorderedIter => 1,
            Effect::Random => 2,
            Effect::PanicIndex => 3,
            Effect::AcquiresGuard => 4,
        }
    }

    /// Short name used in `--graph-stats` and diagnostics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Effect::WallClock => "wall-clock",
            Effect::UnorderedIter => "unordered-iter",
            Effect::Random => "random",
            Effect::PanicIndex => "panic-index",
            Effect::AcquiresGuard => "acquires-guard",
        }
    }
}

/// A set of [`Effect`]s, as a bit mask.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Effects(pub u8);

impl Effects {
    /// The empty set.
    pub const NONE: Effects = Effects(0);

    /// Whether `e` is in the set.
    #[must_use]
    pub fn has(self, e: Effect) -> bool {
        self.0 & e.bit() != 0
    }

    /// Adds `e` to the set.
    pub fn add(&mut self, e: Effect) {
        self.0 |= e.bit();
    }

    /// Set union.
    #[must_use]
    pub fn union(self, o: Effects) -> Effects {
        Effects(self.0 | o.0)
    }
}

/// One locally-detected effect occurrence inside a function body.
#[derive(Clone, Debug)]
pub struct LocalEffect {
    /// The effect.
    pub effect: Effect,
    /// 1-based source line of the occurrence.
    pub line: u32,
    /// Short description of the concrete pattern, for diagnostics.
    pub detail: String,
}

/// One step of a call chain: the function arrived at, and the line in
/// the *caller* where the call happens.
#[derive(Clone, Copy, Debug)]
pub struct ChainStep {
    /// Index into [`Workspace::fns`].
    pub func: usize,
    /// Call-site line in the previous chain element's file (the
    /// function's own definition line for the first element).
    pub line: u32,
}

/// The call graph: per-function edges, local effects, transitive
/// summaries, and the entry-point set.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Per function: sorted, deduplicated `(callee, call-site line)`.
    pub edges: Vec<Vec<(usize, u32)>>,
    /// Per function: sorted caller indexes (reverse edges).
    pub reverse: Vec<Vec<usize>>,
    /// Per function: local effect occurrences, in (effect, line) order.
    pub local: Vec<Vec<LocalEffect>>,
    /// Per function: transitive effect summary (local ∪ callees').
    pub summary: Vec<Effects>,
    /// Per function, per effect: the first-discovered `(callee,
    /// call-site line)` through which the effect arrives, for functions
    /// whose summary holds the effect non-locally.
    pub down: Vec<[Option<(usize, u32)>; 5]>,
    /// Entry-point function indexes, sorted (see [`is_entry`]).
    pub entries: Vec<usize>,
    /// Per function: `(caller, call-site line)` parent pointer from the
    /// forward entry-reachability search; `None` if unreachable (entry
    /// points have `Some((self, def line))` as a root marker).
    pub from_entry: Vec<Option<(usize, u32)>>,
}

/// Method names that shadow ubiquitous std methods: bare `x.name(…)`
/// calls to these are *not* resolved to workspace methods, because the
/// receiver is far more often a std container than a workspace type.
/// Qualified calls (`Type::name(…)`) still resolve exactly.
pub const COMMON_METHODS: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_str",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "count",
    "default",
    "drain",
    "entry",
    "eq",
    "expect",
    "extend",
    "filter",
    "first",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "ne",
    "new",
    "next",
    "or_else",
    "partial_cmp",
    "pop",
    "push",
    "push_str",
    "read",
    "remove",
    "rev",
    "sort",
    "sort_unstable",
    "split",
    "starts_with",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "try_lock",
    "unwrap",
    "values",
    "write",
];

/// Whether `f` is a scan/sim/snapshot entry point: a `pub` function
/// that either lives in a determinism-critical module (`space`,
/// `snapshot`, `layering`, `sim`), belongs to the `layered_sim` crate,
/// or is named like a scan driver (`scan_*`, `expand_*`, `build_*`).
#[must_use]
pub fn is_entry(ws: &Workspace, f: &FnDef) -> bool {
    if !f.is_pub {
        return false;
    }
    if ["scan_", "expand_", "build_"]
        .iter()
        .any(|p| f.name.starts_with(p))
    {
        return true;
    }
    let file = &ws.files[f.file];
    if file.crate_name == "layered_sim" {
        return true;
    }
    f.module
        .iter()
        .any(|m| matches!(m.as_str(), "space" | "snapshot" | "layering" | "sim"))
}

impl CallGraph {
    /// Builds the graph over a parsed workspace.
    #[must_use]
    pub fn build(ws: &Workspace) -> CallGraph {
        let n = ws.fns.len();
        let mut g = CallGraph {
            edges: vec![Vec::new(); n],
            reverse: vec![Vec::new(); n],
            local: vec![Vec::new(); n],
            summary: vec![Effects::NONE; n],
            down: vec![[None; 5]; n],
            entries: Vec::new(),
            from_entry: vec![None; n],
        };
        let resolver = Resolver::new(ws);
        let fields = FieldIndex::new(ws);
        for (idx, f) in ws.fns.iter().enumerate() {
            let Some((s, e)) = f.body else { continue };
            let toks = &ws.files[f.file].toks;
            let skip = nested_ranges(ws, idx, s, e);
            let body = BodyView {
                toks,
                start: s,
                end: e,
                skip,
            };
            g.edges[idx] = find_calls(ws, &resolver, f, &body);
            g.local[idx] = find_effects(ws, f, &body, &fields);
        }
        for (caller, outs) in g.edges.iter().enumerate() {
            for &(callee, _) in outs {
                g.reverse[callee].push(caller);
            }
        }
        for r in &mut g.reverse {
            r.sort_unstable();
            r.dedup();
        }
        g.propagate();
        g.entries = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| is_entry(ws, f))
            .map(|(i, _)| i)
            .collect();
        g.forward_reach(ws);
        g
    }

    /// Propagates local effects caller-ward: one reverse BFS per effect
    /// bit, recording the first-discovered down-edge for chain
    /// reconstruction.
    fn propagate(&mut self) {
        for &eff in EFFECTS {
            let mut queue: Vec<usize> = Vec::new();
            for (i, locals) in self.local.iter().enumerate() {
                if locals.iter().any(|l| l.effect == eff) {
                    self.summary[i].add(eff);
                    queue.push(i);
                }
            }
            let mut head = 0;
            while head < queue.len() {
                let f = queue[head];
                head += 1;
                for &caller in &self.reverse[f] {
                    if self.summary[caller].has(eff) {
                        continue;
                    }
                    self.summary[caller].add(eff);
                    let line = self.edges[caller]
                        .iter()
                        .find(|(c, _)| *c == f)
                        .map_or(0, |(_, l)| *l);
                    self.down[caller][eff.index()] = Some((f, line));
                    queue.push(caller);
                }
            }
        }
    }

    /// Forward BFS from the entry set, recording parent pointers.
    fn forward_reach(&mut self, ws: &Workspace) {
        let mut queue: Vec<usize> = Vec::new();
        for &e in &self.entries {
            self.from_entry[e] = Some((e, ws.fns[e].line));
            queue.push(e);
        }
        let mut head = 0;
        while head < queue.len() {
            let f = queue[head];
            head += 1;
            for &(callee, line) in &self.edges[f] {
                if self.from_entry[callee].is_none() {
                    self.from_entry[callee] = Some((f, line));
                    queue.push(callee);
                }
            }
        }
    }

    /// Whether `f` is reachable from the entry set.
    #[must_use]
    pub fn reachable(&self, f: usize) -> bool {
        self.from_entry[f].is_some()
    }

    /// The call chain from an entry point to `f` (inclusive), built from
    /// the forward-BFS parent pointers. Empty if `f` is unreachable.
    #[must_use]
    pub fn chain_from_entry(&self, f: usize) -> Vec<ChainStep> {
        let mut rev = Vec::new();
        let mut cur = f;
        loop {
            let Some((parent, line)) = self.from_entry[cur] else {
                return Vec::new();
            };
            rev.push(ChainStep { func: cur, line });
            if parent == cur {
                break; // entry root
            }
            cur = parent;
            if rev.len() > self.from_entry.len() {
                break; // defensive: parent pointers never cycle, but cap anyway
            }
        }
        rev.reverse();
        rev
    }

    /// The chain from `f` *down* to the function carrying `eff`
    /// locally, following first-discovery down-edges. Starts at `f`.
    #[must_use]
    pub fn chain_to_local(&self, f: usize, eff: Effect, ws: &Workspace) -> Vec<ChainStep> {
        let mut chain = vec![ChainStep {
            func: f,
            line: ws.fns[f].line,
        }];
        let mut cur = f;
        while let Some((next, line)) = self.down[cur][eff.index()] {
            chain.push(ChainStep { func: next, line });
            cur = next;
            if chain.len() > self.down.len() {
                break;
            }
        }
        chain
    }

    /// The first local occurrence of `eff` in `f`, if any.
    #[must_use]
    pub fn local_occurrence(&self, f: usize, eff: Effect) -> Option<&LocalEffect> {
        self.local[f].iter().find(|l| l.effect == eff)
    }

    /// Total edge count (for `--graph-stats`).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// Summary numbers for `--graph-stats`: the size and effect census of
/// the call graph, deterministic across runs.
#[derive(Clone, Debug, Default)]
pub struct GraphStats {
    /// Parsed library/bin files.
    pub files: usize,
    /// Function nodes.
    pub fns: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Entry-point functions.
    pub entries: usize,
    /// Functions reachable from the entry set.
    pub reachable: usize,
    /// Per effect (in [`EFFECTS`] order): functions with the effect
    /// locally, and functions whose transitive summary includes it.
    pub per_effect: Vec<(&'static str, usize, usize)>,
}

impl GraphStats {
    /// Computes the census over a built graph.
    #[must_use]
    pub fn compute(ws: &Workspace, g: &CallGraph) -> GraphStats {
        GraphStats {
            files: ws.files.len(),
            fns: ws.fns.len(),
            edges: g.edge_count(),
            entries: g.entries.len(),
            reachable: (0..ws.fns.len()).filter(|&i| g.reachable(i)).count(),
            per_effect: EFFECTS
                .iter()
                .map(|&e| {
                    let local = g
                        .local
                        .iter()
                        .filter(|ls| ls.iter().any(|l| l.effect == e))
                        .count();
                    let summary = g.summary.iter().filter(|s| s.has(e)).count();
                    (e.name(), local, summary)
                })
                .collect(),
        }
    }
}

/// A function body as a token range with nested-fn sub-ranges excluded.
pub struct BodyView<'a> {
    /// The file's full token stream.
    pub toks: &'a [Tok],
    /// Body start (first token after the opening brace).
    pub start: usize,
    /// Body end (the closing brace's index, exclusive).
    pub end: usize,
    /// Sorted, disjoint sub-ranges to skip (nested fn bodies).
    pub skip: Vec<(usize, usize)>,
}

impl BodyView<'_> {
    /// Iterates the body's token indexes, excluding skipped ranges.
    pub fn indexes(&self) -> impl Iterator<Item = usize> + '_ {
        let mut skip_at = 0;
        (self.start..self.end).filter(move |&i| {
            while skip_at < self.skip.len() && self.skip[skip_at].1 <= i {
                skip_at += 1;
            }
            !(skip_at < self.skip.len() && i >= self.skip[skip_at].0)
        })
    }
}

/// The body of fn `idx` as a [`BodyView`] (nested fn bodies excluded),
/// or `None` for bodyless trait declarations.
#[must_use]
pub fn body_view(ws: &Workspace, idx: usize) -> Option<BodyView<'_>> {
    let f = &ws.fns[idx];
    let (s, e) = f.body?;
    Some(BodyView {
        toks: &ws.files[f.file].toks,
        start: s,
        end: e,
        skip: nested_ranges(ws, idx, s, e),
    })
}

/// Body ranges of *other* functions nested strictly inside `(s, e)` of
/// the same file — excluded from fn `idx`'s own body scan.
fn nested_ranges(ws: &Workspace, idx: usize, s: usize, e: usize) -> Vec<(usize, usize)> {
    let file = ws.fns[idx].file;
    let mut ranges: Vec<(usize, usize)> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|&(j, other)| j != idx && other.file == file)
        .filter_map(|(_, other)| other.body)
        .filter(|&(os, oe)| os >= s && oe <= e)
        .collect();
    ranges.sort_unstable();
    // Keep only outermost nested ranges (a doubly-nested fn is inside an
    // already-skipped range).
    let mut out: Vec<(usize, usize)> = Vec::new();
    for r in ranges {
        match out.last() {
            Some(&(_, pe)) if r.1 <= pe => {}
            _ => out.push(r),
        }
    }
    out
}

/// Resolution indexes over the workspace's functions.
struct Resolver {
    /// Free functions by name → sorted fn indexes.
    free: BTreeMap<String, Vec<usize>>,
    /// Methods by name → sorted fn indexes (self_ty present).
    methods: BTreeMap<String, Vec<usize>>,
    /// Methods by `(self type, name)` → sorted fn indexes.
    typed: BTreeMap<(String, String), Vec<usize>>,
}

impl Resolver {
    fn new(ws: &Workspace) -> Resolver {
        let mut r = Resolver {
            free: BTreeMap::new(),
            methods: BTreeMap::new(),
            typed: BTreeMap::new(),
        };
        for (i, f) in ws.fns.iter().enumerate() {
            match &f.self_ty {
                Some(ty) => {
                    r.methods.entry(f.name.clone()).or_default().push(i);
                    r.typed
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                }
                None => r.free.entry(f.name.clone()).or_default().push(i),
            }
        }
        r
    }

    /// Resolves a free call from `caller` to fns named `name`: same
    /// file, else same crate + module, else same crate, else through the
    /// caller file's `use` aliases into another workspace crate.
    fn free_call(&self, ws: &Workspace, caller: &FnDef, name: &str) -> Vec<usize> {
        let Some(cands) = self.free.get(name) else {
            return self.alias_call(ws, caller, name);
        };
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| ws.fns[i].file == caller.file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let crate_of = |i: usize| ws.files[ws.fns[i].file].crate_name.as_str();
        let caller_crate = ws.files[caller.file].crate_name.as_str();
        let same_mod: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| crate_of(i) == caller_crate && ws.fns[i].module == caller.module)
            .collect();
        if !same_mod.is_empty() {
            return same_mod;
        }
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| crate_of(i) == caller_crate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        self.alias_call(ws, caller, name)
    }

    /// Resolves `name` through the caller file's `use` aliases: a `use
    /// layered_x::…::name` (possibly renamed) maps the local name to a
    /// free fn in crate `layered_x`.
    fn alias_call(&self, ws: &Workspace, caller: &FnDef, name: &str) -> Vec<usize> {
        for u in ws.uses.iter().filter(|u| u.file == caller.file) {
            if u.alias != name {
                continue;
            }
            let Some(target) = u.path.last() else {
                continue;
            };
            let Some(crate_name) = u.path.first().filter(|c| c.starts_with("layered_")) else {
                continue;
            };
            let Some(cands) = self.free.get(target) else {
                continue;
            };
            let hits: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| &ws.files[ws.fns[i].file].crate_name == crate_name)
                .collect();
            if !hits.is_empty() {
                return hits;
            }
        }
        Vec::new()
    }

    /// Resolves a qualified call `qual::name(…)`. `qual` may be a type
    /// (`Store::slot_matches`), `Self`, or a module/crate path segment.
    fn path_call(&self, ws: &Workspace, caller: &FnDef, qual: &str, name: &str) -> Vec<usize> {
        let qual = if qual == "Self" {
            match &caller.self_ty {
                Some(ty) => ty.as_str(),
                None => return Vec::new(),
            }
        } else {
            qual
        };
        if let Some(hits) = self.typed.get(&(qual.to_string(), name.to_string())) {
            return hits.clone();
        }
        // Module-qualified free call: fns whose module path ends with
        // `qual`, or whose crate is `qual` resolved as a crate name.
        let Some(cands) = self.free.get(name) else {
            return Vec::new();
        };
        let hits: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| {
                let f = &ws.fns[i];
                f.module.last().is_some_and(|m| m == qual)
                    || ws.files[f.file].crate_name == qual
                    || (qual == "crate"
                        && ws.files[f.file].crate_name == ws.files[caller.file].crate_name)
            })
            .collect();
        hits
    }
}

/// Scans a body for call sites and resolves them into edges.
fn find_calls(
    ws: &Workspace,
    r: &Resolver,
    caller: &FnDef,
    body: &BodyView<'_>,
) -> Vec<(usize, u32)> {
    let toks = body.toks;
    let mut edges: Vec<(usize, u32)> = Vec::new();
    let idxs: Vec<usize> = body.indexes().collect();
    for (pos, &i) in idxs.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            continue;
        }
        // Must be directly followed by `(` (same filtered stream).
        let Some(&next) = idxs.get(pos + 1) else {
            continue;
        };
        if !toks[next].is_punct('(') {
            continue;
        }
        let prev = pos.checked_sub(1).map(|p| &toks[idxs[p]]);
        let prev2 = pos.checked_sub(2).map(|p| &toks[idxs[p]]);
        let targets = match prev {
            Some(p) if p.is_punct('.') => {
                if COMMON_METHODS.contains(&t.text.as_str()) {
                    Vec::new()
                } else {
                    r.methods.get(&t.text).cloned().unwrap_or_default()
                }
            }
            Some(p) if p.is_punct(':') && prev2.is_some_and(|q| q.is_punct(':')) => {
                // Qualified call: the segment before the `::`.
                match pos.checked_sub(3).map(|q| &toks[idxs[q]]) {
                    Some(q) if q.kind == TokKind::Ident => {
                        r.path_call(ws, caller, &q.text, &t.text)
                    }
                    _ => Vec::new(),
                }
            }
            Some(p) if p.is_ident("fn") => Vec::new(), // definition header
            _ => r.free_call(ws, caller, &t.text),
        };
        for target in targets {
            edges.push((target, t.line));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Struct-field knowledge for the laundered-iteration detector.
///
/// Field names are not globally unique (`buckets` is an `FxHashMap` on
/// the intern shard but a plain array on `Histogram`), so matching is
/// receiver-aware: a `self.field` access resolves against the enclosing
/// impl's struct exactly; any other receiver falls back to "some struct
/// *in the same crate* declares an unordered field of this name" — a
/// documented over-approximation that stays inside crate boundaries.
pub struct FieldIndex {
    /// `(struct, field)` → declared type mentions an unordered container.
    per_struct: BTreeMap<(String, String), bool>,
    /// `(crate, field)` pairs with at least one unordered declaration.
    per_crate: BTreeSet<(String, String)>,
}

impl FieldIndex {
    /// Builds the index over the workspace's parsed struct fields.
    #[must_use]
    pub fn new(ws: &Workspace) -> FieldIndex {
        let mut ix = FieldIndex {
            per_struct: BTreeMap::new(),
            per_crate: BTreeSet::new(),
        };
        for fd in &ws.fields {
            let key = (fd.struct_name.clone(), fd.name.clone());
            *ix.per_struct.entry(key).or_insert(false) |= fd.unordered;
            if fd.unordered {
                ix.per_crate
                    .insert((ws.files[fd.file].crate_name.clone(), fd.name.clone()));
            }
        }
        ix
    }

    /// Whether a `.field` access inside `f` touches an unordered
    /// container. If the enclosing impl's struct declares the field,
    /// that declaration decides (covering both `self.field` and
    /// same-type peers like `other.field` in a merge); otherwise any
    /// unordered declaration of the name in the same crate counts.
    fn unordered(&self, f: &FnDef, krate: &str, field: &str) -> bool {
        if let Some(ty) = &f.self_ty {
            if let Some(&u) = self.per_struct.get(&(ty.clone(), field.to_string())) {
                return u;
            }
        }
        self.per_crate
            .contains(&(krate.to_string(), field.to_string()))
    }
}

/// Scans a body for local effect occurrences.
fn find_effects(
    ws: &Workspace,
    f: &FnDef,
    body: &BodyView<'_>,
    fields: &FieldIndex,
) -> Vec<LocalEffect> {
    let toks = body.toks;
    let rel = ws.files[f.file].rel.as_str();
    let krate = ws.files[f.file].crate_name.as_str();
    let in_space_module = f.module.iter().any(|m| m == "space");
    let clock_exempt = rel == "crates/core/src/telemetry/clock.rs";
    let idxs: Vec<usize> = body.indexes().collect();
    let ordered = ordered_bindings(toks, &idxs);
    let mut out: Vec<LocalEffect> = Vec::new();
    for (pos, &i) in idxs.iter().enumerate() {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "Instant" | "SystemTime" if !clock_exempt => out.push(LocalEffect {
                    effect: Effect::WallClock,
                    line: t.line,
                    detail: format!("`{}` wall-clock read", t.text),
                }),
                "RandomState" | "thread_rng" => out.push(LocalEffect {
                    effect: Effect::Random,
                    line: t.line,
                    detail: format!("`{}` non-deterministic hashing/randomness", t.text),
                }),
                "lock_counting"
                    if toks_at(toks, &idxs, pos + 1).is_some_and(|n| n.is_punct('(')) =>
                {
                    out.push(LocalEffect {
                        effect: Effect::AcquiresGuard,
                        line: t.line,
                        detail: "`lock_counting(…)` shard-guard acquisition".to_string(),
                    });
                }
                "lock" | "try_lock"
                    if in_space_module
                        && pos > 0
                        && toks[idxs[pos - 1]].is_punct('.')
                        && toks_at(toks, &idxs, pos + 1).is_some_and(|n| n.is_punct('(')) =>
                {
                    out.push(LocalEffect {
                        effect: Effect::AcquiresGuard,
                        line: t.line,
                        detail: format!("`.{}()` shard-guard acquisition", t.text),
                    });
                }
                "for" => {
                    if let Some(le) = for_loop_effect(toks, &idxs, pos, f, krate, fields, &ordered)
                    {
                        out.push(le);
                    }
                }
                _ => {}
            }
        }
        // `.field.<iter_method>(` — laundered iteration over an
        // unordered field.
        if t.is_punct('.')
            && pos + 4 < idxs.len()
            && toks[idxs[pos + 1]].kind == TokKind::Ident
            && fields.unordered(f, krate, &toks[idxs[pos + 1]].text)
            && toks[idxs[pos + 2]].is_punct('.')
            && toks[idxs[pos + 3]].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[idxs[pos + 3]].text.as_str())
            && toks_at(toks, &idxs, pos + 4).is_some_and(|n| n.is_punct('('))
        {
            let field = &toks[idxs[pos + 1]].text;
            if !in_for_header(toks, &idxs, pos)
                && !statement_order_insensitive(toks, &idxs, pos, &ordered)
            {
                out.push(LocalEffect {
                    effect: Effect::UnorderedIter,
                    line: toks[idxs[pos + 1]].line,
                    detail: format!(
                        "iterates unordered field `{field}` via `.{}()` in an order-sensitive position",
                        toks[idxs[pos + 3]].text
                    ),
                });
            }
        }
        // Computed-range slicing: postfix `[ … .. … ]` with arithmetic.
        if t.is_punct('[') && pos > 0 && is_postfix_target(&toks[idxs[pos - 1]]) {
            if let Some(close) = matching(toks, i, '[', ']') {
                let group = &toks[i + 1..close];
                let has_range = group
                    .windows(2)
                    .any(|w| w[0].is_punct('.') && w[1].is_punct('.'));
                // `*`/`-` are arithmetic only after an operand: `[*pos..]`
                // is a deref and `[..-x]`-style prefixes are unary.
                let has_arith = group.iter().enumerate().any(|(k, g)| {
                    if g.is_punct('+') || g.is_punct('/') || g.is_punct('%') {
                        return true;
                    }
                    (g.is_punct('*') || g.is_punct('-'))
                        && k > 0
                        && matches!(group[k - 1].kind, TokKind::Ident | TokKind::Num)
                });
                if has_range && has_arith {
                    out.push(LocalEffect {
                        effect: Effect::PanicIndex,
                        line: t.line,
                        detail: "computed-range slice — panics when out of bounds".to_string(),
                    });
                }
            }
        }
    }
    out.sort_by_key(|l| (l.effect, l.line));
    out
}

/// Token after `pos` in the filtered index stream, if any.
fn toks_at<'a>(toks: &'a [Tok], idxs: &[usize], pos: usize) -> Option<&'a Tok> {
    idxs.get(pos).map(|&i| &toks[i])
}

/// Whether a token can end the receiver of a postfix index expression.
fn is_postfix_target(t: &Tok) -> bool {
    (t.kind == TokKind::Ident && !is_keyword(&t.text)) || t.is_punct(')') || t.is_punct(']')
}

/// Names bound to ordered containers (`BTreeMap`/`BTreeSet`/
/// `BinaryHeap`) by a `let` in this body: sinks into these make an
/// unordered iteration order-insensitive.
fn ordered_bindings(toks: &[Tok], idxs: &[usize]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (pos, &i) in idxs.iter().enumerate() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut p = pos + 1;
        if toks_at(toks, idxs, p).is_some_and(|t| t.is_ident("mut")) {
            p += 1;
        }
        let Some(name_tok) = toks_at(toks, idxs, p).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        // Scan the statement (to `;` at depth 0) for an ordered type.
        let mut depth = 0i32;
        let mut q = p + 1;
        let mut is_ordered = false;
        while let Some(&j) = idxs.get(q) {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct('}') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 {
                break;
            } else if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "BTreeMap" | "BTreeSet" | "BinaryHeap")
            {
                is_ordered = true;
            }
            q += 1;
        }
        if is_ordered {
            out.insert(name_tok.text.clone());
        }
    }
    out
}

/// Whether filtered position `pos` sits inside a `for … in …` loop
/// header — there the `for`-loop detector owns the verdict (it can see
/// the loop body's sinks), so the expression-level detector stands down.
fn in_for_header(toks: &[Tok], idxs: &[usize], pos: usize) -> bool {
    let mut p = pos;
    while p > 0 {
        let t = &toks[idxs[p - 1]];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        p -= 1;
        if t.is_ident("for") {
            return true;
        }
    }
    false
}

/// Whether the statement around filtered position `pos` consumes its
/// iteration order-insensitively: an [`ORDER_INSENSITIVE`] token, or a
/// method call on an ordered binding, anywhere between the enclosing
/// statement boundaries.
fn statement_order_insensitive(
    toks: &[Tok],
    idxs: &[usize],
    pos: usize,
    ordered: &BTreeSet<String>,
) -> bool {
    let insensitive = |p: usize| -> bool {
        let t = &toks[idxs[p]];
        if t.kind != TokKind::Ident {
            return false;
        }
        ORDER_INSENSITIVE.contains(&t.text.as_str())
            || (ordered.contains(&t.text)
                && toks_at(toks, idxs, p + 1).is_some_and(|n| n.is_punct('.')))
    };
    // Backward to the statement start.
    let mut p = pos;
    while p > 0 {
        let t = &toks[idxs[p - 1]];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        p -= 1;
        if insensitive(p) {
            return true;
        }
    }
    // Forward to the statement end (`;` at relative depth 0).
    let mut depth = 0i32;
    let mut q = pos;
    while let Some(&j) = idxs.get(q) {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if (t.is_punct(';') || t.is_punct('{')) && depth <= 0 {
            break;
        }
        if insensitive(q) {
            return true;
        }
        q += 1;
    }
    false
}

/// Detects order-sensitive `for … in …<unordered field>… { … }` loops.
#[allow(clippy::too_many_arguments)]
fn for_loop_effect(
    toks: &[Tok],
    idxs: &[usize],
    pos: usize,
    f: &FnDef,
    krate: &str,
    fields: &FieldIndex,
    ordered: &BTreeSet<String>,
) -> Option<LocalEffect> {
    // Find the `in` and the loop `{` at filtered depth 0.
    let mut p = pos + 1;
    let mut in_at: Option<usize> = None;
    let mut depth = 0i32;
    while let Some(&j) = idxs.get(p) {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_ident("in") && depth <= 0 && in_at.is_none() {
            in_at = Some(p);
        } else if t.is_punct('{') && depth <= 0 {
            break;
        }
        p += 1;
    }
    let (in_at, brace_pos) = (in_at?, p);
    let brace_tok_idx = *idxs.get(brace_pos)?;
    // The iterable: `. field` with an unordered field between `in` and `{`.
    let mut field: Option<&str> = None;
    for w in in_at + 1..brace_pos {
        if toks[idxs[w]].is_punct('.')
            && toks_at(toks, idxs, w + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && fields.unordered(f, krate, &t.text))
        {
            field = Some(toks[idxs[w + 1]].text.as_str());
        }
    }
    let field = field?;
    // Order-insensitive if the loop body sinks into an ordered binding
    // or mentions an ORDER_INSENSITIVE consumer.
    let close = matching(toks, brace_tok_idx, '{', '}')?;
    for j in brace_tok_idx + 1..close {
        let t = &toks[j];
        if t.kind == TokKind::Ident
            && (ORDER_INSENSITIVE.contains(&t.text.as_str())
                || (ordered.contains(&t.text) && toks.get(j + 1).is_some_and(|n| n.is_punct('.'))))
        {
            return None;
        }
    }
    Some(LocalEffect {
        effect: Effect::UnorderedIter,
        line: toks[idxs[in_at]].line,
        detail: format!("`for` loop over unordered field `{field}` with an order-sensitive body"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::Workspace;
    use crate::rules::FileKind;

    fn build(src: &str) -> (Workspace, CallGraph) {
        let ws = Workspace::parse(&[(
            "crates/x/src/space/mod.rs".to_string(),
            FileKind::Library,
            src,
        )]);
        let g = CallGraph::build(&ws);
        (ws, g)
    }

    fn fn_idx(ws: &Workspace, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn free_call_edges_resolve_within_the_file() {
        let (ws, g) = build("pub fn scan_a() { helper(); }\nfn helper() { leaf(); }\nfn leaf() {}");
        let a = fn_idx(&ws, "scan_a");
        let h = fn_idx(&ws, "helper");
        let l = fn_idx(&ws, "leaf");
        assert_eq!(g.edges[a].iter().map(|e| e.0).collect::<Vec<_>>(), vec![h]);
        assert_eq!(g.edges[h].iter().map(|e| e.0).collect::<Vec<_>>(), vec![l]);
        assert!(g.reverse[l].contains(&h));
    }

    #[test]
    fn method_and_qualified_calls_resolve_to_methods() {
        let (ws, g) = build(
            "struct S;\nimpl S { fn probe_or_stage(&self) {} fn tick(&self) { self.probe_or_stage(); } }\n\
             pub fn scan_b(s: &S) { S::probe_or_stage(s); }",
        );
        let m = fn_idx(&ws, "probe_or_stage");
        let t = fn_idx(&ws, "tick");
        let b = fn_idx(&ws, "scan_b");
        assert!(g.edges[t].iter().any(|e| e.0 == m), "dot call resolves");
        assert!(
            g.edges[b].iter().any(|e| e.0 == m),
            "qualified call resolves"
        );
    }

    #[test]
    fn common_method_names_do_not_link() {
        let (ws, g) = build(
            "struct S;\nimpl S { fn len(&self) -> usize { 0 } }\n\
             pub fn scan_c(v: &[u8]) -> usize { v.len() }",
        );
        let c = fn_idx(&ws, "scan_c");
        assert!(g.edges[c].is_empty(), "`.len()` stays unresolved");
    }

    #[test]
    fn effects_propagate_to_callers() {
        let (ws, g) = build(
            "pub fn scan_d() { mid(); }\nfn mid() { src(); }\n\
             fn src() { let _ = std::time::Instant::now(); }",
        );
        let d = fn_idx(&ws, "scan_d");
        let s = fn_idx(&ws, "src");
        assert!(g.summary[s].has(Effect::WallClock));
        assert!(g.summary[d].has(Effect::WallClock), "transitive summary");
        assert!(g.local[d].is_empty(), "no local effect on the entry");
        let chain = g.chain_to_local(d, Effect::WallClock, &ws);
        assert_eq!(chain.len(), 3, "entry → mid → src");
    }

    #[test]
    fn entry_reachability_builds_chains() {
        let (ws, g) = build("pub fn scan_e() { a(); }\nfn a() { b(); }\nfn b() {}\nfn island() {}");
        let b = fn_idx(&ws, "b");
        let island = fn_idx(&ws, "island");
        assert!(g.reachable(b));
        assert!(!g.reachable(island));
        let chain = g.chain_from_entry(b);
        assert_eq!(chain.len(), 3);
        assert_eq!(ws.fns[chain[0].func].name, "scan_e");
        assert_eq!(ws.fns[chain[2].func].name, "b");
    }

    #[test]
    fn unordered_field_iteration_is_an_effect_unless_sunk_ordered() {
        let (ws, g) = build(
            "struct T { m: HashMap<u32, u32> }\nimpl T {\n\
             fn bad(&self) -> Vec<u32> { self.m.values().copied().collect() }\n\
             fn good(&self) -> BTreeMap<u32, u32> {\n\
               let mut out = BTreeMap::new();\n\
               for (k, v) in self.m.iter() { out.insert(*k, *v); }\nout }\n\
             fn summed(&self) -> u32 { self.m.values().sum() }\n}",
        );
        let bad = fn_idx(&ws, "bad");
        let good = fn_idx(&ws, "good");
        let summed = fn_idx(&ws, "summed");
        assert!(g.summary[bad].has(Effect::UnorderedIter));
        assert!(!g.summary[good].has(Effect::UnorderedIter), "BTreeMap sink");
        assert!(!g.summary[summed].has(Effect::UnorderedIter), "sum() sink");
    }

    #[test]
    fn computed_range_slice_is_an_effect_but_plain_index_is_not() {
        let (ws, g) = build(
            "fn slice(v: &[u8], a: usize, n: usize) -> &[u8] { &v[a..a + n] }\n\
             fn plain(v: &[u8], i: usize) -> u8 { v[i] }\n\
             fn whole(v: &[u8]) -> &[u8] { &v[..] }",
        );
        assert!(g.summary[fn_idx(&ws, "slice")].has(Effect::PanicIndex));
        assert!(!g.summary[fn_idx(&ws, "plain")].has(Effect::PanicIndex));
        assert!(!g.summary[fn_idx(&ws, "whole")].has(Effect::PanicIndex));
    }

    #[test]
    fn guard_acquisition_is_detected_in_space_modules() {
        let (ws, g) = build(
            "struct I;\nimpl I { fn shard(&self) { let _g = self.inner.lock(); } }\n\
             fn stage(stats: &mut u32) { let _g = lock_counting(stats); }\nfn lock_counting(_s: &mut u32) {}",
        );
        assert!(g.summary[fn_idx(&ws, "shard")].has(Effect::AcquiresGuard));
        assert!(g.summary[fn_idx(&ws, "stage")].has(Effect::AcquiresGuard));
    }
}
