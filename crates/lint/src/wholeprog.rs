//! The whole-program rules L007–L010, computed over the call graph.
//!
//! Where L001–L006 are per-file token patterns, these four rules are
//! reachability questions over [`crate::graph::CallGraph`]:
//!
//! * **L007** — nondeterminism taint: a wall-clock, laundered-iteration
//!   or randomness source reachable from a scan/sim/snapshot entry
//!   point, flagged *at the source* with the entry→source call chain in
//!   the message (so one suppression covers one source, not one per
//!   entry).
//! * **L008** — shard-lock discipline: a let-bound shard guard held
//!   across another acquisition or across a call whose transitive
//!   summary says it may acquire (re-enter the intern index).
//! * **L009** — panic freedom: a computed-range slice reachable from an
//!   entry point, with the call chain.
//! * **L010** — cross-crate conformance: `SimModel`/`Symmetric`
//!   implementers whose crate lacks a `SnapshotState` impl or a
//!   `state_packer` definition; and telemetry names registered in
//!   `telemetry::names::NAMES` but never emitted anywhere.
//!
//! Findings land in real files and are waivable with the same
//! `// lint:allow(L00x, reason)` comments as the token rules; the
//! suppression logic here mirrors `rules::check_file` (same line or the
//! next code line).

use std::collections::BTreeSet;

use crate::graph::{body_view, CallGraph, ChainStep, Effect, GraphStats};
use crate::items::Workspace;
use crate::lexer::TokKind;
use crate::rules::{
    next_code_line, FileKind, FileReport, Finding, Severity, SuppressedFinding, RULES,
};

/// Runs L007–L010 over `sources` and returns the merged outcome plus
/// the call-graph statistics for `--graph-stats`.
///
/// `sources` is every workspace file as `(rel path, kind, src)`; only
/// library/bin files contribute graph nodes, but test/bench sources
/// still count as telemetry emission sites for L010. `names` is the
/// telemetry registry (pass `layered_core::telemetry::names::NAMES`).
#[must_use]
pub fn check_workspace(
    sources: &[(String, FileKind, &str)],
    names: &[&str],
) -> (FileReport, GraphStats) {
    let ws = Workspace::parse(sources);
    let g = CallGraph::build(&ws);
    let mut raw: Vec<Finding> = Vec::new();
    rule_l007(&ws, &g, &mut raw);
    rule_l008(&ws, &g, &mut raw);
    rule_l009(&ws, &g, &mut raw);
    rule_l010(&ws, sources, names, &mut raw);
    raw.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    raw.dedup();

    // Apply suppressions per defining file, mirroring rules::check_file.
    let mut report = FileReport::default();
    'findings: for finding in raw {
        if let Some(file) = ws.files.iter().find(|f| f.rel == finding.file) {
            for sup in &file.suppressions {
                let covers = sup.line == finding.line
                    || next_code_line(&file.toks, sup.line) == Some(finding.line);
                if covers && sup.rules.iter().any(|r| r == finding.rule) {
                    report.suppressed.push(SuppressedFinding {
                        finding,
                        reason: sup.reason.clone(),
                    });
                    continue 'findings;
                }
            }
        }
        report.findings.push(finding);
    }
    (report, GraphStats::compute(&ws, &g))
}

fn severity_of(rule: &str) -> Severity {
    RULES
        .iter()
        .find(|r| r.id == rule)
        .map_or(Severity::Deny, |r| r.severity)
}

/// Renders an entry→site call chain as `a → b → c`.
fn chain_names(ws: &Workspace, chain: &[ChainStep]) -> String {
    chain
        .iter()
        .map(|s| ws.fns[s.func].qualified_name())
        .collect::<Vec<_>>()
        .join(" → ")
}

/// L007 + L009 shared shape: flag local occurrences of `eff` in
/// functions reachable from the entry set, chain included.
fn taint_rule(
    ws: &Workspace,
    g: &CallGraph,
    rule: &'static str,
    effects: &[Effect],
    out: &mut Vec<Finding>,
) {
    for (idx, f) in ws.fns.iter().enumerate() {
        if !g.reachable(idx) {
            continue;
        }
        let chain = g.chain_from_entry(idx);
        for &eff in effects {
            let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
            for occ in g.local[idx].iter().filter(|l| l.effect == eff) {
                if !seen_lines.insert(occ.line) {
                    continue;
                }
                let via = chain_names(ws, &chain);
                out.push(Finding {
                    rule,
                    severity: severity_of(rule),
                    file: ws.files[f.file].rel.clone(),
                    line: occ.line,
                    message: format!("{} — reachable from entry via {via}", occ.detail),
                });
            }
        }
    }
}

/// L007: nondeterministic sources reachable from entry points.
fn rule_l007(ws: &Workspace, g: &CallGraph, out: &mut Vec<Finding>) {
    taint_rule(
        ws,
        g,
        "L007",
        &[Effect::WallClock, Effect::UnorderedIter, Effect::Random],
        out,
    );
}

/// L009: computed-range slices reachable from entry points.
fn rule_l009(ws: &Workspace, g: &CallGraph, out: &mut Vec<Finding>) {
    taint_rule(ws, g, "L009", &[Effect::PanicIndex], out);
}

/// L008: shard guards held across further acquisition.
///
/// A *guard window* opens at a `let` statement whose initializer
/// acquires (a direct acquisition token, or a call to a function whose
/// summary includes acquires-guard) and closes at the enclosing block's
/// `}` or at `drop(<binding>)`. Within a window the rule flags direct
/// acquisition tokens and calls to may-acquire functions.
fn rule_l008(ws: &Workspace, g: &CallGraph, out: &mut Vec<Finding>) {
    for (idx, f) in ws.fns.iter().enumerate() {
        let Some(body) = body_view(ws, idx) else {
            continue;
        };
        let toks = body.toks;
        let idxs: Vec<usize> = body.indexes().collect();
        // Effect-occurrence lines for direct acquisitions in this fn.
        let acquire_lines: BTreeSet<u32> = g.local[idx]
            .iter()
            .filter(|l| l.effect == Effect::AcquiresGuard)
            .map(|l| l.line)
            .collect();
        // Call sites (line → callees that may acquire).
        let may_acquire_calls: Vec<(u32, usize)> = g.edges[idx]
            .iter()
            .filter(|&&(callee, _)| g.summary[callee].has(Effect::AcquiresGuard))
            .map(|&(callee, line)| (line, callee))
            .collect();
        let mut pos = 0usize;
        while pos < idxs.len() {
            if !toks[idxs[pos]].is_ident("let") {
                pos += 1;
                continue;
            }
            // Binding name (skip `mut`); destructuring lets never bind a
            // guard in this workspace's idiom.
            let mut p = pos + 1;
            if idxs.get(p).is_some_and(|&j| toks[j].is_ident("mut")) {
                p += 1;
            }
            let binding = idxs
                .get(p)
                .filter(|&&j| toks[j].kind == TokKind::Ident)
                .map(|&j| toks[j].text.clone());
            // Statement end: `;` at relative depth 0.
            let mut depth = 0i32;
            let mut q = p;
            while let Some(&j) = idxs.get(q) {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct('}') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_punct(';') && depth <= 0 {
                    break;
                }
                q += 1;
            }
            let Some(&stmt_end_tok) = idxs.get(q) else {
                break;
            };
            let stmt_range = (toks[idxs[pos]].line, toks[stmt_end_tok].line);
            // A window opens only on a *direct* acquisition in the
            // initializer (`.lock(`/`.try_lock(`/`lock_counting(`): a
            // call that merely acquires transitively releases its guard
            // before returning, so the let does not bind one. (A helper
            // that returns a guard is missed — a documented
            // under-approximation; the workspace's accessors that do so
            // are themselves direct acquirers and checked locally.)
            let acquires_here = acquire_lines
                .iter()
                .any(|&l| (stmt_range.0..=stmt_range.1).contains(&l));
            if !acquires_here {
                pos = q + 1;
                continue;
            }
            // Window: from after the statement to the enclosing block's
            // close (depth −1 relative to here) or `drop(binding)`.
            let mut wdepth = 0i32;
            let mut w = q + 1;
            let mut window_end = idxs.len();
            while let Some(&j) = idxs.get(w) {
                let t = &toks[j];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    wdepth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    wdepth -= 1;
                    if wdepth < 0 {
                        window_end = w;
                        break;
                    }
                } else if t.is_ident("drop")
                    && binding
                        .as_deref()
                        .is_some_and(|b| idxs.get(w + 2).is_some_and(|&k| toks[k].is_ident(b)))
                {
                    window_end = w;
                    break;
                }
                w += 1;
            }
            let window_lines = (
                toks[stmt_end_tok].line,
                idxs.get(window_end.min(idxs.len() - 1))
                    .map_or(u32::MAX, |&j| toks[j].line),
            );
            let held = binding.as_deref().unwrap_or("_");
            let rel = &ws.files[f.file].rel;
            for &l in &acquire_lines {
                if l > window_lines.0 && l <= window_lines.1 {
                    out.push(Finding {
                        rule: "L008",
                        severity: severity_of("L008"),
                        file: rel.clone(),
                        line: l,
                        message: format!(
                            "shard-guard acquisition while `{held}` (acquired on line {}) is still held — nested locking deadlocks the striped interner",
                            stmt_range.0
                        ),
                    });
                }
            }
            for &(l, callee) in &may_acquire_calls {
                if l > window_lines.0 && l <= window_lines.1 {
                    let down = g.chain_to_local(callee, Effect::AcquiresGuard, ws);
                    out.push(Finding {
                        rule: "L008",
                        severity: severity_of("L008"),
                        file: rel.clone(),
                        line: l,
                        message: format!(
                            "call to `{}` may re-enter the intern index (acquires via {}) while `{held}` is held",
                            ws.fns[callee].qualified_name(),
                            chain_names(ws, &down),
                        ),
                    });
                }
            }
            pos = q + 1;
        }
    }
}

/// L010: model-crate conformance and dead telemetry names.
fn rule_l010(
    ws: &Workspace,
    sources: &[(String, FileKind, &str)],
    names: &[&str],
    out: &mut Vec<Finding>,
) {
    // (1) Every crate with a SimModel/Symmetric impl provides
    // SnapshotState and state_packer.
    let crate_of = |file: usize| ws.files[file].crate_name.as_str();
    let crates_with_snapshot: BTreeSet<&str> = ws
        .impls
        .iter()
        .filter(|i| i.trait_name.as_deref() == Some("SnapshotState"))
        .map(|i| crate_of(i.file))
        .collect();
    let crates_with_packer: BTreeSet<&str> = ws
        .fns
        .iter()
        .filter(|f| f.name == "state_packer")
        .map(|f| crate_of(f.file))
        .collect();
    let mut flagged: BTreeSet<(String, String)> = BTreeSet::new();
    for imp in ws
        .impls
        .iter()
        .filter(|i| matches!(i.trait_name.as_deref(), Some("SimModel" | "Symmetric")))
    {
        let krate = crate_of(imp.file);
        let mut missing: Vec<&str> = Vec::new();
        if !crates_with_snapshot.contains(krate) {
            missing.push("a `SnapshotState` impl");
        }
        if !crates_with_packer.contains(krate) {
            missing.push("a `state_packer` definition");
        }
        if missing.is_empty() {
            continue;
        }
        if !flagged.insert((krate.to_string(), imp.self_ty.clone())) {
            continue;
        }
        out.push(Finding {
            rule: "L010",
            severity: severity_of("L010"),
            file: ws.files[imp.file].rel.clone(),
            line: imp.line,
            message: format!(
                "`{}` implements `{}` but crate `{krate}` provides no {} — its state spaces cannot be checkpointed/packed like the other models'",
                imp.self_ty,
                imp.trait_name.as_deref().unwrap_or(""),
                missing.join(" or "),
            ),
        });
    }

    // (2) Dead registry names: registered in telemetry/names.rs but never
    // emitted as a quoted literal anywhere else in the workspace.
    let Some(reg) = ws
        .files
        .iter()
        .find(|f| f.rel.ends_with("telemetry/names.rs"))
    else {
        return;
    };
    for tok in reg
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Str && names.contains(&t.text.as_str()))
    {
        let needle = format!("\"{}\"", tok.text);
        let emitted = sources
            .iter()
            .any(|(rel, _, src)| rel != &reg.rel && src.contains(&needle));
        if !emitted {
            out.push(Finding {
                rule: "L010",
                severity: severity_of("L010"),
                file: reg.rel.clone(),
                line: tok.line,
                message: format!(
                    "telemetry name \"{}\" is registered but never emitted — dead registry entries are stale contracts",
                    tok.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> FileReport {
        let sources: Vec<(String, FileKind, &str)> = files
            .iter()
            .map(|(rel, src)| ((*rel).to_string(), crate::classify(rel), *src))
            .collect();
        check_workspace(&sources, &["sim.step"]).0
    }

    #[test]
    fn l007_flags_cross_file_laundering_with_a_chain() {
        // File A declares the unordered field; file B iterates it behind
        // a helper. Token-local L001 sees neither: A never iterates, and
        // B never names a hash type.
        let report = run(&[
            (
                "crates/x/src/store.rs",
                "pub struct Store { pub buckets: HashMap<u64, u32> }",
            ),
            (
                "crates/x/src/scan.rs",
                "pub fn scan_all(s: &Store) -> Vec<u32> { summarize(s) }\n\
                 fn summarize(s: &Store) -> Vec<u32> { bucket_order(s) }\n\
                 fn bucket_order(s: &Store) -> Vec<u32> { s.buckets.values().copied().collect() }",
            ),
        ]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        let f = &report.findings[0];
        assert_eq!(f.rule, "L007");
        assert_eq!(f.file, "crates/x/src/scan.rs");
        assert!(
            f.message.contains("scan_all → summarize → bucket_order"),
            "≥2-deep chain in the diagnostic: {}",
            f.message
        );
    }

    #[test]
    fn l007_is_silent_when_the_sink_is_ordered() {
        let report = run(&[
            (
                "crates/x/src/store.rs",
                "pub struct Store { pub buckets: HashMap<u64, u32> }",
            ),
            (
                "crates/x/src/scan.rs",
                "pub fn scan_all(s: &Store) -> BTreeMap<u64, u32> {\n\
                 let mut out = BTreeMap::new();\n\
                 for (k, v) in s.buckets.iter() { out.insert(*k, *v); }\nout }",
            ),
        ]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn l007_flags_wall_clock_behind_a_helper() {
        let report = run(&[(
            "crates/x/src/scan.rs",
            "pub fn scan_run() -> u64 { stamp() }\n\
             fn stamp() -> u64 { let t = std::time::Instant::now(); 0 }",
        )]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "L007");
        assert!(report.findings[0].message.contains("scan_run → stamp"));
    }

    #[test]
    fn l008_flags_nested_acquisition_and_reentrant_calls() {
        let report = run(&[(
            "crates/x/src/space/mod.rs",
            "struct Ix;\nimpl Ix {\n\
             fn shard(&self) -> u32 { let g = self.inner.lock(); 0 }\n\
             fn nested(&self) {\nlet a = self.inner.lock();\nlet b = self.other.lock();\n}\n\
             fn reentrant(&self) {\nlet a = self.inner.lock();\nself.shard();\n}\n\
             fn fine(&self) {\nlet a = self.inner.lock();\ndrop(a);\nself.shard();\n}\n}",
        )]);
        let rules: Vec<(&str, u32)> = report.findings.iter().map(|f| (f.rule, f.line)).collect();
        assert!(
            rules.contains(&("L008", 6)),
            "nested acquisition flagged: {:?}",
            report.findings
        );
        assert!(
            rules.contains(&("L008", 10)),
            "re-entrant call flagged: {:?}",
            report.findings
        );
        assert!(
            !report.findings.iter().any(|f| f.line == 15),
            "drop() closes the window: {:?}",
            report.findings
        );
    }

    #[test]
    fn l009_flags_reachable_computed_range_slices() {
        let report = run(&[(
            "crates/x/src/scan.rs",
            "pub fn scan_bytes(v: &[u8]) -> &[u8] { window(v, 2, 3) }\n\
             fn window(v: &[u8], a: usize, n: usize) -> &[u8] { &v[a..a + n] }\n\
             fn unreachable_helper(v: &[u8]) -> &[u8] { &v[1..1 + 1] }",
        )]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, "L009");
        assert_eq!(report.findings[0].line, 2);
        assert!(report.findings[0].message.contains("scan_bytes → window"));
    }

    #[test]
    fn l010_flags_a_model_crate_without_snapshot_support() {
        let report = run(&[
            (
                "crates/badmodel/src/lib.rs",
                "pub struct M;\nimpl SimModel for M { fn moves(&self) {} }",
            ),
            (
                "crates/goodmodel/src/lib.rs",
                "pub struct G;\nimpl SimModel for G { fn moves(&self) {} }\n\
                 impl SnapshotState for G {}\n\
                 impl G { fn state_packer(&self) -> u32 { 0 } }",
            ),
        ]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        let f = &report.findings[0];
        assert_eq!(f.rule, "L010");
        assert!(f.file.contains("badmodel"));
        assert!(f.message.contains("SnapshotState"));
    }

    #[test]
    fn l010_flags_dead_registry_names() {
        let report = run(&[
            (
                "crates/core/src/telemetry/names.rs",
                "pub const NAMES: &[&str] = &[\"sim.step\"];",
            ),
            ("crates/x/src/lib.rs", "pub fn quiet() {}"),
        ]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, "L010");
        assert!(report.findings[0].message.contains("sim.step"));
    }

    #[test]
    fn suppressions_cover_whole_program_findings() {
        let report = run(&[(
            "crates/x/src/scan.rs",
            "pub fn scan_run() -> u64 { stamp() }\n\
             fn stamp() -> u64 {\n\
             // lint:allow(L007, timing is stripped before hashing)\n\
             let t = std::time::Instant::now(); 0 }",
        )]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(
            report.suppressed[0].reason,
            "timing is stripped before hashing"
        );
    }
}
