//! The rule catalog (L001–L006) and the per-file checking engine.
//!
//! Each rule is a pattern over the lossy token stream produced by
//! [`crate::lexer`]; the catalog, scoping and rationale are documented in
//! DESIGN.md ("Static analysis & the determinism contract"). Summary:
//!
//! | rule | severity | guards against |
//! |------|----------|----------------|
//! | L001 | deny | iterating a `HashMap`/`HashSet` where order can leak into output, serialization, or interning order |
//! | L002 | deny | `Instant::now`/`SystemTime` in result-record paths (timing must be a documented, strippable field) |
//! | L003 | warn | `unwrap()` / `expect("")` in library code — panics need a stated invariant |
//! | L004 | warn | crate roots missing `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` |
//! | L005 | deny | telemetry name literals not registered in `layered_core::telemetry::names::NAMES` |
//! | L006 | deny | floats formatted with `{}`/`{:?}` straight into JSON text instead of the canonical encoder |
//!
//! Rules apply to library and binary sources only; tests, benches and
//! examples are exempt (L003 additionally exempts the `crates/bench`
//! harness). Code inside `#[cfg(test)]` items is exempt everywhere. Any
//! finding can be waived with an inline `// lint:allow(L00x, reason)` on
//! the same or preceding line; suppressions are counted in the report and
//! the repo-wide lint-clean test requires every one to carry a reason.

use crate::lexer::{lex, matching, Tok, TokKind};

/// Where in the workspace a source file lives — decides which rules run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// A library source (`src/…`, except `src/bin`).
    Library,
    /// A binary source (`src/bin/…`, `src/main.rs`, `build.rs`).
    Bin,
    /// An integration test (`tests/…`).
    Test,
    /// A benchmark (`benches/…`).
    Bench,
    /// An example (`examples/…`).
    Example,
}

/// One source file to check.
#[derive(Clone, Debug)]
pub struct FileInput<'a> {
    /// Workspace-relative path with `/` separators (used in findings and
    /// for L003's bench-crate exemption).
    pub path: String,
    /// The file's classification.
    pub kind: FileKind,
    /// Whether this is a crate root (`src/lib.rs`) — enables L004.
    pub crate_root: bool,
    /// The source text.
    pub src: &'a str,
}

/// Severity of a rule: `deny` findings break the determinism contract
/// directly, `warn` findings are contract hygiene. Both fail the build —
/// the distinction is for readers of the report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Contract-breaking.
    Deny,
    /// Contract hygiene.
    Warn,
}

impl Severity {
    /// The severity as a lowercase string for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// Static description of one rule, for reports and docs.
#[derive(Clone, Copy, Debug)]
pub struct RuleMeta {
    /// The rule id (`L001`…`L006`).
    pub id: &'static str,
    /// The rule's severity.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
}

/// The rule catalog, in id order.
pub const RULES: &[RuleMeta] = &[
    RuleMeta {
        id: "L001",
        severity: Severity::Deny,
        summary: "iteration over an unordered HashMap/HashSet in non-test code",
    },
    RuleMeta {
        id: "L002",
        severity: Severity::Deny,
        summary: "Instant::now/SystemTime in result-record paths",
    },
    RuleMeta {
        id: "L003",
        severity: Severity::Warn,
        summary: "unwrap()/expect(\"\") in library code",
    },
    RuleMeta {
        id: "L004",
        severity: Severity::Warn,
        summary: "crate root missing #![forbid(unsafe_code)]/#![deny(missing_docs)]",
    },
    RuleMeta {
        id: "L005",
        severity: Severity::Deny,
        summary: "telemetry name literal not registered in telemetry::NAMES",
    },
    RuleMeta {
        id: "L006",
        severity: Severity::Deny,
        summary: "float formatted into JSON text instead of the canonical encoder",
    },
    RuleMeta {
        id: "L007",
        severity: Severity::Deny,
        summary: "nondeterministic source reachable from a scan/sim/snapshot entry point",
    },
    RuleMeta {
        id: "L008",
        severity: Severity::Deny,
        summary: "shard-guard held across another acquisition or a re-entrant call",
    },
    RuleMeta {
        id: "L009",
        severity: Severity::Warn,
        summary: "computed-range slice (panic risk) reachable from a scan path",
    },
    RuleMeta {
        id: "L010",
        severity: Severity::Deny,
        summary: "model crate missing SnapshotState/StatePacker, or dead telemetry name",
    },
];

/// Long-form `--explain` prose for a rule id, or `None` if unknown.
#[must_use]
pub fn explain(id: &str) -> Option<&'static str> {
    Some(match id {
        "L001" => {
            "L001 — unordered iteration (token rule).\n\
             Iterating a HashMap/HashSet (or the Fx variants) yields platform- and\n\
             seed-dependent order. If that order can reach output, serialization, or\n\
             interning, seq/par bit-identity is lost. Fix: use BTreeMap/BTreeSet, or\n\
             sort before consuming, or consume with an order-insensitive reduction\n\
             (count/sum/min/max/…). The rule is per-file: it only sees bindings whose\n\
             unordered type is visible in the same file — the cross-file laundering\n\
             case is L007's job."
        }
        "L002" => {
            "L002 — wall-clock reads (token rule).\n\
             Instant::now/SystemTime values differ per run; anywhere outside the\n\
             telemetry::clock wrapper they can leak into result records and break\n\
             byte-stability. Fix: route timing through telemetry::clock, whose _ns\n\
             fields are documented as strippable."
        }
        "L003" => {
            "L003 — unwrap/expect(\"\") in library code (token rule).\n\
             A panic without a stated invariant is an undocumented proof obligation.\n\
             Fix: expect(\"<invariant that makes this infallible>\") or handle the\n\
             error. Tests and the bench harness are exempt."
        }
        "L004" => {
            "L004 — missing crate-root hygiene attributes (token rule).\n\
             Every crate root must carry #![forbid(unsafe_code)] and\n\
             #![deny(missing_docs)]: the determinism argument leans on the absence\n\
             of unsafe aliasing, and the lint itself parses doc comments."
        }
        "L005" => {
            "L005 — unregistered telemetry name (token rule).\n\
             Observer calls and span constructors must use names listed in\n\
             layered_core::telemetry::names::NAMES, so records stay greppable and\n\
             the registry stays the single source of truth. L010 checks the reverse\n\
             direction (registered but never emitted)."
        }
        "L006" => {
            "L006 — float formatted into JSON text (token rule).\n\
             Formatting an f64 with {} or {:?} bypasses the canonical JSON encoder's\n\
             shortest-roundtrip rendering and can differ across platforms. Fix:\n\
             build a Json value and render it."
        }
        "L007" => {
            "L007 — nondeterminism taint (call-graph rule).\n\
             A whole-program reachability check: starting from the scan/sim/snapshot\n\
             entry points (pub fns in space/snapshot/layering/sim modules, the sim\n\
             crate, and scan_*/expand_*/build_* drivers), any path that reaches a\n\
             nondeterministic source is flagged at the source, with the full call\n\
             chain in the message. Sources: Instant/SystemTime outside\n\
             telemetry::clock, iteration of a struct field holding a\n\
             HashMap/HashSet in an order-sensitive position (the laundering pattern\n\
             L001 cannot see across files), and RandomState/thread_rng. A sink into\n\
             a BTreeMap/BTreeSet or an order-insensitive reduction neutralizes the\n\
             iteration source."
        }
        "L008" => {
            "L008 — shard-lock discipline (call-graph rule).\n\
             The 16-way striped intern index is deadlock-free only if a shard guard\n\
             is never held while acquiring another shard guard, and never held\n\
             across a call that may re-enter the index. The rule finds let-bound\n\
             guard acquisitions (lock_counting, or .lock()/.try_lock() in space\n\
             modules) and flags, within the guard's scope, both direct second\n\
             acquisitions and calls to functions whose transitive effect summary\n\
             includes acquires-guard. Fix: drop the guard first, or hoist the\n\
             re-entrant work out of the critical section."
        }
        "L009" => {
            "L009 — panic-freedom on hot paths (call-graph rule).\n\
             Extends L003 beyond unwrap: computed-range slicing (v[a..a + n] and\n\
             friends) panics when the arithmetic is wrong, and on a scan path that\n\
             tears down a multi-hour run. The rule flags computed-range slices in\n\
             functions reachable from the entry points. Plain v[i] indexing and\n\
             full-range v[..] are deliberately out of scope (the workspace uses\n\
             them pervasively behind checked invariants). Fix:\n\
             .get(a..a + n).expect(\"<invariant>\") to state the proof obligation."
        }
        "L010" => {
            "L010 — cross-crate conformance (call-graph rule).\n\
             Two completeness checks that previously relied on reviewer memory:\n\
             (1) every crate implementing SimModel or Symmetric must also provide a\n\
             SnapshotState impl and a state_packer definition, so its state spaces\n\
             are checkpointable and packable like every other model's; (2) every\n\
             name registered in telemetry::names::NAMES must be emitted somewhere\n\
             in the workspace — a dead registry entry is a stale contract."
        }
        _ => return None,
    })
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The rule id.
    pub rule: &'static str,
    /// The rule severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the defect.
    pub message: String,
}

/// A finding waived by an inline `lint:allow` comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuppressedFinding {
    /// The waived finding.
    pub finding: Finding,
    /// The reason given in the suppression comment (may be empty; the
    /// repo-wide test rejects empty reasons).
    pub reason: String,
}

/// The outcome of checking one file.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// Unsuppressed findings, in (line, rule) order.
    pub findings: Vec<Finding>,
    /// Suppressed findings, in (line, rule) order.
    pub suppressed: Vec<SuppressedFinding>,
}

/// Checks one file against the whole catalog.
///
/// `names` is the telemetry registry L005 validates against — pass
/// `layered_core::telemetry::names::NAMES` for real runs, or a custom
/// slice in fixtures.
#[must_use]
pub fn check_file(input: &FileInput<'_>, names: &[&str]) -> FileReport {
    let lexed = lex(input.src);
    let test_lines = test_line_ranges(&lexed.toks);
    let ctx = Ctx {
        input,
        toks: &lexed.toks,
        test_lines: &test_lines,
        names,
    };

    let mut raw: Vec<Finding> = Vec::new();
    rule_l001(&ctx, &mut raw);
    rule_l002(&ctx, &mut raw);
    rule_l003(&ctx, &mut raw);
    rule_l004(&ctx, &mut raw);
    rule_l005(&ctx, &mut raw);
    rule_l006(&ctx, &mut raw);
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));

    // Apply suppressions: a `lint:allow` covers its own line and the next
    // line that holds code (so it can sit above the offending statement).
    let mut report = FileReport::default();
    'findings: for finding in raw {
        for sup in &lexed.suppressions {
            let covers = sup.line == finding.line
                || next_code_line(&lexed.toks, sup.line) == Some(finding.line);
            if covers && sup.rules.iter().any(|r| r == finding.rule) {
                report.suppressed.push(SuppressedFinding {
                    finding,
                    reason: sup.reason.clone(),
                });
                continue 'findings;
            }
        }
        report.findings.push(finding);
    }
    report
}

/// The first token line strictly after `line` — where a suppression
/// comment on its own line points.
pub(crate) fn next_code_line(toks: &[Tok], line: u32) -> Option<u32> {
    toks.iter().map(|t| t.line).find(|&l| l > line)
}

struct Ctx<'a> {
    input: &'a FileInput<'a>,
    toks: &'a [Tok],
    test_lines: &'a [(u32, u32)],
    names: &'a [&'a str],
}

impl Ctx<'_> {
    fn in_test_code(&self, line: u32) -> bool {
        matches!(self.input.kind, FileKind::Test)
            || self
                .test_lines
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Library/bin code outside `#[cfg(test)]` — where the determinism
    /// rules apply.
    fn lintable(&self, line: u32) -> bool {
        matches!(self.input.kind, FileKind::Library | FileKind::Bin) && !self.in_test_code(line)
    }

    fn emit(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
        let severity = RULES
            .iter()
            .find(|r| r.id == rule)
            .map_or(Severity::Deny, |r| r.severity);
        out.push(Finding {
            rule,
            severity,
            file: self.input.path.clone(),
            line,
            message,
        });
    }
}

/// Line ranges covered by `#[cfg(test)]` items (usually `mod tests`).
///
/// Heuristic: find each `#[cfg(… test …)]` attribute (excluding
/// `cfg(not(test))`), skip any further attributes, then span to the end
/// of the following item — its matching `}` for a block, or the `;` for
/// a declaration.
fn test_line_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
            let start = i;
            let Some(close) = matching(toks, i + 1, '[', ']') else {
                break;
            };
            let attr = &toks[i + 2..close];
            let mentions_cfg_test = attr.iter().any(|t| t.is_ident("cfg"))
                && attr.iter().any(|t| t.is_ident("test"))
                && !attr.iter().any(|t| t.is_ident("not"));
            i = close + 1;
            if !mentions_cfg_test {
                continue;
            }
            // Skip stacked attributes, then find the item's extent.
            let mut j = i;
            while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
                match matching(toks, j + 1, '[', ']') {
                    Some(end) => j = end + 1,
                    None => return ranges,
                }
            }
            let mut k = j;
            while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                k += 1;
            }
            let end_line = if k < toks.len() && toks[k].is_punct('{') {
                matching(toks, k, '{', '}')
                    .map_or_else(|| toks[toks.len() - 1].line, |end| toks[end].line)
            } else if k < toks.len() {
                toks[k].line
            } else {
                toks[toks.len() - 1].line
            };
            ranges.push((toks[start].line, end_line));
        } else {
            i += 1;
        }
    }
    ranges
}

/// The unordered hash containers the determinism rules track.
pub(crate) const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
/// Iterator-producing methods on those containers.
pub(crate) const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];
/// Consumers that make iteration order unobservable: commutative
/// reductions, pure membership/size queries, and re-sorting collectors.
pub(crate) const ORDER_INSENSITIVE: &[&str] = &[
    "count",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
    "all",
    "any",
    "len",
    "contains",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// L001: iteration over a container this file binds to an unordered
/// hash type, unless the enclosing statement consumes it
/// order-insensitively.
fn rule_l001(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let unordered = unordered_bindings(ctx.toks);
    if unordered.is_empty() {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        // `<id>.iter()` and friends.
        if i + 3 < toks.len()
            && toks[i].kind == TokKind::Ident
            && unordered.iter().any(|u| *u == toks[i].text)
            && toks[i + 1].is_punct('.')
            && ITER_METHODS.iter().any(|m| toks[i + 2].is_ident(m))
            && toks[i + 3].is_punct('(')
        {
            let line = toks[i].line;
            if ctx.lintable(line) && !statement_is_order_insensitive(toks, i + 3) {
                ctx.emit(
                    out,
                    "L001",
                    line,
                    format!(
                        "iteration over unordered `{}` via `.{}()` — order can differ across \
                         runs; sort first, use a BTree container, or reduce order-insensitively",
                        toks[i].text,
                        toks[i + 2].text
                    ),
                );
            }
        }
        // `for x in &<id> { … }` — direct loop over the container.
        if toks[i].is_ident("for") {
            if let Some(j) = toks[i..].iter().take(12).position(|t| t.is_ident("in")) {
                let mut k = i + j + 1;
                while k < toks.len() && (toks[k].is_punct('&') || toks[k].is_ident("mut")) {
                    k += 1;
                }
                if k + 1 < toks.len()
                    && toks[k].kind == TokKind::Ident
                    && unordered.iter().any(|u| *u == toks[k].text)
                    && toks[k + 1].is_punct('{')
                {
                    let line = toks[k].line;
                    if ctx.lintable(line) {
                        ctx.emit(
                            out,
                            "L001",
                            line,
                            format!(
                                "`for` loop over unordered `{}` — order can differ across runs",
                                toks[k].text
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Identifiers this file binds to a hash-based container, via `let`
/// initializers, type annotations, or struct field declarations.
fn unordered_bindings(toks: &[Tok]) -> Vec<String> {
    let mut found: Vec<String> = Vec::new();
    for (t, tok) in toks.iter().enumerate() {
        if !(tok.kind == TokKind::Ident && UNORDERED_TYPES.iter().any(|u| tok.is_ident(u))) {
            continue;
        }
        // Strip a `path::to::` prefix before the type name.
        let mut j = t;
        while j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
            j -= 2;
            if j >= 1 && toks[j - 1].kind == TokKind::Ident {
                j -= 1;
            }
        }
        // Skip reference sigils in `&mut HashMap`, `&'a HashMap`.
        while j >= 1
            && (toks[j - 1].is_punct('&')
                || toks[j - 1].is_ident("mut")
                || toks[j - 1].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        // `<id> : HashMap<…>` — annotation or struct field (a single `:`;
        // a double `::` would still be a path prefix).
        if j >= 2 && toks[j - 1].is_punct(':') && !toks[j - 2].is_punct(':') {
            if toks[j - 2].kind == TokKind::Ident && !toks[j - 2].is_ident("fn") {
                push_unique(&mut found, &toks[j - 2].text);
            }
            continue;
        }
        // Otherwise look back for `let [mut] <id> … = … HashMap…` in the
        // same statement.
        let mut back = t;
        let mut steps = 0;
        while back > 0 && steps < 40 {
            back -= 1;
            steps += 1;
            let tk = &toks[back];
            if tk.is_punct(';') || tk.is_punct('{') || tk.is_punct('}') {
                break;
            }
            if tk.is_ident("let") {
                let mut id = back + 1;
                if id < toks.len() && toks[id].is_ident("mut") {
                    id += 1;
                }
                if id < toks.len() && toks[id].kind == TokKind::Ident {
                    push_unique(&mut found, &toks[id].text);
                }
                break;
            }
        }
    }
    found
}

fn push_unique(list: &mut Vec<String>, item: &str) {
    if !list.iter().any(|x| x == item) {
        list.push(item.to_string());
    }
}

/// Whether the statement containing the call that opens at `open_paren`
/// ends in an order-insensitive consumer (see [`ORDER_INSENSITIVE`]).
fn statement_is_order_insensitive(toks: &[Tok], open_paren: usize) -> bool {
    let mut depth = 0i32;
    for tok in toks.iter().skip(open_paren).take(120) {
        if tok.is_punct('(') || tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') {
            depth -= 1;
        } else if tok.is_punct(';') && depth <= 0 {
            break;
        }
        if tok.kind == TokKind::Ident && ORDER_INSENSITIVE.iter().any(|m| tok.is_ident(m)) {
            return true;
        }
    }
    false
}

/// L002: wall-clock reads (`Instant::now`, `SystemTime`) outside test
/// code. Timing belongs in documented, strippable record fields;
/// legitimate uses carry a `lint:allow(L002, …)` naming the field.
fn rule_l002(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if toks[i].is_ident("Instant")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("now")
            && ctx.lintable(toks[i].line)
        {
            ctx.emit(
                out,
                "L002",
                toks[i].line,
                "`Instant::now` in a result-record path — timing must flow into a documented \
                 timing field that byte-stability comparisons strip"
                    .to_string(),
            );
        }
        if toks[i].is_ident("SystemTime") && ctx.lintable(toks[i].line) {
            ctx.emit(
                out,
                "L002",
                toks[i].line,
                "`SystemTime` in a result-record path — wall-clock timestamps break replay \
                 and golden records"
                    .to_string(),
            );
        }
    }
}

/// L003: `unwrap()` or `expect("")` in library code (tests, benches,
/// examples and the `crates/bench` harness are exempt).
fn rule_l003(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    if ctx.input.kind != FileKind::Library || ctx.input.path.starts_with("crates/bench/") {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        if i + 3 < toks.len()
            && toks[i + 1].is_ident("unwrap")
            && toks[i + 2].is_punct('(')
            && toks[i + 3].is_punct(')')
            && !ctx.in_test_code(toks[i + 1].line)
        {
            ctx.emit(
                out,
                "L003",
                toks[i + 1].line,
                "`unwrap()` in library code — state the invariant with \
                 `expect(\"<invariant>\")` or return an error"
                    .to_string(),
            );
        }
        if i + 4 < toks.len()
            && toks[i + 1].is_ident("expect")
            && toks[i + 2].is_punct('(')
            && toks[i + 3].kind == TokKind::Str
            && toks[i + 3].text.is_empty()
            && toks[i + 4].is_punct(')')
            && !ctx.in_test_code(toks[i + 1].line)
        {
            ctx.emit(
                out,
                "L003",
                toks[i + 1].line,
                "`expect(\"\")` with an empty message — state the violated invariant".to_string(),
            );
        }
    }
}

/// L004: crate roots must carry both `#![forbid(unsafe_code)]` and
/// `#![deny(missing_docs)]`.
fn rule_l004(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    if !ctx.input.crate_root {
        return;
    }
    for (attr, arg) in [("forbid", "unsafe_code"), ("deny", "missing_docs")] {
        if !has_inner_attr(ctx.toks, attr, arg) {
            ctx.emit(
                out,
                "L004",
                1,
                format!("crate root is missing `#![{attr}({arg})]`"),
            );
        }
    }
}

fn has_inner_attr(toks: &[Tok], attr: &str, arg: &str) -> bool {
    toks.windows(7).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(attr)
            && w[4].is_punct('(')
            && w[5].is_ident(arg)
            && w[6].is_punct(')')
    })
}

const OBSERVER_METHODS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "span_start",
    "span_end",
    "event",
    "progress",
];

const SPAN_CONSTRUCTORS: &[&str] = &["enter", "enter_with", "enter_under"];

/// L005: every telemetry name literal must appear in the registry.
fn rule_l005(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        // `.counter("name", …)` and the other Observer methods.
        if i + 3 < toks.len()
            && toks[i].is_punct('.')
            && OBSERVER_METHODS.iter().any(|m| toks[i + 1].is_ident(m))
            && toks[i + 2].is_punct('(')
            && toks[i + 3].kind == TokKind::Str
        {
            check_name(ctx, out, &toks[i + 3]);
        }
        // `Span::enter(obs, "name")` and its `enter_with` / `enter_under`
        // variants — the name is the first string literal inside the call.
        if i + 4 < toks.len()
            && toks[i].is_ident("Span")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && SPAN_CONSTRUCTORS.iter().any(|m| toks[i + 3].is_ident(m))
            && toks[i + 4].is_punct('(')
        {
            if let Some(name_tok) = toks[i + 5..]
                .iter()
                .take(12)
                .take_while(|t| !t.is_punct(')'))
                .find(|t| t.kind == TokKind::Str)
            {
                check_name(ctx, out, name_tok);
            }
        }
    }
}

fn check_name(ctx: &Ctx<'_>, out: &mut Vec<Finding>, name_tok: &Tok) {
    if !ctx.lintable(name_tok.line) {
        return;
    }
    if !ctx.names.iter().any(|n| *n == name_tok.text) {
        ctx.emit(
            out,
            "L005",
            name_tok.line,
            format!(
                "telemetry name \"{}\" is not registered in `telemetry::names::NAMES` — \
                 typo'd names produce silently empty time series",
                name_tok.text
            ),
        );
    }
}

const FORMAT_MACROS: &[&str] = &[
    "format", "write", "writeln", "print", "println", "eprint", "eprintln",
];

/// L006: a `format!`-family call whose literal looks like JSON (contains
/// a `":` key separator) and whose arguments show float evidence
/// (`as f64`, `.as_f64()`, a float literal, `f64::`/`f32::`). Float
/// text must go through the canonical `Json` encoder so `1` vs `1.0`
/// never depends on the call site.
fn rule_l006(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident
            && FORMAT_MACROS.iter().any(|m| toks[i].is_ident(m))
            && i + 2 < toks.len()
            && toks[i + 1].is_punct('!')
            && toks[i + 2].is_punct('('))
        {
            continue;
        }
        let Some(close) = matching(toks, i + 2, '(', ')') else {
            continue;
        };
        let call = &toks[i + 3..close];
        let Some(fmt) = call.iter().find(|t| t.kind == TokKind::Str) else {
            continue;
        };
        if !fmt.text.contains("\":") {
            continue;
        }
        let float_evidence = call
            .windows(2)
            .any(|w| w[0].is_ident("as") && (w[1].is_ident("f64") || w[1].is_ident("f32")))
            || call.iter().any(|t| {
                t.is_ident("as_f64")
                    || t.is_ident("as_f32")
                    || (t.kind == TokKind::Num && t.text.contains('.'))
            })
            || call.windows(3).any(|w| {
                (w[0].is_ident("f64") || w[0].is_ident("f32"))
                    && w[1].is_punct(':')
                    && w[2].is_punct(':')
            });
        if float_evidence && ctx.lintable(fmt.line) {
            ctx.emit(
                out,
                "L006",
                fmt.line,
                "float formatted into JSON text with `{}`/`{:?}` — route it through the \
                 canonical `Json` encoder so float rendering is defined in exactly one place"
                    .to_string(),
            );
        }
    }
}
