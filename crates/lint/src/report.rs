//! Aggregated lint results and their machine-readable JSON form.
//!
//! The report renders through the workspace's own hand-rolled
//! [`Json`] encoder — the same one the experiment records use — and is
//! canonicalized before rendering, so two lint runs over the same tree
//! are byte-identical.

use layered_core::telemetry::json::Json;

use crate::graph::GraphStats;
use crate::rules::{Finding, Severity, SuppressedFinding, RULES};

/// The outcome of linting a whole workspace.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Suppressed findings, sorted by (file, line, rule).
    pub suppressed: Vec<SuppressedFinding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Call-graph census from the whole-program tier (`--graph-stats`);
    /// `None` when only the token tier ran.
    pub graph: Option<GraphStats>,
}

impl Report {
    /// Whether the tree is lint-clean (no unsuppressed findings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Sorts findings and suppressions into the canonical report order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.suppressed.sort_by(|a, b| {
            (&a.finding.file, a.finding.line, a.finding.rule).cmp(&(
                &b.finding.file,
                b.finding.line,
                b.finding.rule,
            ))
        });
    }

    /// The report as one canonical JSON document:
    ///
    /// ```text
    /// {"files_scanned":N,
    ///  "findings":[{"file":…,"line":…,"message":…,"rule":…,"severity":…}],
    ///  "rules":{"L001":{"findings":0,"suppressed":2,"summary":…}, …},
    ///  "suppressed":[{"file":…,"line":…,"reason":…,"rule":…}],
    ///  "tool":"layered-lint"}
    /// ```
    #[must_use]
    pub fn to_json(&self) -> Json {
        let findings = Json::Array(
            self.findings
                .iter()
                .map(|f| {
                    Json::Object(vec![
                        ("rule".into(), Json::from(f.rule)),
                        ("severity".into(), Json::from(f.severity.as_str())),
                        ("file".into(), Json::String(f.file.clone())),
                        ("line".into(), Json::from(u64::from(f.line))),
                        ("message".into(), Json::String(f.message.clone())),
                    ])
                })
                .collect(),
        );
        let suppressed = Json::Array(
            self.suppressed
                .iter()
                .map(|s| {
                    Json::Object(vec![
                        ("rule".into(), Json::from(s.finding.rule)),
                        ("file".into(), Json::String(s.finding.file.clone())),
                        ("line".into(), Json::from(u64::from(s.finding.line))),
                        ("reason".into(), Json::String(s.reason.clone())),
                    ])
                })
                .collect(),
        );
        let rules = Json::Object(
            RULES
                .iter()
                .map(|r| {
                    let n = self.findings.iter().filter(|f| f.rule == r.id).count();
                    let s = self
                        .suppressed
                        .iter()
                        .filter(|f| f.finding.rule == r.id)
                        .count();
                    (
                        r.id.to_string(),
                        Json::Object(vec![
                            ("severity".into(), Json::from(r.severity.as_str())),
                            ("summary".into(), Json::from(r.summary)),
                            ("findings".into(), Json::from(n as u64)),
                            ("suppressed".into(), Json::from(s as u64)),
                        ]),
                    )
                })
                .collect(),
        );
        let mut fields = vec![
            ("tool".into(), Json::from("layered-lint")),
            (
                "files_scanned".into(),
                Json::from(self.files_scanned as u64),
            ),
            ("findings".into(), findings),
            ("suppressed".into(), suppressed),
            ("rules".into(), rules),
        ];
        if let Some(g) = &self.graph {
            fields.push(("graph".into(), graph_json(g)));
        }
        Json::Object(fields).canonicalize()
    }

    /// The report as a SARIF-flavored 2.1.0 document (one run, one
    /// result per finding, suppressions carried as suppressed results),
    /// rendered through the same canonical encoder as everything else.
    ///
    /// The subset emitted is what CI artifact viewers consume: tool
    /// driver with the rule catalog, results with `ruleId`, `level`,
    /// `message.text`, and one physical location each.
    #[must_use]
    pub fn to_sarif(&self) -> Json {
        let rules = Json::Array(
            RULES
                .iter()
                .map(|r| {
                    Json::Object(vec![
                        ("id".into(), Json::from(r.id)),
                        (
                            "shortDescription".into(),
                            Json::Object(vec![("text".into(), Json::from(r.summary))]),
                        ),
                    ])
                })
                .collect(),
        );
        let result = |f: &Finding, suppressed: bool| {
            let mut fields = vec![
                ("ruleId".into(), Json::from(f.rule)),
                (
                    "level".into(),
                    Json::from(match f.severity {
                        Severity::Deny => "error",
                        Severity::Warn => "warning",
                    }),
                ),
                (
                    "message".into(),
                    Json::Object(vec![("text".into(), Json::String(f.message.clone()))]),
                ),
                (
                    "locations".into(),
                    Json::Array(vec![Json::Object(vec![(
                        "physicalLocation".into(),
                        Json::Object(vec![
                            (
                                "artifactLocation".into(),
                                Json::Object(vec![("uri".into(), Json::String(f.file.clone()))]),
                            ),
                            (
                                "region".into(),
                                Json::Object(vec![(
                                    "startLine".into(),
                                    Json::from(u64::from(f.line)),
                                )]),
                            ),
                        ]),
                    )])]),
                ),
            ];
            if suppressed {
                fields.push((
                    "suppressions".into(),
                    Json::Array(vec![Json::Object(vec![(
                        "kind".into(),
                        Json::from("inSource"),
                    )])]),
                ));
            }
            Json::Object(fields)
        };
        let mut results: Vec<Json> = self.findings.iter().map(|f| result(f, false)).collect();
        results.extend(self.suppressed.iter().map(|s| result(&s.finding, true)));
        Json::Object(vec![
            (
                "$schema".into(),
                Json::from("https://json.schemastore.org/sarif-2.1.0.json"),
            ),
            ("version".into(), Json::from("2.1.0")),
            (
                "runs".into(),
                Json::Array(vec![Json::Object(vec![
                    (
                        "tool".into(),
                        Json::Object(vec![(
                            "driver".into(),
                            Json::Object(vec![
                                ("name".into(), Json::from("layered-lint")),
                                ("rules".into(), rules),
                            ]),
                        )]),
                    ),
                    ("results".into(), Json::Array(results)),
                ])]),
            ),
        ])
        .canonicalize()
    }
}

/// The call-graph census as a JSON object (embedded in the report and
/// printed by `--graph-stats`).
fn graph_json(g: &GraphStats) -> Json {
    Json::Object(vec![
        ("files".into(), Json::from(g.files as u64)),
        ("fns".into(), Json::from(g.fns as u64)),
        ("edges".into(), Json::from(g.edges as u64)),
        ("entries".into(), Json::from(g.entries as u64)),
        ("reachable".into(), Json::from(g.reachable as u64)),
        (
            "effects".into(),
            Json::Object(
                g.per_effect
                    .iter()
                    .map(|&(name, local, summary)| {
                        (
                            name.to_string(),
                            Json::Object(vec![
                                ("local".into(), Json::from(local as u64)),
                                ("summary".into(), Json::from(summary as u64)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}
