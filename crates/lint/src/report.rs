//! Aggregated lint results and their machine-readable JSON form.
//!
//! The report renders through the workspace's own hand-rolled
//! [`Json`] encoder — the same one the experiment records use — and is
//! canonicalized before rendering, so two lint runs over the same tree
//! are byte-identical.

use layered_core::telemetry::json::Json;

use crate::rules::{Finding, SuppressedFinding, RULES};

/// The outcome of linting a whole workspace.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Suppressed findings, sorted by (file, line, rule).
    pub suppressed: Vec<SuppressedFinding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree is lint-clean (no unsuppressed findings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Sorts findings and suppressions into the canonical report order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.suppressed.sort_by(|a, b| {
            (&a.finding.file, a.finding.line, a.finding.rule).cmp(&(
                &b.finding.file,
                b.finding.line,
                b.finding.rule,
            ))
        });
    }

    /// The report as one canonical JSON document:
    ///
    /// ```text
    /// {"files_scanned":N,
    ///  "findings":[{"file":…,"line":…,"message":…,"rule":…,"severity":…}],
    ///  "rules":{"L001":{"findings":0,"suppressed":2,"summary":…}, …},
    ///  "suppressed":[{"file":…,"line":…,"reason":…,"rule":…}],
    ///  "tool":"layered-lint"}
    /// ```
    #[must_use]
    pub fn to_json(&self) -> Json {
        let findings = Json::Array(
            self.findings
                .iter()
                .map(|f| {
                    Json::Object(vec![
                        ("rule".into(), Json::from(f.rule)),
                        ("severity".into(), Json::from(f.severity.as_str())),
                        ("file".into(), Json::String(f.file.clone())),
                        ("line".into(), Json::from(u64::from(f.line))),
                        ("message".into(), Json::String(f.message.clone())),
                    ])
                })
                .collect(),
        );
        let suppressed = Json::Array(
            self.suppressed
                .iter()
                .map(|s| {
                    Json::Object(vec![
                        ("rule".into(), Json::from(s.finding.rule)),
                        ("file".into(), Json::String(s.finding.file.clone())),
                        ("line".into(), Json::from(u64::from(s.finding.line))),
                        ("reason".into(), Json::String(s.reason.clone())),
                    ])
                })
                .collect(),
        );
        let rules = Json::Object(
            RULES
                .iter()
                .map(|r| {
                    let n = self.findings.iter().filter(|f| f.rule == r.id).count();
                    let s = self
                        .suppressed
                        .iter()
                        .filter(|f| f.finding.rule == r.id)
                        .count();
                    (
                        r.id.to_string(),
                        Json::Object(vec![
                            ("severity".into(), Json::from(r.severity.as_str())),
                            ("summary".into(), Json::from(r.summary)),
                            ("findings".into(), Json::from(n as u64)),
                            ("suppressed".into(), Json::from(s as u64)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Object(vec![
            ("tool".into(), Json::from("layered-lint")),
            (
                "files_scanned".into(),
                Json::from(self.files_scanned as u64),
            ),
            ("findings".into(), findings),
            ("suppressed".into(), suppressed),
            ("rules".into(), rules),
        ])
        .canonicalize()
    }
}
