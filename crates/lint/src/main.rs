//! The `layered-lint` binary: lint the workspace, print findings, and
//! optionally emit machine-readable reports.
//!
//! ```text
//! layered-lint [--root <dir>] [--json <path>] [--sarif <path>]
//!              [--graph-stats] [--quiet]
//! layered-lint --explain L007
//! ```
//!
//! Exits 0 when the tree is lint-clean (no unsuppressed findings),
//! 1 when findings remain, and 2 on usage or I/O errors.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::io::Write;
use std::path::PathBuf;

use layered_lint::{default_root, lint_workspace, rules};

struct Options {
    root: PathBuf,
    json_path: Option<String>,
    sarif_path: Option<String>,
    graph_stats: bool,
    quiet: bool,
    explain: Option<String>,
}

const USAGE: &str = "usage: layered-lint [--root <dir>] [--json <path>] [--sarif <path>] \
                     [--graph-stats] [--quiet] | --explain <rule>";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: default_root(),
        json_path: None,
        sarif_path: None,
        graph_stats: false,
        quiet: false,
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root requires a path")?);
            }
            "--json" => {
                opts.json_path = Some(args.next().ok_or("--json requires a path")?);
            }
            "--sarif" => {
                opts.sarif_path = Some(args.next().ok_or("--sarif requires a path")?);
            }
            "--graph-stats" => opts.graph_stats = true,
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain requires a rule id")?);
            }
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok(opts)
}

fn write_file(path: &str, rendered: &str) {
    let write = std::fs::File::create(path).and_then(|f| {
        let mut out = std::io::BufWriter::new(f);
        writeln!(out, "{rendered}")?;
        out.flush()
    });
    if let Err(e) = write {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(2);
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    if let Some(id) = &opts.explain {
        match rules::explain(id) {
            Some(prose) => {
                println!("{prose}");
                std::process::exit(0);
            }
            None => {
                eprintln!("error: unknown rule `{id}` (rules are L001..L010)");
                std::process::exit(2);
            }
        }
    }

    let report = lint_workspace(&opts.root);

    if let Some(path) = &opts.json_path {
        write_file(path, &report.to_json().to_string());
        if !opts.quiet {
            println!("Wrote JSON report to {path}.");
        }
    }
    if let Some(path) = &opts.sarif_path {
        write_file(path, &report.to_sarif().to_string());
        if !opts.quiet {
            println!("Wrote SARIF report to {path}.");
        }
    }

    if !opts.quiet {
        for f in &report.findings {
            println!(
                "{}:{}: [{}/{}] {}",
                f.file,
                f.line,
                f.rule,
                f.severity.as_str(),
                f.message
            );
        }
        println!(
            "layered-lint: {} file(s) scanned, {} finding(s), {} suppressed.",
            report.files_scanned,
            report.findings.len(),
            report.suppressed.len()
        );
        if opts.graph_stats {
            if let Some(g) = &report.graph {
                println!(
                    "call graph: {} file(s), {} fn(s), {} edge(s), {} entry point(s), \
                     {} reachable fn(s).",
                    g.files, g.fns, g.edges, g.entries, g.reachable
                );
                for &(name, local, summary) in &g.per_effect {
                    println!("  effect {name}: {local} local site(s), {summary} fn summary(ies)");
                }
            }
        }
    }

    std::process::exit(i32::from(!report.is_clean()));
}
