//! The `layered-lint` binary: lint the workspace, print findings, and
//! optionally emit the machine-readable JSON report.
//!
//! ```text
//! layered-lint [--root <dir>] [--json <path>] [--quiet]
//! ```
//!
//! Exits 0 when the tree is lint-clean (no unsuppressed findings),
//! 1 when findings remain, and 2 on usage or I/O errors.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::io::Write;
use std::path::PathBuf;

use layered_lint::{default_root, lint_workspace};

struct Options {
    root: PathBuf,
    json_path: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: default_root(),
        json_path: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root requires a path")?);
            }
            "--json" => {
                opts.json_path = Some(args.next().ok_or("--json requires a path")?);
            }
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: layered-lint [--root <dir>] [--json <path>] [--quiet]");
            std::process::exit(2);
        }
    };

    let report = lint_workspace(&opts.root);

    if let Some(path) = &opts.json_path {
        let rendered = report.to_json().to_string();
        let write = std::fs::File::create(path).and_then(|f| {
            let mut out = std::io::BufWriter::new(f);
            writeln!(out, "{rendered}")?;
            out.flush()
        });
        if let Err(e) = write {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        }
        if !opts.quiet {
            println!("Wrote JSON report to {path}.");
        }
    }

    if !opts.quiet {
        for f in &report.findings {
            println!(
                "{}:{}: [{}/{}] {}",
                f.file,
                f.line,
                f.rule,
                f.severity.as_str(),
                f.message
            );
        }
        println!(
            "layered-lint: {} file(s) scanned, {} finding(s), {} suppressed.",
            report.files_scanned,
            report.findings.len(),
            report.suppressed.len()
        );
    }

    std::process::exit(i32::from(!report.is_clean()));
}
