//! `layered-lint` — the determinism & contract static-analysis pass.
//!
//! Every engine in this workspace rests on a determinism contract:
//! interned layer scans are bit-identical sequential vs. parallel,
//! quotient scans de-quotient into verifier-clean executions, sim
//! schedules replay bit-for-bit, and `--json` experiment records are
//! byte-stable modulo documented timing fields. This crate guards that
//! contract *statically*: a hand-rolled, offline, dependency-free pass
//! over the workspace sources — a small Rust tokenizer
//! ([`lexer`]) plus a rule engine ([`rules`]) with a catalog of
//! repo-specific lints (L001–L006), reported through the same
//! hand-rolled JSON encoder as the experiment records ([`report`]).
//!
//! Run it as a binary:
//!
//! ```text
//! cargo run -p layered-lint                  # human-readable findings
//! cargo run -p layered-lint -- --json lint.json
//! ```
//!
//! or through the repo-wide assertion test (`tests/repo_clean.rs`),
//! which fails if any unsuppressed finding exists. Findings are waived
//! with inline `// lint:allow(L00x, reason)` comments; suppressions are
//! counted in the report and must carry a reason.
//!
//! See DESIGN.md ("Static analysis & the determinism contract") for the
//! rule catalog and the suppression policy.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod graph;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod wholeprog;

use std::fs;
use std::path::{Path, PathBuf};

use report::Report;
use rules::{check_file, FileInput, FileKind};

/// A workspace source file scheduled for linting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Classification (decides which rules apply).
    pub kind: FileKind,
    /// Whether this is a crate root (`src/lib.rs`).
    pub crate_root: bool,
}

/// Collects every lintable `.rs` file under `root`, in sorted order.
///
/// Scanned trees: the workspace `src/`, `tests/`, `examples/`,
/// `benches/`, and each `crates/<name>/{src,tests,benches,examples}`.
/// `vendor/` (external stand-ins) and `target/` are skipped. The
/// result is sorted by relative path so reports — and therefore the
/// lint's own output — are deterministic regardless of directory
/// enumeration order.
#[must_use]
pub fn workspace_files(root: &Path) -> Vec<SourceFile> {
    let mut files = Vec::new();
    for dir in ["src", "tests", "examples", "benches"] {
        collect(&root.join(dir), root, &mut files);
    }
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            for dir in ["src", "tests", "benches", "examples"] {
                collect(&entry.path().join(dir), root, &mut files);
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    files
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                kind: classify(&rel),
                crate_root: rel.ends_with("src/lib.rs"),
                abs: path,
                rel,
            });
        }
    }
}

/// Classifies a workspace-relative path into a [`FileKind`].
#[must_use]
pub fn classify(rel: &str) -> FileKind {
    if rel.contains("/tests/") || rel.starts_with("tests/") {
        FileKind::Test
    } else if rel.contains("/benches/") || rel.starts_with("benches/") {
        FileKind::Bench
    } else if rel.contains("/examples/") || rel.starts_with("examples/") {
        FileKind::Example
    } else if rel.contains("/bin/") || rel.ends_with("/main.rs") || rel.ends_with("build.rs") {
        FileKind::Bin
    } else {
        FileKind::Library
    }
}

/// Lints a set of in-memory sources — both tiers: the per-file token
/// rules (L001–L006) and the whole-program call-graph rules
/// (L007–L010). Each entry is `(rel path, src)`; classification is
/// derived from the path exactly as for on-disk files.
///
/// This is the engine behind [`lint_workspace`] and the fixture suites'
/// way of exercising multi-file rules without touching disk.
#[must_use]
pub fn lint_sources(sources: &[(String, String)], names: &[&str]) -> Report {
    let mut result = Report::default();
    for (rel, src) in sources {
        let outcome = check_file(
            &FileInput {
                path: rel.clone(),
                kind: classify(rel),
                crate_root: rel.ends_with("src/lib.rs"),
                src,
            },
            names,
        );
        result.findings.extend(outcome.findings);
        result.suppressed.extend(outcome.suppressed);
        result.files_scanned += 1;
    }
    let typed: Vec<(String, FileKind, &str)> = sources
        .iter()
        .map(|(rel, src)| (rel.clone(), classify(rel), src.as_str()))
        .collect();
    let (whole, stats) = wholeprog::check_workspace(&typed, names);
    result.findings.extend(whole.findings);
    result.suppressed.extend(whole.suppressed);
    result.graph = Some(stats);
    result.sort();
    result
}

/// Lints every workspace source under `root` against the full catalog
/// (token rules and call-graph rules), validating telemetry names
/// against the compiled-in [`layered_core::telemetry::names::NAMES`]
/// registry.
#[must_use]
pub fn lint_workspace(root: &Path) -> Report {
    let sources: Vec<(String, String)> = workspace_files(root)
        .into_iter()
        .filter_map(|file| {
            fs::read_to_string(&file.abs)
                .ok()
                .map(|src| (file.rel, src))
        })
        .collect();
    lint_sources(&sources, layered_core::telemetry::names::NAMES)
}

/// Locates the workspace root: `--root`'s value if given, else the
/// lint crate's own manifest directory's grandparent (set by cargo),
/// else the current directory.
#[must_use]
pub fn default_root() -> PathBuf {
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(manifest);
        if let Some(root) = manifest.ancestors().nth(2) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        assert_eq!(classify("crates/core/src/space.rs"), FileKind::Library);
        assert_eq!(classify("crates/core/tests/space_props.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/benches/sim.rs"), FileKind::Bench);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(
            classify("crates/bench/src/bin/experiments.rs"),
            FileKind::Bin
        );
        assert_eq!(classify("tests/interning.rs"), FileKind::Test);
        assert_eq!(classify("src/lib.rs"), FileKind::Library);
    }

    #[test]
    fn workspace_walk_is_sorted_and_finds_crate_roots() {
        let root = default_root();
        let files = workspace_files(&root);
        assert!(!files.is_empty(), "workspace sources under {root:?}");
        let rels: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
        let mut sorted = rels.clone();
        sorted.sort_unstable();
        assert_eq!(rels, sorted, "deterministic file order");
        assert!(files
            .iter()
            .any(|f| f.rel == "crates/lint/src/lib.rs" && f.crate_root));
        assert!(!rels.iter().any(|r| r.contains("vendor/")));
    }
}
