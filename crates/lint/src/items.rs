//! A lightweight item parser on top of the lexer: the symbol table the
//! whole-program rules resolve against.
//!
//! Where the token rules (L001–L006) pattern-match a single file's token
//! stream, the call-graph rules (L007–L010) need to know *what* the
//! workspace defines: which functions exist (and where their bodies
//! are), which `impl` blocks attach them to which types and traits,
//! which struct fields hold unordered hash containers, and how `use`
//! declarations alias names across crates. This module recovers exactly
//! that — and nothing more — from the lossy token stream:
//!
//! * `fn` items with their name, enclosing module path, `impl` context
//!   (self type + trait), visibility, and body token range;
//! * `impl` blocks (`impl Type`, `impl Trait for Type`), generics
//!   stripped;
//! * `trait` blocks, whose provided methods parse like impl methods;
//! * `struct` fields, marked when their declared type mentions an
//!   unordered hash container;
//! * `use` aliases mapping a local name to its full path;
//! * inline `mod name { … }` nesting, composed with the module path the
//!   file's location implies.
//!
//! The parser is approximate in the same documented way the lexer is:
//! no macro expansion, no type inference, and name resolution only good
//! enough for intra-workspace paths. Items under a `#[cfg(test)]`
//! attribute are skipped entirely — test code is exempt from every
//! whole-program rule, so it must not contribute nodes or edges.

use crate::lexer::{lex, matching, Lexed, Suppression, Tok, TokKind};
use crate::rules::FileKind;

/// Rust keywords that can never be a call target or item name. Raw
/// identifiers (`r#type`) keep their `r#` prefix through the lexer, so
/// they never collide with this list.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while",
];

/// Whether `name` is a Rust keyword (see [`KEYWORDS`]).
#[must_use]
pub fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

/// One parsed source file: its tokens, suppressions, and location-derived
/// identity (crate + base module path).
#[derive(Clone, Debug)]
pub struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The file's classification.
    pub kind: FileKind,
    /// The owning crate's *library* name with underscores
    /// (`layered_core`), as it appears in `use` paths.
    pub crate_name: String,
    /// Module path implied by the file's location (`src/space/mod.rs`
    /// → `["space"]`), before any inline `mod` nesting.
    pub base_module: Vec<String>,
    /// The file's token stream.
    pub toks: Vec<Tok>,
    /// The file's `lint:allow` suppression comments.
    pub suppressions: Vec<Suppression>,
}

/// One `fn` item (free, impl method, or trait method).
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// Full module path: the file's base module plus inline `mod`s.
    pub module: Vec<String>,
    /// The `impl`/`trait` type this method belongs to, generics
    /// stripped; `None` for free functions.
    pub self_ty: Option<String>,
    /// The trait implemented by the enclosing `impl Trait for Type`
    /// block (or declared by the enclosing `trait`), if any.
    pub trait_name: Option<String>,
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body *between* its braces (exclusive of
    /// both); `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the item carries a `pub` qualifier.
    pub is_pub: bool,
}

impl FnDef {
    /// Display name: `Type::name` for methods, plain `name` otherwise.
    #[must_use]
    pub fn qualified_name(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `impl` block header.
#[derive(Clone, Debug)]
pub struct ImplDef {
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// The implementing type, generics stripped (`MpModel`).
    pub self_ty: String,
    /// The implemented trait, generics stripped, for
    /// `impl Trait for Type` blocks.
    pub trait_name: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// One named struct field.
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// The declaring struct's name.
    pub struct_name: String,
    /// The field's name.
    pub name: String,
    /// Whether the declared type mentions an unordered hash container
    /// (`HashMap`/`HashSet`/`FxHashMap`/`FxHashSet`).
    pub unordered: bool,
    /// 1-based line of the field name.
    pub line: u32,
}

/// One `use` alias: the local name a `use` declaration introduces, and
/// the full path it stands for.
#[derive(Clone, Debug)]
pub struct UseDef {
    /// Index of the declaring file in [`Workspace::files`].
    pub file: usize,
    /// The local name (the path's last segment, or the `as` rename).
    pub alias: String,
    /// Full path segments, leading `crate`/`self`/`super` kept verbatim.
    pub path: Vec<String>,
}

/// The parsed workspace: every library/binary file's items, indexed for
/// the call-graph pass.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Parsed files, in the deterministic walk order.
    pub files: Vec<ParsedFile>,
    /// Every `fn` item, in file-then-token order.
    pub fns: Vec<FnDef>,
    /// Every `impl` block header.
    pub impls: Vec<ImplDef>,
    /// Every named struct field.
    pub fields: Vec<FieldDef>,
    /// Every `use` alias.
    pub uses: Vec<UseDef>,
}

impl Workspace {
    /// Parses a set of sources. Each entry is `(rel path, kind, src)`;
    /// only [`FileKind::Library`] and [`FileKind::Bin`] files contribute
    /// items (tests, benches and examples are exempt from the
    /// whole-program rules by construction).
    #[must_use]
    pub fn parse(sources: &[(String, FileKind, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for (rel, kind, src) in sources {
            if !matches!(kind, FileKind::Library | FileKind::Bin) {
                continue;
            }
            let Lexed { toks, suppressions } = lex(src);
            let file_idx = ws.files.len();
            ws.files.push(ParsedFile {
                rel: rel.clone(),
                kind: *kind,
                crate_name: crate_name_of(rel),
                base_module: base_module_of(rel),
                toks,
                suppressions,
            });
            let file = ws.files[file_idx].clone();
            let mut p = Parser {
                ws: &mut ws,
                file: file_idx,
                toks: &file.toks,
            };
            let module = file.base_module.clone();
            p.items(0, file.toks.len(), &module, None);
        }
        ws
    }

    /// The functions defined in `file`, in token order.
    pub fn fns_in_file(&self, file: usize) -> impl Iterator<Item = (usize, &FnDef)> {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.file == file)
    }
}

/// The crate's library name (underscored, as it appears in paths) from a
/// workspace-relative file path: `crates/core/…` → `layered_core`, the
/// root `src/…` → `layered_consensus`.
#[must_use]
pub fn crate_name_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((dir, _)) = rest.split_once('/') {
            return format!("layered_{}", dir.replace('-', "_"));
        }
    }
    "layered_consensus".to_string()
}

/// The module path a file's location implies: `src/space/mod.rs` →
/// `["space"]`, `src/space/pack.rs` → `["space", "pack"]`, crate roots
/// and binaries → `[]`.
#[must_use]
pub fn base_module_of(rel: &str) -> Vec<String> {
    let after_src = match rel.find("src/") {
        Some(i) => &rel[i + 4..],
        None => rel,
    };
    let mut segs: Vec<String> = after_src.split('/').map(str::to_string).collect();
    let last = segs.pop().unwrap_or_default();
    match last.as_str() {
        "lib.rs" | "main.rs" | "mod.rs" => {}
        other => {
            if let Some(stem) = other.strip_suffix(".rs") {
                segs.push(stem.to_string());
            }
        }
    }
    // `src/bin/<name>.rs` binaries are their own roots, not modules.
    if segs.first().is_some_and(|s| s == "bin") {
        return Vec::new();
    }
    segs
}

/// The enclosing `impl`/`trait` context while parsing.
#[derive(Clone, Debug)]
struct ImplCtx {
    self_ty: Option<String>,
    trait_name: Option<String>,
}

struct Parser<'a> {
    ws: &'a mut Workspace,
    file: usize,
    toks: &'a [Tok],
}

impl Parser<'_> {
    /// Scans `[start, end)` for items, in module `module`, inside the
    /// given `impl`/`trait` context.
    fn items(&mut self, start: usize, end: usize, module: &[String], ctx: Option<&ImplCtx>) {
        let toks = self.toks;
        let mut i = start;
        let mut pending_pub = false;
        let mut skip_next_item = false; // set by #[cfg(test)]
        while i < end {
            let t = &toks[i];
            // Attributes: record #[cfg(test)], then skip the attribute.
            if t.is_punct('#')
                && i + 1 < end
                && (toks[i + 1].is_punct('[') || toks[i + 1].is_punct('!'))
            {
                let open = if toks[i + 1].is_punct('[') {
                    i + 1
                } else {
                    i + 2
                };
                let Some(close) = matching(toks, open, '[', ']') else {
                    return; // unbalanced — degrade gracefully
                };
                let attr = &toks[open + 1..close];
                let is_cfg_test = attr.iter().any(|t| t.is_ident("cfg"))
                    && attr.iter().any(|t| t.is_ident("test"))
                    && !attr.iter().any(|t| t.is_ident("not"));
                skip_next_item = skip_next_item || is_cfg_test;
                i = close + 1;
                continue;
            }
            if t.is_ident("pub") {
                pending_pub = true;
                // Skip a `pub(crate)` / `pub(in path)` qualifier.
                if i + 1 < end && toks[i + 1].is_punct('(') {
                    match matching(toks, i + 1, '(', ')') {
                        Some(close) => i = close + 1,
                        None => return,
                    }
                } else {
                    i += 1;
                }
                continue;
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "mod" => {
                        i = self.module(i, end, module, skip_next_item);
                        (pending_pub, skip_next_item) = (false, false);
                        continue;
                    }
                    "fn" => {
                        i = self.function(i, end, module, ctx, pending_pub, skip_next_item);
                        (pending_pub, skip_next_item) = (false, false);
                        continue;
                    }
                    "impl" => {
                        i = self.impl_block(i, end, module, skip_next_item);
                        (pending_pub, skip_next_item) = (false, false);
                        continue;
                    }
                    "trait" => {
                        i = self.trait_block(i, end, module, skip_next_item);
                        (pending_pub, skip_next_item) = (false, false);
                        continue;
                    }
                    "struct" => {
                        i = self.struct_item(i, end, skip_next_item);
                        (pending_pub, skip_next_item) = (false, false);
                        continue;
                    }
                    "use" => {
                        i = self.use_item(i, end, skip_next_item);
                        (pending_pub, skip_next_item) = (false, false);
                        continue;
                    }
                    "macro_rules" => {
                        // `macro_rules! name { … }` — arbitrary token soup;
                        // skip the whole definition.
                        i = skip_to_block_end(toks, i, end);
                        (pending_pub, skip_next_item) = (false, false);
                        continue;
                    }
                    _ => {}
                }
            }
            // Qualifiers like `unsafe fn` / `async fn` / `const fn` keep
            // both flags alive; any other token attaches whatever came
            // before to itself, clearing them.
            let is_qualifier = t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "unsafe" | "async" | "const" | "extern" | "default"
                );
            if !is_qualifier {
                pending_pub = false;
                skip_next_item = false;
            }
            i += 1;
        }
    }

    /// Parses `mod name { … }` (recursing) or `mod name;` (skipping).
    /// Returns the index after the item.
    fn module(&mut self, at: usize, end: usize, module: &[String], skip: bool) -> usize {
        let toks = self.toks;
        let Some(name_tok) = toks.get(at + 1).filter(|t| t.kind == TokKind::Ident) else {
            return at + 1;
        };
        let name = name_tok.text.clone();
        let mut j = at + 2;
        while j < end && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            j += 1;
        }
        if j >= end || toks[j].is_punct(';') {
            return j + 1;
        }
        let Some(close) = matching(toks, j, '{', '}') else {
            return end;
        };
        if !skip {
            let mut inner = module.to_vec();
            inner.push(name);
            self.items(j + 1, close, &inner, None);
        }
        close + 1
    }

    /// Parses one `fn` item; returns the index after it.
    #[allow(clippy::too_many_arguments)]
    fn function(
        &mut self,
        at: usize,
        end: usize,
        module: &[String],
        ctx: Option<&ImplCtx>,
        is_pub: bool,
        skip: bool,
    ) -> usize {
        let toks = self.toks;
        // `fn` must head an item: the next token is the name. (In a
        // fn-pointer type the next token is `(`.)
        let Some(name_tok) = toks.get(at + 1).filter(|t| t.kind == TokKind::Ident) else {
            return at + 1;
        };
        let name = name_tok.text.clone();
        let line = toks[at].line;
        // Skip generics between the name and the parameter list.
        let mut j = at + 2;
        if j < end && toks[j].is_punct('<') {
            let mut depth = 0i32;
            while j < end {
                if toks[j].is_punct('<') {
                    depth += 1;
                } else if toks[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if j >= end || !toks[j].is_punct('(') {
            return at + 1;
        }
        let Some(params_close) = matching(toks, j, '(', ')') else {
            return end;
        };
        // Return type and where clause: scan to the body `{` or the `;`
        // of a bodyless trait method. `->` and `where` never contain
        // braces in this workspace's surface syntax.
        let mut k = params_close + 1;
        while k < end && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
            k += 1;
        }
        if k >= end {
            return end;
        }
        if toks[k].is_punct(';') {
            if !skip {
                self.push_fn(module, ctx, name, line, None, is_pub);
            }
            return k + 1;
        }
        let Some(close) = matching(toks, k, '{', '}') else {
            return end;
        };
        if !skip {
            self.push_fn(module, ctx, name, line, Some((k + 1, close)), is_pub);
            // Nested items (fns, impls) inside the body become their own
            // defs; the graph pass subtracts their ranges from this body.
            self.items(k + 1, close, module, None);
        }
        close + 1
    }

    fn push_fn(
        &mut self,
        module: &[String],
        ctx: Option<&ImplCtx>,
        name: String,
        line: u32,
        body: Option<(usize, usize)>,
        is_pub: bool,
    ) {
        self.ws.fns.push(FnDef {
            file: self.file,
            module: module.to_vec(),
            self_ty: ctx.and_then(|c| c.self_ty.clone()),
            trait_name: ctx.and_then(|c| c.trait_name.clone()),
            name,
            line,
            body,
            is_pub,
        });
    }

    /// Parses an `impl` block header and recurses into its body.
    fn impl_block(&mut self, at: usize, end: usize, module: &[String], skip: bool) -> usize {
        let toks = self.toks;
        let line = toks[at].line;
        // Skip the generic parameter list directly after `impl`.
        let mut j = at + 1;
        if j < end && toks[j].is_punct('<') {
            let mut depth = 0i32;
            while j < end {
                if toks[j].is_punct('<') {
                    depth += 1;
                } else if toks[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Header: tokens up to the `{`.
        let header_start = j;
        while j < end && !toks[j].is_punct('{') {
            j += 1;
        }
        if j >= end {
            return end;
        }
        let header = &toks[header_start..j];
        let (self_ty, trait_name) = parse_impl_header(header);
        let Some(close) = matching(toks, j, '{', '}') else {
            return end;
        };
        if !skip {
            if let Some(self_ty) = self_ty {
                self.ws.impls.push(ImplDef {
                    file: self.file,
                    self_ty: self_ty.clone(),
                    trait_name: trait_name.clone(),
                    line,
                });
                let ctx = ImplCtx {
                    self_ty: Some(self_ty),
                    trait_name,
                };
                self.items(j + 1, close, module, Some(&ctx));
            }
        }
        close + 1
    }

    /// Parses a `trait` block; provided methods parse with the trait as
    /// their self type.
    fn trait_block(&mut self, at: usize, end: usize, module: &[String], skip: bool) -> usize {
        let toks = self.toks;
        let Some(name_tok) = toks.get(at + 1).filter(|t| t.kind == TokKind::Ident) else {
            return at + 1;
        };
        let name = name_tok.text.clone();
        let mut j = at + 2;
        while j < end && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            j += 1;
        }
        if j >= end || toks[j].is_punct(';') {
            return j + 1;
        }
        let Some(close) = matching(toks, j, '{', '}') else {
            return end;
        };
        if !skip {
            let ctx = ImplCtx {
                self_ty: Some(name.clone()),
                trait_name: Some(name),
            };
            self.items(j + 1, close, module, Some(&ctx));
        }
        close + 1
    }

    /// Parses a `struct` item, recording named fields.
    fn struct_item(&mut self, at: usize, end: usize, skip: bool) -> usize {
        let toks = self.toks;
        let Some(name_tok) = toks.get(at + 1).filter(|t| t.kind == TokKind::Ident) else {
            return at + 1;
        };
        let struct_name = name_tok.text.clone();
        let mut j = at + 2;
        // Find the field block, the tuple parens, or the unit `;` —
        // skipping generics and where clauses.
        while j < end && !toks[j].is_punct('{') && !toks[j].is_punct(';') && !toks[j].is_punct('(')
        {
            j += 1;
        }
        if j >= end {
            return end;
        }
        if toks[j].is_punct(';') {
            return j + 1;
        }
        if toks[j].is_punct('(') {
            // Tuple struct: no named fields to record.
            return matching(toks, j, '(', ')').map_or(end, |c| c + 1);
        }
        let Some(close) = matching(toks, j, '{', '}') else {
            return end;
        };
        if !skip {
            self.struct_fields(&struct_name, j + 1, close);
        }
        close + 1
    }

    /// Records the named fields of `struct_name` declared in `[start,
    /// end)` (the token range between the struct's braces).
    fn struct_fields(&mut self, struct_name: &str, start: usize, end: usize) {
        let toks = self.toks;
        let mut i = start;
        while i < end {
            // Skip attributes and visibility.
            if toks[i].is_punct('#') && i + 1 < end && toks[i + 1].is_punct('[') {
                match matching(toks, i + 1, '[', ']') {
                    Some(c) => i = c + 1,
                    None => return,
                }
                continue;
            }
            if toks[i].is_ident("pub") {
                if i + 1 < end && toks[i + 1].is_punct('(') {
                    match matching(toks, i + 1, '(', ')') {
                        Some(c) => i = c + 1,
                        None => return,
                    }
                } else {
                    i += 1;
                }
                continue;
            }
            // `name : type-tokens ,` at nesting depth 0.
            if toks[i].kind == TokKind::Ident
                && i + 1 < end
                && toks[i + 1].is_punct(':')
                && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                let name = toks[i].text.clone();
                let line = toks[i].line;
                // Scan the type until a comma at depth 0.
                let mut depth = 0i32;
                let mut j = i + 2;
                let mut unordered = false;
                while j < end {
                    let t = &toks[j];
                    if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if t.is_punct(',') && depth <= 0 {
                        break;
                    }
                    if t.kind == TokKind::Ident
                        && crate::rules::UNORDERED_TYPES.iter().any(|u| t.is_ident(u))
                    {
                        unordered = true;
                    }
                    j += 1;
                }
                self.ws.fields.push(FieldDef {
                    file: self.file,
                    struct_name: struct_name.to_string(),
                    name,
                    unordered,
                    line,
                });
                i = j + 1;
                continue;
            }
            i += 1;
        }
    }

    /// Parses a `use` declaration into [`UseDef`] aliases.
    fn use_item(&mut self, at: usize, end: usize, skip: bool) -> usize {
        let toks = self.toks;
        // Find the terminating `;`, tracking brace groups.
        let mut j = at + 1;
        let mut depth = 0i32;
        while j < end {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
            } else if toks[j].is_punct(';') && depth <= 0 {
                break;
            }
            j += 1;
        }
        if !skip {
            let body = &toks[at + 1..j.min(end)];
            let mut prefix = Vec::new();
            let file = self.file;
            collect_uses(body, &mut prefix, &mut |alias, path| {
                self.ws.uses.push(UseDef { file, alias, path });
            });
        }
        j + 1
    }
}

/// Recursively flattens a `use` tree (`a::b::{c, d as e}`) into
/// `(alias, full path)` pairs. Glob imports (`::*`) are dropped — the
/// call-graph pass falls back to name-only resolution anyway.
fn collect_uses(toks: &[Tok], prefix: &mut Vec<String>, out: &mut impl FnMut(String, Vec<String>)) {
    let depth_before = prefix.len();
    let mut i = 0;
    let mut segs: Vec<String> = Vec::new();
    let flush = |segs: &mut Vec<String>,
                 prefix: &[String],
                 out: &mut dyn FnMut(String, Vec<String>),
                 alias: Option<String>| {
        if segs.is_empty() {
            return;
        }
        let mut path: Vec<String> = prefix.to_vec();
        path.extend(segs.iter().cloned());
        let name = alias.unwrap_or_else(|| segs[segs.len() - 1].clone());
        if name != "*" {
            out(name, path);
        }
        segs.clear();
    };
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && !t.is_ident("as") {
            segs.push(t.text.clone());
            i += 1;
        } else if t.is_punct('*') {
            segs.push("*".to_string());
            i += 1;
        } else if t.is_punct(':') {
            i += 1; // path separator (two `:` tokens)
        } else if t.is_ident("as") {
            let alias = toks
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
            flush(&mut segs, prefix, out, alias);
            i += 2;
        } else if t.is_punct(',') {
            flush(&mut segs, prefix, out, None);
            i += 1;
        } else if t.is_punct('{') {
            let Some(close) = matching(toks, i, '{', '}') else {
                return;
            };
            prefix.append(&mut segs);
            collect_uses(&toks[i + 1..close], prefix, out);
            prefix.truncate(depth_before);
            i = close + 1;
        } else {
            i += 1;
        }
    }
    flush(&mut segs, prefix, out, None);
}

/// Splits an `impl` header (the tokens between `impl<…>` and `{`) into
/// `(self type, trait name)`, both with generics stripped.
fn parse_impl_header(header: &[Tok]) -> (Option<String>, Option<String>) {
    // Split on a top-level `for` (angle-depth 0): trait before, type
    // after. `for<'a>` higher-ranked binders don't occur at depth 0 in
    // impl headers in this workspace.
    let mut depth = 0i32;
    let mut for_at: Option<usize> = None;
    for (i, t) in header.iter().enumerate() {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("for") {
            for_at = Some(i);
            break;
        } else if depth == 0 && t.is_ident("where") {
            break;
        }
    }
    let last_path_seg = |toks: &[Tok]| -> Option<String> {
        let mut depth = 0i32;
        let mut last = None;
        for t in toks {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
            } else if depth == 0 && t.kind == TokKind::Ident && !is_keyword(&t.text) {
                last = Some(t.text.clone());
            } else if depth == 0 && t.is_ident("where") {
                break;
            }
        }
        last
    };
    let first_type_name = |toks: &[Tok]| -> Option<String> {
        let mut depth = 0i32;
        for t in toks {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
            } else if depth == 0
                && t.kind == TokKind::Ident
                && !matches!(t.text.as_str(), "dyn" | "mut")
                && !is_keyword(&t.text)
            {
                return Some(t.text.clone());
            }
        }
        None
    };
    match for_at {
        Some(f) => (
            first_type_name(&header[f + 1..]),
            last_path_seg(&header[..f]),
        ),
        None => (first_type_name(header), None),
    }
}

/// Skips a `name ! ident? { … }`-shaped block starting at `at`; returns
/// the index after the closing brace (or `end`).
fn skip_to_block_end(toks: &[Tok], at: usize, end: usize) -> usize {
    let mut j = at;
    while j < end && !toks[j].is_punct('{') {
        j += 1;
    }
    if j >= end {
        return end;
    }
    matching(toks, j, '{', '}').map_or(end, |c| c + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(rel: &str, src: &str) -> Workspace {
        Workspace::parse(&[(rel.to_string(), FileKind::Library, src)])
    }

    #[test]
    fn crate_and_module_paths_from_layout() {
        assert_eq!(
            crate_name_of("crates/core/src/space/mod.rs"),
            "layered_core"
        );
        assert_eq!(
            crate_name_of("crates/async-mp/src/model.rs"),
            "layered_async_mp"
        );
        assert_eq!(crate_name_of("src/lib.rs"), "layered_consensus");
        assert_eq!(
            base_module_of("crates/core/src/space/mod.rs"),
            vec!["space"]
        );
        assert_eq!(
            base_module_of("crates/core/src/space/pack.rs"),
            vec!["space", "pack"]
        );
        assert!(base_module_of("crates/core/src/lib.rs").is_empty());
        assert!(base_module_of("crates/bench/src/bin/experiments.rs").is_empty());
    }

    #[test]
    fn free_fns_methods_and_traits_parse() {
        let ws = parse_one(
            "crates/x/src/lib.rs",
            "pub fn free() { helper(); }\n\
             fn helper() {}\n\
             struct T { field: u32 }\n\
             impl T { pub fn method(&self) {} }\n\
             trait Tr { fn provided(&self) { self.required(); } fn required(&self); }\n\
             impl Tr for T { fn required(&self) {} }",
        );
        let names: Vec<(String, Option<String>, Option<String>)> = ws
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_ty.clone(), f.trait_name.clone()))
            .collect();
        assert!(names.contains(&("free".into(), None, None)));
        assert!(names.contains(&("helper".into(), None, None)));
        assert!(names.contains(&("method".into(), Some("T".into()), None)));
        assert!(names.contains(&("provided".into(), Some("Tr".into()), Some("Tr".into()))));
        assert!(names.contains(&("required".into(), Some("T".into()), Some("Tr".into()))));
        let free = ws.fns.iter().find(|f| f.name == "free").unwrap();
        assert!(free.is_pub);
        assert!(free.body.is_some());
        let required_decl = ws
            .fns
            .iter()
            .find(|f| f.name == "required" && f.self_ty.as_deref() == Some("Tr"))
            .unwrap();
        assert!(required_decl.body.is_none(), "bodyless trait method");
    }

    #[test]
    fn impl_headers_strip_generics() {
        let ws = parse_one(
            "crates/x/src/lib.rs",
            "impl<P: Proto> SimModel for MpModel<P> { fn moves(&self) {} }\n\
             impl<S> Space<S> where S: Clone { fn len(&self) -> usize { 0 } }",
        );
        assert_eq!(ws.impls.len(), 2);
        assert_eq!(ws.impls[0].self_ty, "MpModel");
        assert_eq!(ws.impls[0].trait_name.as_deref(), Some("SimModel"));
        assert_eq!(ws.impls[1].self_ty, "Space");
        assert_eq!(ws.impls[1].trait_name, None);
        let len = ws.fns.iter().find(|f| f.name == "len").unwrap();
        assert_eq!(len.self_ty.as_deref(), Some("Space"));
    }

    #[test]
    fn inline_mods_extend_the_module_path() {
        let ws = parse_one(
            "crates/core/src/space/mod.rs",
            "pub fn outer() {}\nmod inner { pub fn nested() {} }",
        );
        let outer = ws.fns.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!(outer.module, vec!["space"]);
        let nested = ws.fns.iter().find(|f| f.name == "nested").unwrap();
        assert_eq!(nested.module, vec!["space", "inner"]);
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let ws = parse_one(
            "crates/x/src/lib.rs",
            "pub fn real() {}\n#[cfg(test)]\nmod tests { fn test_helper() {} }\n\
             #[cfg(test)] fn lone_test_fn() {}\npub fn also_real() {}",
        );
        let names: Vec<&str> = ws.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real", "also_real"]);
    }

    #[test]
    fn struct_fields_mark_unordered_containers() {
        let ws = parse_one(
            "crates/x/src/lib.rs",
            "struct Shard { buckets: FxHashMap<u64, Vec<u32>>, pending: Vec<(u64, u32)> }",
        );
        let buckets = ws.fields.iter().find(|f| f.name == "buckets").unwrap();
        assert!(buckets.unordered);
        assert_eq!(buckets.struct_name, "Shard");
        let pending = ws.fields.iter().find(|f| f.name == "pending").unwrap();
        assert!(!pending.unordered, "Vec fields are ordered");
    }

    #[test]
    fn use_trees_flatten_to_aliases() {
        let ws = parse_one(
            "crates/x/src/lib.rs",
            "use layered_core::space::{StateSpace, snapshot::SnapshotState};\n\
             use layered_core::telemetry::json::Json as J;\nuse std::collections::*;",
        );
        let find = |alias: &str| ws.uses.iter().find(|u| u.alias == alias);
        assert_eq!(
            find("StateSpace").unwrap().path,
            vec!["layered_core", "space", "StateSpace"]
        );
        assert_eq!(
            find("SnapshotState").unwrap().path,
            vec!["layered_core", "space", "snapshot", "SnapshotState"]
        );
        assert_eq!(
            find("J").unwrap().path,
            vec!["layered_core", "telemetry", "json", "Json"]
        );
        assert!(find("*").is_none(), "globs are dropped");
    }

    #[test]
    fn raw_identifier_fns_parse_without_phantom_keywords() {
        let ws = parse_one(
            "crates/x/src/lib.rs",
            "pub fn r#type() {}\npub fn caller() { r#type(); }",
        );
        let names: Vec<&str> = ws.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["r#type", "caller"]);
    }

    #[test]
    fn nested_fns_become_their_own_defs() {
        let ws = parse_one(
            "crates/x/src/lib.rs",
            "pub fn outer() { fn inner() {} inner(); }",
        );
        let names: Vec<&str> = ws.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"outer"));
        assert!(names.contains(&"inner"));
    }
}
