//! Round-trip: every recorded schedule must survive the JSON wire format —
//! `Schedule::from_json(to_json_full(s)) == s` in all four model families,
//! with `decode_move` rejecting records that are not legal for the model.

use layered_async_mp::MpModel;
use layered_async_sm::SmModel;
use layered_core::telemetry::json::Json;
use layered_core::SimModel;
use layered_protocols::{FloodMin, MpFloodMin, SmFloodMin};
use layered_sim::{RandomAdversary, Schedule, ScheduleJsonError, SimConfig, Simulator};
use layered_sync_crash::CrashModel;
use layered_sync_mobile::MobileModel;

/// Every run in the batch round-trips through the canonical JSON text.
fn assert_round_trips<M: SimModel>(model: &M, seed: u64) {
    let sim = Simulator::new(model);
    let config = SimConfig::new(seed, 12, 4);
    for run in sim.run_many(&config, || RandomAdversary) {
        let text = run.schedule.to_json_full(model).canonicalize().to_string();
        let parsed = Json::parse(&text).expect("valid json");
        let back = Schedule::from_json(model, &parsed).expect("decodable");
        assert_eq!(back, run.schedule, "schedule JSON round-trip changed it");
        assert_eq!(
            back.replay(model).states(),
            run.schedule.replay(model).states(),
            "replays diverge after round-trip"
        );
    }
}

#[test]
fn mobile_schedules_round_trip() {
    assert_round_trips(&MobileModel::new(3, FloodMin::new(2)), 101);
}

#[test]
fn crash_schedules_round_trip() {
    assert_round_trips(&CrashModel::new(3, 1, FloodMin::new(3)), 202);
}

#[test]
fn sm_schedules_round_trip() {
    assert_round_trips(&SmModel::new(3, SmFloodMin::new(2)), 303);
}

#[test]
fn mp_schedules_round_trip() {
    assert_round_trips(&MpModel::new(3, MpFloodMin::new(2)), 404);
}

#[test]
fn illegal_moves_are_rejected() {
    let model = MobileModel::new(3, FloodMin::new(2));
    // j out of range for n = 3.
    let text =
        r#"{"inputs":[0,1,1],"moves":[{"args":[7,1],"fault":true,"kind":"omit"}],"seed":"05"}"#;
    let parsed = Json::parse(text).expect("valid json");
    assert_eq!(
        Schedule::<layered_sync_mobile::MobileMove>::from_json(&model, &parsed),
        Err(ScheduleJsonError::BadMove { index: 0 })
    );
    // Unknown kind.
    let text =
        r#"{"inputs":[0,1,1],"moves":[{"args":[],"fault":false,"kind":"warp"}],"seed":"05"}"#;
    let parsed = Json::parse(text).expect("valid json");
    assert_eq!(
        Schedule::<layered_sync_mobile::MobileMove>::from_json(&model, &parsed),
        Err(ScheduleJsonError::BadMove { index: 0 })
    );
    // Wrong input arity.
    let text = r#"{"inputs":[0,1],"moves":[],"seed":"05"}"#;
    let parsed = Json::parse(text).expect("valid json");
    assert!(matches!(
        Schedule::<layered_sync_mobile::MobileMove>::from_json(&model, &parsed),
        Err(ScheduleJsonError::Malformed(_))
    ));
}
