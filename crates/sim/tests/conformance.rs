//! Acceptance: on small instances, every simulated run must be accepted by
//! the exhaustive checker's transition relation — each recorded schedule
//! replays to an [`ExecutionTrace`] that `validate` roots in an initial
//! state and matches step-by-step against `LayeredModel::successors`.

use layered_async_mp::MpModel;
use layered_async_sm::SmModel;
use layered_core::Pid;
use layered_core::{ExecutionTrace, SimModel};
use layered_protocols::{FloodMin, MpFloodMin, SmFloodMin};
use layered_sim::{
    Adversary, CrashAtRound, MessageDropper, MobileRoamer, RandomAdversary, RoundRobinAdversary,
    SimConfig, Simulator,
};
use layered_sync_crash::CrashModel;
use layered_sync_mobile::MobileModel;

/// Every run in the batch replays to a model-validated execution.
fn assert_conformant<M, A>(model: &M, config: &SimConfig, mut make_adversary: impl FnMut() -> A)
where
    M: SimModel,
    A: Adversary<M>,
{
    let sim = Simulator::new(model);
    for run in sim.run_many(config, &mut make_adversary) {
        let trace: ExecutionTrace<M::State> = run.schedule.replay(model);
        trace.validate(model).unwrap_or_else(|e| {
            panic!(
                "run {} (seed {}) is not an S-execution: {e} — schedule {}",
                run.index,
                run.seed,
                run.schedule.display(model)
            )
        });
    }
}

#[test]
fn mobile_runs_are_s1_executions() {
    let model = MobileModel::new(3, FloodMin::new(2));
    let config = SimConfig::new(11, 12, 4);
    assert_conformant(&model, &config, || RandomAdversary);
    assert_conformant(&model, &config, MobileRoamer::default);
    assert_conformant(&model, &config, || MessageDropper::new(500));
}

#[test]
fn crash_runs_are_st_executions() {
    let model = CrashModel::new(3, 1, FloodMin::new(3));
    let config = SimConfig::new(22, 12, 4);
    assert_conformant(&model, &config, || RandomAdversary);
    assert_conformant(&model, &config, || RoundRobinAdversary::new(1));
    assert_conformant(&model, &config, || CrashAtRound {
        round: 1,
        victim: Pid::new(2),
        intensity: 1,
    });
}

#[test]
fn sm_runs_are_srw_executions() {
    let model = SmModel::new(3, SmFloodMin::new(2));
    let config = SimConfig::new(33, 12, 4);
    assert_conformant(&model, &config, || RandomAdversary);
    assert_conformant(&model, &config, MobileRoamer::default);
}

#[test]
fn mp_runs_are_sper_executions() {
    let model = MpModel::new(3, MpFloodMin::new(2));
    let config = SimConfig::new(44, 12, 4);
    assert_conformant(&model, &config, || RandomAdversary);
    assert_conformant(&model, &config, || MessageDropper::new(700));
}

#[test]
fn fixed_inputs_are_respected() {
    use layered_core::{LayeredModel, Value};
    let model = MobileModel::new(3, FloodMin::new(2));
    let inputs = vec![Value::ONE, Value::ZERO, Value::ONE];
    let config = SimConfig {
        seed: 55,
        runs: 4,
        horizon: 3,
        inputs: Some(inputs.clone()),
    };
    let sim = Simulator::new(&model);
    for run in sim.run_many(&config, || RandomAdversary) {
        assert_eq!(run.schedule.inputs, inputs);
        assert_eq!(model.inputs_of(run.schedule.replay(&model).last()), inputs);
    }
}
