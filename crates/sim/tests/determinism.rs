//! Acceptance: the same `(seed, adversary, n, protocol)` must reproduce the
//! same runs — byte-identical schedules and byte-identical JSON records.

use layered_async_mp::MpModel;
use layered_async_sm::SmModel;
use layered_core::SimModel;
use layered_protocols::{FloodMin, MpFloodMin, SmFloodMin, SyncProtocol};
use layered_sim::{
    run_record, Adversary, MessageDropper, MobileRoamer, RandomAdversary, RoundRobinAdversary,
    SimConfig, Simulator,
};
use layered_sync_crash::CrashModel;
use layered_sync_mobile::MobileModel;

/// Runs the batch twice and asserts schedules and JSON records agree
/// byte-for-byte.
fn assert_deterministic<M, A>(
    model: &M,
    config: &SimConfig,
    mut make_adversary: impl FnMut() -> A,
    label: &str,
) where
    M: SimModel,
    A: Adversary<M>,
{
    let sim = Simulator::new(model);
    let first = sim.run_many(config, &mut make_adversary);
    let second = sim.run_many(config, &mut make_adversary);
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.schedule.display(model),
            b.schedule.display(model),
            "{label}: schedules diverge at run {}",
            a.index
        );
        let adversary_name = make_adversary().name();
        let ra = run_record(model, a, label, "p", &adversary_name).to_string();
        let rb = run_record(model, b, label, "p", &adversary_name).to_string();
        assert_eq!(ra, rb, "{label}: JSON records diverge at run {}", a.index);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.faults, b.faults);
    }
}

#[test]
fn mobile_model_is_deterministic() {
    let model = MobileModel::new(4, FloodMin::new(3));
    let config = SimConfig::new(0xfeed_beef, 8, 6);
    assert_deterministic(&model, &config, || RandomAdversary, "mobile");
    assert_deterministic(&model, &config, MobileRoamer::default, "mobile");
}

#[test]
fn crash_model_is_deterministic() {
    let model = CrashModel::new(4, 2, FloodMin::new(3));
    let config = SimConfig::new(0xdead_cafe, 8, 5);
    assert_deterministic(&model, &config, || RandomAdversary, "crash");
    assert_deterministic(&model, &config, || RoundRobinAdversary::new(2), "crash");
}

#[test]
fn sm_model_is_deterministic() {
    let model = SmModel::new(3, SmFloodMin::new(2));
    let config = SimConfig::new(0x1234_5678, 8, 5);
    assert_deterministic(&model, &config, || RandomAdversary, "sm");
    assert_deterministic(&model, &config, || MessageDropper::new(400), "sm");
}

#[test]
fn mp_model_is_deterministic() {
    let model = MpModel::new(3, MpFloodMin::new(2));
    let config = SimConfig::new(0x0bad_f00d, 8, 5);
    assert_deterministic(&model, &config, || RandomAdversary, "mp");
    assert_deterministic(&model, &config, || MessageDropper::new(250), "mp");
}

#[test]
fn replay_rebuilds_the_exact_state_sequence() {
    let model = MobileModel::new(3, FloodMin::new(2));
    let sim = Simulator::new(&model);
    let config = SimConfig::new(99, 6, 4);
    for run in sim.run_many(&config, || RandomAdversary) {
        let trace = run.schedule.replay(&model);
        assert_eq!(trace.steps(), run.steps);
        // Replaying again gives the identical trace object.
        assert_eq!(trace.states(), run.schedule.replay(&model).states());
    }
}

#[test]
fn different_seeds_give_different_schedules() {
    // Not a determinism property per se, but the complement: the seed must
    // actually matter. With 16 runs of 6 layers over n = 16, two master
    // seeds agreeing on every schedule would mean the stream is ignored.
    let model = MobileModel::new(16, FloodMin::new(6));
    let sim = Simulator::new(&model);
    let a = sim.run_many(&SimConfig::new(1, 16, 6), || RandomAdversary);
    let b = sim.run_many(&SimConfig::new(2, 16, 6), || RandomAdversary);
    assert!(
        a.iter()
            .zip(&b)
            .any(|(x, y)| x.schedule.display(&model) != y.schedule.display(&model)),
        "seeds 1 and 2 produced identical batches"
    );
}

#[test]
fn large_n_runs_execute_within_the_horizon() {
    // The whole point of SimModel: n = 16 and n = 64 runs, far beyond the
    // enumerator's reach, still execute and classify.
    let model = MobileModel::new(64, FloodMin::new(4));
    let sim = Simulator::new(&model);
    let config = SimConfig::new(7, 2, 4);
    for run in sim.run_many(&config, || RandomAdversary) {
        assert_eq!(run.steps, 4);
        assert_eq!(run.schedule.len(), run.steps);
    }
    // FloodMin's name survives into reports at any n.
    assert_eq!(FloodMin::new(4).name(), "FloodMin(deadline=4)");
}
