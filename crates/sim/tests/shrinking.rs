//! Satellite: property tests for schedule shrinking — across random seeds,
//! a shrunk schedule reproduces the same violation class and is never
//! longer than the original.

use layered_protocols::FloodMin;
use layered_sim::{classify, shrink, RandomAdversary, SimConfig, Simulator};
use layered_sync_mobile::MobileModel;
use proptest::prelude::*;

proptest! {
    /// For every master seed, every run in a small mobile-model batch
    /// shrinks to a schedule of the same outcome class with
    /// `len <= original.len()`.
    #[test]
    fn shrunk_schedule_preserves_class_and_never_grows(seed in 0u64..10_000) {
        let model = MobileModel::new(3, FloodMin::new(2));
        let sim = Simulator::new(&model);
        let config = SimConfig::new(seed, 4, 4);
        for run in sim.run_many(&config, || RandomAdversary) {
            let class = run.outcome.class();
            let small = shrink(&model, &run.schedule, class);
            prop_assert!(
                small.len() <= run.schedule.len(),
                "shrinking grew the schedule: {} -> {}",
                run.schedule.len(),
                small.len()
            );
            let replayed = small.replay(&model);
            prop_assert_eq!(
                classify(&model, replayed.states()).class(),
                class,
                "shrinking changed the outcome class"
            );
            // The shrunk schedule is still a genuine S-execution.
            prop_assert!(replayed.validate(&model).is_ok());
        }
    }
}

/// FloodMin under the mobile adversary violates agreement (the
/// Santoro–Widmayer impossibility); the shrunk reproduction must end at the
/// violating layer and keep only essential faults.
#[test]
fn violations_shrink_to_a_minimal_violating_prefix() {
    let model = MobileModel::new(3, FloodMin::new(2));
    let sim = Simulator::new(&model);
    let mut shrunk_any = false;
    for master in 0..200u64 {
        let config = SimConfig::new(master, 4, 4);
        for run in sim.run_many(&config, || RandomAdversary) {
            if !run.outcome.is_violation() {
                continue;
            }
            let class = run.outcome.class();
            let small = shrink(&model, &run.schedule, class);
            let replayed = small.replay(&model);
            let outcome = classify(&model, replayed.states());
            assert_eq!(outcome.class(), class);
            // Minimal prefix: the violation appears exactly at the last
            // state of the shrunk schedule.
            match outcome {
                layered_sim::RunOutcome::AgreementViolation { round }
                | layered_sim::RunOutcome::ValidityViolation { round } => {
                    assert_eq!(round, small.len(), "violation not at the final layer");
                }
                _ => unreachable!("violation class is a violation"),
            }
            assert!(small.fault_count(&model) <= run.schedule.fault_count(&model));
            shrunk_any = true;
        }
        if shrunk_any {
            break;
        }
    }
    assert!(
        shrunk_any,
        "no violating run found in 200 batches — FloodMin under S1 must violate"
    );
}

/// Shrinking a schedule that never exhibited the target class is the
/// identity.
#[test]
fn shrinking_is_identity_on_wrong_class() {
    let model = MobileModel::new(3, FloodMin::new(2));
    let sim = Simulator::new(&model);
    let run = sim.run_one(&SimConfig::new(5, 1, 3), 0, &mut RandomAdversary);
    let other = if run.outcome.class() == "agreement" {
        "validity"
    } else {
        "agreement"
    };
    let same = shrink(&model, &run.schedule, other);
    assert_eq!(same.display(&model), run.schedule.display(&model));
}
