//! The simulation's only source of randomness: a splitmix64 stream.
//!
//! Everything nondeterministic in a simulated run — adversary choices,
//! sampled moves, random input assignments — is drawn from one [`SimRng`]
//! seeded from the run's `(master seed, run index)` pair, so a run is a pure
//! function of its configuration and can be replayed bit-for-bit.

/// A deterministic splitmix64 pseudo-random stream.
///
/// Splitmix64 passes BigCrush, needs no warm-up, and — crucially for
/// replay — has a single `u64` of state, so a seed alone pins the entire
/// stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A stream starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// The seed of run `index` under master seed `master`: one splitmix64
    /// step over their combination, so per-run streams are decorrelated even
    /// for adjacent indices.
    #[must_use]
    pub fn derive(master: u64, index: u64) -> u64 {
        let mut rng = SimRng::new(master ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        rng.next_u64()
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, bound)` via Lemire's multiply-shift reduction
    /// (bias at most 2⁻⁶⁴·bound, irrelevant at simulation bounds).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform boolean.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::new(7);
        for bound in 1..50 {
            for _ in 0..20 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn derived_seeds_differ_per_run() {
        let seeds: Vec<u64> = (0..64).map(|i| SimRng::derive(1234, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "derived seeds collide");
    }
}
