//! # layered-sim
//!
//! A deterministic adversary-scheduler simulation runtime over the layered
//! models of Moses & Rajsbaum's *"The Unified Structure of Consensus"*
//! (PODC 1998).
//!
//! The exhaustive engines in `layered-core` analyze *all* runs of a protocol
//! by enumerating every layer successor — exact, but capped around `n ≤ 3`.
//! This crate takes the complementary, Gafni–Losa-style view of the same
//! objects: consensus as an adversary-vs-protocol game, executed one long
//! run at a time. A pluggable [`Adversary`] strategy plays one legal layer
//! move per round against any
//! [`SimModel`](layered_core::SimModel) — the four model families all
//! implement it — so every simulated run is a genuine `S`-execution by
//! construction, at sizes (`n = 16`, `n = 64`) the enumerator cannot touch.
//!
//! Three guarantees organize the crate:
//!
//! * **Determinism** ([`rng`], [`runtime`]) — a run is a pure function of
//!   `(master seed, run index, config)`; re-running reproduces it
//!   bit-for-bit.
//! * **Replayability** ([`schedule`]) — every run records a compact
//!   [`Schedule`] that rebuilds the exact state sequence and can be
//!   re-verified against the model's layering via
//!   [`ExecutionTrace::validate`](layered_core::ExecutionTrace::validate).
//! * **Shrinkability** ([`shrink`]) — a violating schedule reduces, by
//!   delta debugging, to a minimal prefix with the same violation class.
//!
//! The runtime reports through the `layered-core` telemetry bus
//! (`sim.runs`, `sim.steps`, `sim.faults_injected` counters and `sim.run`
//! spans) and emits one JSON record per run via [`run_record`], in the same
//! shape the experiment harness writes with `--json`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adversary;
pub mod rng;
pub mod runtime;
pub mod schedule;
pub mod shrink;

pub use adversary::{
    Adversary, CrashAtRound, MessageDropper, MobileRoamer, RandomAdversary, RoundRobinAdversary,
};
pub use rng::SimRng;
pub use runtime::{classify, run_record, RunOutcome, SimConfig, SimRun, Simulator};
pub use schedule::{Schedule, ScheduleJsonError};
pub use shrink::shrink;
