//! Delta-debugging schedule shrinking.
//!
//! A random adversary that stumbles onto a consensus violation usually does
//! so with a long, noisy schedule. [`shrink`] reduces it to a minimal
//! reproduction in two phases, both preserving the outcome *class* (same
//! [`RunOutcome::class`] tag):
//!
//! 1. **Truncate** — a safety violation is a state property, so the schedule
//!    is cut at the first violating state;
//! 2. **Quiet** — a ddmin-style pass replaces chunks of moves by the model's
//!    clean move (halving the chunk size down to single moves), keeping each
//!    replacement only if the class survives. Since
//!    [`clean_move`](layered_core::SimModel::clean_move) never injects a
//!    fault, shrinking can only remove failures, never add them.
//!
//! The result is never longer than the input, replays deterministically like
//! any schedule, and — for violations — pins the blame on the few fault
//! moves that actually matter.

use layered_core::SimModel;

use crate::runtime::{classify, RunOutcome};
use crate::schedule::Schedule;

/// Replays a candidate (`None` = play the clean move at that position),
/// returning the materialized moves and the resulting outcome.
fn evaluate<M: SimModel>(
    model: &M,
    schedule: &Schedule<M::Move>,
    candidate: &[Option<M::Move>],
) -> (Vec<M::Move>, RunOutcome) {
    let mut states = vec![model.initial_state(&schedule.inputs)];
    let mut moves = Vec::with_capacity(candidate.len());
    for slot in candidate {
        let x = states.last().expect("non-empty");
        let mv = match slot {
            Some(mv) => mv.clone(),
            None => model.clean_move(x),
        };
        states.push(model.apply_move(x, &mv));
        moves.push(mv);
    }
    let outcome = classify(model, &states);
    (moves, outcome)
}

/// Cuts a violating candidate at its first violating state.
fn truncate<M: SimModel>(
    model: &M,
    schedule: &Schedule<M::Move>,
    candidate: &mut Vec<Option<M::Move>>,
    target: &str,
) {
    let (_, outcome) = evaluate(model, schedule, candidate);
    let round = match outcome {
        RunOutcome::AgreementViolation { round } | RunOutcome::ValidityViolation { round }
            if outcome.class() == target =>
        {
            round
        }
        _ => return,
    };
    // states[round] is reached after `round` moves.
    candidate.truncate(round);
}

/// Shrinks `schedule` to a smaller schedule with the same outcome class.
///
/// `target` is the class to preserve (normally
/// `run.outcome.class()`). The result replays to an execution of the same
/// class and satisfies `result.len() <= schedule.len()`; for safety
/// violations it additionally ends at the violating layer. If the schedule
/// does not exhibit `target` in the first place it is returned unchanged.
pub fn shrink<M: SimModel>(
    model: &M,
    schedule: &Schedule<M::Move>,
    target: &str,
) -> Schedule<M::Move> {
    let mut candidate: Vec<Option<M::Move>> = schedule.moves.iter().cloned().map(Some).collect();
    let (_, original) = evaluate(model, schedule, &candidate);
    if original.class() != target {
        return schedule.clone();
    }

    // Phase 1: cut at the first violating state.
    truncate(model, schedule, &mut candidate, target);

    // Phase 2: ddmin-style quieting — replace chunks by clean moves.
    let mut chunk = candidate.len().max(1);
    while chunk >= 1 {
        let mut start = 0;
        while start < candidate.len() {
            let end = (start + chunk).min(candidate.len());
            if candidate[start..end].iter().any(Option::is_some) {
                let saved: Vec<Option<M::Move>> = candidate[start..end].to_vec();
                for slot in &mut candidate[start..end] {
                    *slot = None;
                }
                let (_, outcome) = evaluate(model, schedule, &candidate);
                if outcome.class() != target {
                    candidate[start..end].clone_from_slice(&saved);
                }
            }
            start = end;
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Quieting may have moved the violation earlier; cut again.
    truncate(model, schedule, &mut candidate, target);

    let (moves, outcome) = evaluate(model, schedule, &candidate);
    debug_assert_eq!(outcome.class(), target, "shrinking lost the outcome");
    Schedule {
        seed: schedule.seed,
        inputs: schedule.inputs.clone(),
        moves,
    }
}
