//! The simulation runtime: seeded runs, outcome classification, telemetry,
//! and per-run JSON records.
//!
//! A [`Simulator`] executes a protocol-vs-adversary game round by round: the
//! adversary picks a legal layer move, the model applies it, and the runtime
//! watches the resulting state for consensus violations with the same
//! predicate the exhaustive checker uses
//! ([`state_violations`](layered_core::checker::state_violations)). Every
//! run is a pure function of `(master seed, run index, config)` and records
//! a [`Schedule`] that replays to the identical state sequence.

use layered_core::checker::{state_violations, Violation};
use layered_core::telemetry::json::Json;
use layered_core::telemetry::{Observer, Span, NOOP};
use layered_core::{Pid, SimModel, Value};

use crate::adversary::Adversary;
use crate::rng::SimRng;
use crate::schedule::Schedule;

/// Configuration of a batch of simulated runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Master seed; run `i` derives its own stream from `(seed, i)`.
    pub seed: u64,
    /// Number of independent runs.
    pub runs: usize,
    /// Layers per run.
    pub horizon: usize,
    /// Fixed input assignment, or `None` to draw uniform binary inputs per
    /// run from the run's stream.
    pub inputs: Option<Vec<Value>>,
}

impl SimConfig {
    /// A config with `runs` runs of `horizon` layers under `seed`, with
    /// per-run random binary inputs.
    #[must_use]
    pub fn new(seed: u64, runs: usize, horizon: usize) -> Self {
        SimConfig {
            seed,
            runs,
            horizon,
            inputs: None,
        }
    }
}

/// How a simulated run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every non-failed process decided, consistently, within the horizon.
    Decided {
        /// The layer by which the last decision latched.
        round: usize,
        /// The common decided value.
        value: Value,
    },
    /// The horizon elapsed with some non-failed process undecided.
    Undecided {
        /// The undecided non-failed processes.
        undecided: Vec<Pid>,
    },
    /// Two non-failed processes decided different values.
    AgreementViolation {
        /// The layer at which the disagreement first appeared.
        round: usize,
    },
    /// A process decided a value that is nobody's input.
    ValidityViolation {
        /// The layer at which the invalid decision first appeared.
        round: usize,
    },
}

impl RunOutcome {
    /// Short class tag (`"decided"`, `"undecided"`, `"agreement"`,
    /// `"validity"`) for reports and shrinking oracles.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            RunOutcome::Decided { .. } => "decided",
            RunOutcome::Undecided { .. } => "undecided",
            RunOutcome::AgreementViolation { .. } => "agreement",
            RunOutcome::ValidityViolation { .. } => "validity",
        }
    }

    /// Whether the run ended in a safety violation (agreement or validity).
    #[must_use]
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            RunOutcome::AgreementViolation { .. } | RunOutcome::ValidityViolation { .. }
        )
    }
}

/// One finished simulated run: its schedule and how it ended.
#[derive(Clone, Debug)]
pub struct SimRun<Mv> {
    /// Index within the batch.
    pub index: usize,
    /// The run's derived seed.
    pub seed: u64,
    /// The recorded schedule (seed, inputs, moves).
    pub schedule: Schedule<Mv>,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Number of fault moves the adversary injected.
    pub faults: usize,
    /// Number of layers actually executed (≤ horizon; violations stop the
    /// run early).
    pub steps: usize,
}

/// Classifies the state sequence of a (replayed or live) run.
///
/// Scans for the first safety violation with the checker's own
/// [`state_violations`] predicate; absent one, the run is `Decided` iff
/// every non-failed process has decided at the final state. Both the live
/// runtime and the shrinking oracle classify through this single function,
/// so "same violation class" means the same thing everywhere.
pub fn classify<M: SimModel>(model: &M, states: &[M::State]) -> RunOutcome {
    for (round, x) in states.iter().enumerate() {
        for v in state_violations(model, x) {
            match v {
                Violation::Agreement { .. } => {
                    return RunOutcome::AgreementViolation { round };
                }
                Violation::Validity { .. } => {
                    return RunOutcome::ValidityViolation { round };
                }
                Violation::Decision { .. } => {}
            }
        }
    }
    let last = states.last().expect("runs have an initial state");
    let undecided: Vec<Pid> = model
        .non_failed(last)
        .into_iter()
        .filter(|&i| model.decision(last, i).is_none())
        .collect();
    if !undecided.is_empty() {
        return RunOutcome::Undecided { undecided };
    }
    let value = model
        .non_failed(last)
        .first()
        .and_then(|&i| model.decision(last, i))
        .unwrap_or(Value::ZERO);
    // The latch round: first state where every survivor had decided.
    let round = states
        .iter()
        .position(|x| {
            model
                .non_failed(last)
                .iter()
                .all(|&i| model.decision(x, i).is_some())
        })
        .unwrap_or(states.len() - 1);
    RunOutcome::Decided { round, value }
}

/// The simulation driver for one model instance.
pub struct Simulator<'a, M: SimModel> {
    model: &'a M,
    observer: &'a dyn Observer,
}

impl<'a, M: SimModel> Simulator<'a, M> {
    /// A simulator over `model` with telemetry disabled.
    pub fn new(model: &'a M) -> Self {
        Simulator {
            model,
            observer: &NOOP,
        }
    }

    /// A simulator over `model` reporting to `observer`.
    pub fn with_observer(model: &'a M, observer: &'a dyn Observer) -> Self {
        Simulator { model, observer }
    }

    /// The model under simulation.
    pub fn model(&self) -> &M {
        self.model
    }

    /// Executes run `index` of the batch configured by `config` under
    /// `adversary`.
    ///
    /// The run is a pure function of `(config.seed, index, adversary)`: the
    /// per-run stream is derived with [`SimRng::derive`], inputs are either
    /// `config.inputs` or drawn from that stream, and the adversary's
    /// choices consume the same stream. Safety violations stop the run at
    /// the violating layer.
    pub fn run_one<A: Adversary<M>>(
        &self,
        config: &SimConfig,
        index: usize,
        adversary: &mut A,
    ) -> SimRun<M::Move> {
        let _span = Span::enter(self.observer, "sim.run");
        let seed = SimRng::derive(config.seed, index as u64);
        let mut rng = SimRng::new(seed);
        let n = self.model.num_processes();
        let inputs: Vec<Value> = match &config.inputs {
            Some(fixed) => {
                assert_eq!(fixed.len(), n, "input assignment length != n");
                fixed.clone()
            }
            None => (0..n)
                .map(|_| if rng.coin() { Value::ONE } else { Value::ZERO })
                .collect(),
        };
        self.observer.counter("sim.runs", 1);

        let mut states = vec![self.model.initial_state(&inputs)];
        let mut moves = Vec::with_capacity(config.horizon);
        let mut faults = 0usize;
        let mut first_fault_round: Option<usize> = None;
        for round in 0..config.horizon {
            let x = states.last().expect("non-empty");
            let mv = adversary.next_move(self.model, x, round, &mut rng);
            if self.model.is_fault(&mv) {
                faults += 1;
                first_fault_round.get_or_insert(round);
                self.observer.counter("sim.faults_injected", 1);
            }
            let next = self.model.apply_move(x, &mv);
            moves.push(mv);
            states.push(next);
            self.observer.counter("sim.steps", 1);
            if classify_prefix_violates(self.model, states.last().expect("non-empty")) {
                break;
            }
        }

        let outcome = classify(self.model, &states);
        self.observer
            .histogram("sim.run_layers", moves.len() as u64);
        if outcome.is_violation() {
            self.observer.event("sim.violation", outcome.class());
            if let (
                Some(first),
                RunOutcome::AgreementViolation { round } | RunOutcome::ValidityViolation { round },
            ) = (first_fault_round, &outcome)
            {
                // Layers between the first injected fault and the violation
                // surfacing — the "blast latency" of the fault.
                self.observer.histogram(
                    "sim.fault_to_violation_layers",
                    round.saturating_sub(first) as u64,
                );
            }
        }
        SimRun {
            index,
            seed,
            steps: moves.len(),
            schedule: Schedule {
                seed,
                inputs,
                moves,
            },
            outcome,
            faults,
        }
    }

    /// Executes the whole batch, one fresh `adversary` per run.
    pub fn run_many<A: Adversary<M>>(
        &self,
        config: &SimConfig,
        mut make_adversary: impl FnMut() -> A,
    ) -> Vec<SimRun<M::Move>> {
        (0..config.runs)
            .map(|i| {
                let mut adversary = make_adversary();
                self.run_one(config, i, &mut adversary)
            })
            .collect()
    }
}

/// Whether `x` alone exhibits a safety violation (the early-stop test the
/// live loop applies per layer).
fn classify_prefix_violates<M: SimModel>(model: &M, x: &M::State) -> bool {
    state_violations(model, x)
        .iter()
        .any(|v| !matches!(v, Violation::Decision { .. }))
}

/// The JSON record of one run, shaped like the experiment harness's
/// records: one object per line in `--json` output.
///
/// Records are canonicalized (object keys sorted recursively) before
/// rendering so identical runs are byte-identical — part of the replay
/// determinism contract.
pub fn run_record<M: SimModel>(
    model: &M,
    run: &SimRun<M::Move>,
    model_name: &str,
    protocol: &str,
    adversary: &str,
) -> Json {
    let outcome_round = match run.outcome {
        RunOutcome::Decided { round, .. }
        | RunOutcome::AgreementViolation { round }
        | RunOutcome::ValidityViolation { round } => Some(round),
        RunOutcome::Undecided { .. } => None,
    };
    let mut fields = vec![
        ("experiment".to_string(), Json::from("sim")),
        ("model".to_string(), Json::from(model_name)),
        ("protocol".to_string(), Json::from(protocol)),
        ("adversary".to_string(), Json::from(adversary)),
        ("n".to_string(), Json::from(model.num_processes() as u64)),
        ("run".to_string(), Json::from(run.index as u64)),
        ("seed".to_string(), Json::from(run.seed)),
        (
            "inputs".to_string(),
            Json::Array(
                run.schedule
                    .inputs
                    .iter()
                    .map(|v| Json::from(u64::from(v.get())))
                    .collect(),
            ),
        ),
        ("outcome".to_string(), Json::from(run.outcome.class())),
        ("steps".to_string(), Json::from(run.steps as u64)),
        ("faults".to_string(), Json::from(run.faults as u64)),
    ];
    if let Some(round) = outcome_round {
        fields.push(("round".to_string(), Json::from(round as u64)));
    }
    if let RunOutcome::Decided { value, .. } = run.outcome {
        fields.push(("value".to_string(), Json::from(u64::from(value.get()))));
    }
    fields.push(("schedule".to_string(), run.schedule.to_json(model)));
    Json::Object(fields).canonicalize()
}
