//! Adversary strategies: who chooses each layer move, and how.
//!
//! The paper's environment is an all-powerful scheduler; the simulation
//! replaces it by a concrete *strategy* playing the adversary side of the
//! adversary-vs-protocol game, one legal layer move per round. Every
//! strategy builds its moves through the [`SimModel`] constructors, so
//! whatever it plays, the run stays inside the layering — a strategy can be
//! unfair or adaptive but never illegal.

use layered_core::{Pid, SimModel};

use crate::rng::SimRng;

/// One side of the adversary-vs-protocol game: picks the layer move played
/// at each round of a simulated run.
///
/// Strategies may keep mutable state (round counters, roaming positions) and
/// may consult the run's [`SimRng`]; determinism of the run follows from the
/// strategy being a pure function of `(its state, x, round, rng stream)`.
pub trait Adversary<M: SimModel> {
    /// A label for reports and JSON records (e.g. `"random"`,
    /// `"crash@3"`).
    fn name(&self) -> String;

    /// The move to play at state `x` in round `round`.
    fn next_move(&mut self, model: &M, x: &M::State, round: usize, rng: &mut SimRng) -> M::Move;
}

/// The uniform adversary: every round, a move sampled uniformly from the
/// model's move alphabet via [`SimModel::sample_move`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomAdversary;

impl<M: SimModel> Adversary<M> for RandomAdversary {
    fn name(&self) -> String {
        "random".to_string()
    }

    fn next_move(&mut self, model: &M, x: &M::State, _round: usize, rng: &mut SimRng) -> M::Move {
        model.sample_move(x, &mut |bound| rng.below(bound))
    }
}

/// Cycles its fault target `p1, p2, …, pn, p1, …`, faulting every `period`-th
/// round and playing clean rounds in between.
#[derive(Clone, Copy, Debug)]
pub struct RoundRobinAdversary {
    /// Fault every `period`-th round (1 = every round).
    pub period: usize,
}

impl RoundRobinAdversary {
    /// A round-robin adversary faulting every `period`-th round.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    #[must_use]
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "period must be positive");
        RoundRobinAdversary { period }
    }
}

impl<M: SimModel> Adversary<M> for RoundRobinAdversary {
    fn name(&self) -> String {
        format!("round-robin(period={})", self.period)
    }

    fn next_move(&mut self, model: &M, x: &M::State, round: usize, rng: &mut SimRng) -> M::Move {
        if !round.is_multiple_of(self.period) {
            return model.clean_move(x);
        }
        let n = model.num_processes();
        let target = Pid::new((round / self.period) % n);
        let intensity = rng.below(n as u64) as usize;
        model
            .fault_move(x, target, intensity)
            .unwrap_or_else(|| model.clean_move(x))
    }
}

/// Plays clean rounds except for a single scripted fault: at round `round`,
/// strike `victim` with `intensity`.
///
/// This is the Dolev–Strong-style adversary — one precisely placed failure
/// per run — and the natural strategy for reproducing a known bad schedule.
#[derive(Clone, Copy, Debug)]
pub struct CrashAtRound {
    /// The round in which the fault is injected (0-based).
    pub round: usize,
    /// The process to strike.
    pub victim: Pid,
    /// Model-specific fault intensity (prefix bound, rotation, …).
    pub intensity: usize,
}

impl<M: SimModel> Adversary<M> for CrashAtRound {
    fn name(&self) -> String {
        format!("crash@{}(p{})", self.round, self.victim.index() + 1)
    }

    fn next_move(&mut self, model: &M, x: &M::State, round: usize, _rng: &mut SimRng) -> M::Move {
        if round == self.round {
            if let Some(mv) = model.fault_move(x, self.victim, self.intensity) {
                return mv;
            }
        }
        model.clean_move(x)
    }
}

/// The Santoro–Widmayer mobile adversary: faults *every* round, roaming its
/// target by a random walk over the ring of processes and re-drawing the
/// intensity each round.
///
/// Against `M^mf`'s layering `S₁` this is exactly the one-mobile-failure
/// environment of Section 5; against the budgeted crash model its roaming is
/// clipped by the failure budget and it degrades into an eager crasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct MobileRoamer {
    position: usize,
}

impl<M: SimModel> Adversary<M> for MobileRoamer {
    fn name(&self) -> String {
        "mobile-roamer".to_string()
    }

    fn next_move(&mut self, model: &M, x: &M::State, _round: usize, rng: &mut SimRng) -> M::Move {
        let n = model.num_processes();
        // Random walk: stay, step left, or step right on the ring.
        self.position = match rng.below(3) {
            0 => self.position,
            1 => (self.position + 1) % n,
            _ => (self.position + n - 1) % n,
        };
        let intensity = rng.below(n as u64) as usize;
        model
            .fault_move(x, Pid::new(self.position), intensity)
            .unwrap_or_else(|| model.clean_move(x))
    }
}

/// The lossy-network adversary: each round, with probability
/// `permille / 1000`, delays or drops a random process's messages (a fault
/// move against a uniform target); otherwise the round is clean.
#[derive(Clone, Copy, Debug)]
pub struct MessageDropper {
    /// Per-round fault probability in thousandths (0 ..= 1000).
    pub permille: u64,
}

impl MessageDropper {
    /// A dropper striking with probability `permille / 1000` each round.
    ///
    /// # Panics
    ///
    /// Panics if `permille > 1000`.
    #[must_use]
    pub fn new(permille: u64) -> Self {
        assert!(permille <= 1000, "probability above 1");
        MessageDropper { permille }
    }
}

impl<M: SimModel> Adversary<M> for MessageDropper {
    fn name(&self) -> String {
        format!("dropper(p={:.3})", self.permille as f64 / 1000.0)
    }

    fn next_move(&mut self, model: &M, x: &M::State, _round: usize, rng: &mut SimRng) -> M::Move {
        if rng.below(1000) >= self.permille {
            return model.clean_move(x);
        }
        let n = model.num_processes() as u64;
        let target = Pid::new(rng.below(n) as usize);
        let intensity = rng.below(n) as usize;
        model
            .fault_move(x, target, intensity)
            .unwrap_or_else(|| model.clean_move(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rejects_zero_period() {
        let r = std::panic::catch_unwind(|| RoundRobinAdversary::new(0));
        assert!(r.is_err());
    }

    #[test]
    fn dropper_rejects_probability_above_one() {
        let r = std::panic::catch_unwind(|| MessageDropper::new(1001));
        assert!(r.is_err());
    }
}
