//! Recorded schedules: the compact trace of one simulated run.
//!
//! A [`Schedule`] is the move sequence the adversary played, together with
//! the input assignment and the seed it was recorded under. Replaying it
//! against the model rebuilds the *exact* state sequence — schedules are the
//! currency of determinism tests, of re-verification against the layering
//! (via [`ExecutionTrace::validate`]), and of shrinking.

use layered_core::telemetry::json::Json;
use layered_core::{ExecutionTrace, SimModel, Value};

/// The compact trace of one simulated run: seed, inputs, and the move
/// sequence played.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule<Mv> {
    /// The per-run seed the schedule was recorded under.
    pub seed: u64,
    /// The run's input assignment.
    pub inputs: Vec<Value>,
    /// The layer moves, in play order.
    pub moves: Vec<Mv>,
}

impl<Mv> Schedule<Mv> {
    /// The number of layers in the schedule.
    #[must_use]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the schedule plays no layer at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

impl<Mv: Clone + Eq + std::hash::Hash + std::fmt::Debug> Schedule<Mv> {
    /// Replays the schedule against `model`, rebuilding the full state
    /// sequence from the initial state for [`Schedule::inputs`].
    ///
    /// Replay is deterministic, so equal schedules give equal traces — this
    /// is what the determinism tests compare bit-for-bit, and the resulting
    /// trace is what [`ExecutionTrace::validate`] re-checks against the
    /// model's layering on small instances.
    pub fn replay<M>(&self, model: &M) -> ExecutionTrace<M::State>
    where
        M: SimModel<Move = Mv>,
    {
        let mut trace = ExecutionTrace::new(vec![model.initial_state(&self.inputs)]);
        for mv in &self.moves {
            let next = model.apply_move(trace.last(), mv);
            trace.push(next);
        }
        trace
    }

    /// The number of fault-injecting moves in the schedule.
    pub fn fault_count<M>(&self, model: &M) -> usize
    where
        M: SimModel<Move = Mv>,
    {
        self.moves.iter().filter(|mv| model.is_fault(mv)).count()
    }

    /// A canonical single-line rendering (`seed=…;kind(args);…`) for
    /// byte-exact schedule comparison.
    pub fn display<M>(&self, model: &M) -> String
    where
        M: SimModel<Move = Mv>,
    {
        let mut out = format!("seed={}", self.seed);
        for mv in &self.moves {
            out.push(';');
            out.push_str(&model.encode_move(mv).display());
        }
        out
    }

    /// The schedule as a JSON array of [`MoveRecord`](layered_core::MoveRecord)
    /// objects.
    pub fn to_json<M>(&self, model: &M) -> Json
    where
        M: SimModel<Move = Mv>,
    {
        Json::Array(
            self.moves
                .iter()
                .map(|mv| model.encode_move(mv).to_json())
                .collect(),
        )
    }

    /// The self-contained JSON form of the schedule —
    /// `{"seed": "…", "inputs": […], "moves": […]}` — the wire format
    /// [`Schedule::from_json`] decodes and certificate stores persist.
    ///
    /// The seed travels as a fixed-width hex *string*: JSON numbers are
    /// `f64`-backed, exact only up to `2^53`, and per-run derived seeds
    /// use all 64 bits.
    pub fn to_json_full<M>(&self, model: &M) -> Json
    where
        M: SimModel<Move = Mv>,
    {
        Json::Object(vec![
            ("seed".into(), Json::String(format!("{:016x}", self.seed))),
            (
                "inputs".into(),
                Json::Array(
                    self.inputs
                        .iter()
                        .map(|v| Json::from(u64::from(v.get())))
                        .collect(),
                ),
            ),
            ("moves".into(), self.to_json(model)),
        ])
    }

    /// Decodes a schedule from the object form produced by
    /// [`Schedule::to_json_full`], resolving each move record through
    /// [`SimModel::decode_move`].
    ///
    /// Round-trip identity (`from_json(to_json_full(s)) == s`) holds for
    /// every schedule the runtime records, because `decode_move` is the
    /// inverse of `encode_move` on constructor-produced moves.
    ///
    /// # Errors
    ///
    /// [`ScheduleJsonError::Malformed`] for a shape/type error,
    /// [`ScheduleJsonError::BadMove`] when `decode_move` rejects a record.
    pub fn from_json<M>(model: &M, json: &Json) -> Result<Self, ScheduleJsonError>
    where
        M: SimModel<Move = Mv>,
    {
        let seed = json
            .get("seed")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or(ScheduleJsonError::Malformed("seed must be a hex string"))?;
        let Some(Json::Array(raw_inputs)) = json.get("inputs") else {
            return Err(ScheduleJsonError::Malformed("missing inputs"));
        };
        let inputs = raw_inputs
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .map(Value::new)
                    .ok_or(ScheduleJsonError::Malformed(
                        "inputs must be small integers",
                    ))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if inputs.len() != model.num_processes() {
            return Err(ScheduleJsonError::Malformed("inputs length != n"));
        }
        let Some(Json::Array(raw_moves)) = json.get("moves") else {
            return Err(ScheduleJsonError::Malformed("missing moves"));
        };
        let mut moves = Vec::with_capacity(raw_moves.len());
        for (index, rec) in raw_moves.iter().enumerate() {
            let kind = rec
                .get("kind")
                .and_then(Json::as_str)
                .ok_or(ScheduleJsonError::Malformed("move without kind"))?;
            let Some(Json::Array(raw_args)) = rec.get("args") else {
                return Err(ScheduleJsonError::Malformed("move without args"));
            };
            let args = raw_args
                .iter()
                .map(|a| {
                    a.as_u64()
                        .ok_or(ScheduleJsonError::Malformed("move args must be integers"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let mv = model
                .decode_move(kind, &args)
                .ok_or(ScheduleJsonError::BadMove { index })?;
            moves.push(mv);
        }
        Ok(Schedule {
            seed,
            inputs,
            moves,
        })
    }
}

/// Why decoding a [`Schedule`] from JSON failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleJsonError {
    /// A required field is missing or has the wrong JSON type.
    Malformed(&'static str),
    /// A move record was rejected by [`SimModel::decode_move`].
    BadMove {
        /// Index of the offending move.
        index: usize,
    },
}

impl std::fmt::Display for ScheduleJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleJsonError::Malformed(what) => write!(f, "malformed schedule JSON: {what}"),
            ScheduleJsonError::BadMove { index } => {
                write!(f, "move {index} does not decode for this model")
            }
        }
    }
}

impl std::error::Error for ScheduleJsonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_accessors() {
        let s: Schedule<u32> = Schedule {
            seed: 9,
            inputs: vec![Value::ZERO, Value::ONE],
            moves: vec![1, 2, 3],
        };
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
