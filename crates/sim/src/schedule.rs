//! Recorded schedules: the compact trace of one simulated run.
//!
//! A [`Schedule`] is the move sequence the adversary played, together with
//! the input assignment and the seed it was recorded under. Replaying it
//! against the model rebuilds the *exact* state sequence — schedules are the
//! currency of determinism tests, of re-verification against the layering
//! (via [`ExecutionTrace::validate`]), and of shrinking.

use layered_core::telemetry::json::Json;
use layered_core::{ExecutionTrace, SimModel, Value};

/// The compact trace of one simulated run: seed, inputs, and the move
/// sequence played.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule<Mv> {
    /// The per-run seed the schedule was recorded under.
    pub seed: u64,
    /// The run's input assignment.
    pub inputs: Vec<Value>,
    /// The layer moves, in play order.
    pub moves: Vec<Mv>,
}

impl<Mv> Schedule<Mv> {
    /// The number of layers in the schedule.
    #[must_use]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the schedule plays no layer at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

impl<Mv: Clone + Eq + std::hash::Hash + std::fmt::Debug> Schedule<Mv> {
    /// Replays the schedule against `model`, rebuilding the full state
    /// sequence from the initial state for [`Schedule::inputs`].
    ///
    /// Replay is deterministic, so equal schedules give equal traces — this
    /// is what the determinism tests compare bit-for-bit, and the resulting
    /// trace is what [`ExecutionTrace::validate`] re-checks against the
    /// model's layering on small instances.
    pub fn replay<M>(&self, model: &M) -> ExecutionTrace<M::State>
    where
        M: SimModel<Move = Mv>,
    {
        let mut trace = ExecutionTrace::new(vec![model.initial_state(&self.inputs)]);
        for mv in &self.moves {
            let next = model.apply_move(trace.last(), mv);
            trace.push(next);
        }
        trace
    }

    /// The number of fault-injecting moves in the schedule.
    pub fn fault_count<M>(&self, model: &M) -> usize
    where
        M: SimModel<Move = Mv>,
    {
        self.moves.iter().filter(|mv| model.is_fault(mv)).count()
    }

    /// A canonical single-line rendering (`seed=…;kind(args);…`) for
    /// byte-exact schedule comparison.
    pub fn display<M>(&self, model: &M) -> String
    where
        M: SimModel<Move = Mv>,
    {
        let mut out = format!("seed={}", self.seed);
        for mv in &self.moves {
            out.push(';');
            out.push_str(&model.encode_move(mv).display());
        }
        out
    }

    /// The schedule as a JSON array of [`MoveRecord`](layered_core::MoveRecord)
    /// objects.
    pub fn to_json<M>(&self, model: &M) -> Json
    where
        M: SimModel<Move = Mv>,
    {
        Json::Array(
            self.moves
                .iter()
                .map(|mv| model.encode_move(mv).to_json())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_accessors() {
        let s: Schedule<u32> = Schedule {
            seed: 9,
            inputs: vec![Value::ZERO, Value::ONE],
            moves: vec![1, 2, 3],
        };
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
