//! The model-independent interface to a layered system.
//!
//! Section 2 of the paper fixes an abstract setting: global states drawn from
//! `G = L_e × L_1 × ⋯ × L_n`, runs over `G`, admissible systems, a `Faulty`
//! function satisfying *fault independence*, and the *arbitrary crash
//! failure* display property. Section 4 adds *successor functions*
//! `S : G → 2^G \ {∅}` and *layerings*.
//!
//! [`LayeredModel`] is the executable counterpart: a finite-instance model
//! together with a distinguished successor function (its layering). Every
//! concrete model in this workspace — the mobile-failure synchronous model
//! `M^mf`, asynchronous read/write shared memory `M^rw`, asynchronous message
//! passing, and the t-resilient synchronous model — implements this trait,
//! and all analyses (valence, connectivity, bivalent-run construction, the
//! consensus checker) are written once against it.
//!
//! # State-graph contract
//!
//! Implementations must guarantee that the successor graph is *graded*: every
//! state has a well-defined depth ([`LayeredModel::depth`]), successors of a
//! state at depth `d` are all at depth `d + 1`, and equal states have equal
//! depths. All models in this workspace satisfy this by construction because
//! their states carry a layer counter. The analyses exploit this to memoize
//! by state without tracking depth separately.

use std::fmt::Debug;
use std::hash::Hash;

use crate::space::pack::StatePacker;
use crate::space::StateSpace;
use crate::telemetry::{Observer, Span, NOOP};
use crate::{Pid, Value};

/// A finite-instance model of distributed computation equipped with a
/// layering (successor function), per Sections 2 and 4 of the paper.
///
/// The associated [`State`](LayeredModel::State) type is the *global* state:
/// one local state per process plus the environment's local state (registers,
/// message pools, failure records, …).
///
/// See the [module documentation](self) for the grading contract successor
/// graphs must satisfy.
pub trait LayeredModel {
    /// The global state type.
    type State: Clone + Eq + Hash + Debug;

    /// The number of processes `n` (the paper requires `n >= 2`).
    fn num_processes(&self) -> usize;

    /// The maximum number of processes that may fail in any run (`t`).
    fn max_failures(&self) -> usize;

    /// The initial state whose input assignment is `inputs`
    /// (`inputs.len() == n`).
    ///
    /// # Panics
    ///
    /// Implementations panic if `inputs.len() != self.num_processes()`.
    fn initial_state(&self, inputs: &[Value]) -> Self::State;

    /// All initial states of the system.
    ///
    /// For systems for consensus this is exactly `Con₀`: one state per binary
    /// input vector, with the environment in a fixed initial local state.
    fn initial_states(&self) -> Vec<Self::State> {
        crate::binary_input_vectors(self.num_processes())
            .iter()
            .map(|inputs| self.initial_state(inputs))
            .collect()
    }

    /// The layer `S(x)`: all states reachable from `x` by one environment
    /// action of the layering.
    ///
    /// Must be non-empty (successor functions map into `2^G \ {∅}`) and free
    /// of duplicates.
    fn successors(&self, x: &Self::State) -> Vec<Self::State>;

    /// The number of layers applied to reach `x` from an initial state.
    fn depth(&self, x: &Self::State) -> usize;

    /// The input assignment of the run(s) through `x` (readable because every
    /// model threads the inputs through its states).
    fn inputs_of(&self, x: &Self::State) -> Vec<Value>;

    /// The value of the write-once decision variable `d_i` at `x`, if set.
    fn decision(&self, x: &Self::State, i: Pid) -> Option<Value>;

    /// Whether process `i` is *failed at* `x`, i.e. faulty in every run of
    /// the system in which `x` appears.
    ///
    /// Models that *display no finite failure* (all the asynchronous models
    /// and `M^mf`) return `false` everywhere.
    fn failed_at(&self, x: &Self::State, i: Pid) -> bool;

    /// Whether `x` and `y` *agree modulo `j`*: `x_e = y_e` and `x_i = y_i`
    /// for all processes `i ≠ j` (Section 2).
    fn agree_modulo(&self, x: &Self::State, y: &Self::State, j: Pid) -> bool;

    /// The canonical crash/silence successor used to check the *arbitrary
    /// crash failure* display property: the unique state in `S(x)` in which
    /// process `j` is silenced (loses all sends / is absent / is skipped)
    /// during the layer and every other process proceeds normally.
    ///
    /// The display property requires that if `x` and `y` agree modulo `j`,
    /// then `crash_step(x, j)` and `crash_step(y, j)` again agree modulo `j`;
    /// [`check_crash_display`](crate::checker::check_crash_display) verifies
    /// this inductively over the reachable graph.
    fn crash_step(&self, x: &Self::State, j: Pid) -> Self::State;

    /// Processes that are *obliged to have decided* at `x` if the protocol
    /// under analysis meets its claimed deadline at `depth(x)` layers.
    ///
    /// Defaults to all non-failed processes, which is right for the
    /// synchronous models. Asynchronous models override this to the set of
    /// processes that have completed enough local phases.
    fn obligated(&self, x: &Self::State) -> Vec<Pid> {
        Pid::all(self.num_processes())
            .filter(|&i| !self.failed_at(x, i))
            .collect()
    }

    /// Convenience: processes non-failed at `x`.
    fn non_failed(&self, x: &Self::State) -> Vec<Pid> {
        Pid::all(self.num_processes())
            .filter(|&i| !self.failed_at(x, i))
            .collect()
    }

    /// A packed `u128` codec for this model's states, if the instance fits
    /// one (see [`crate::space::pack`] for the codec contract). Arenas built
    /// with [`StateSpace::for_model`](crate::space::StateSpace::for_model)
    /// use it as their storage and hash key; `None` (the default) keeps the
    /// boxed representation.
    ///
    /// Implementations typically construct the packer once per model
    /// instance and hand out clones (it is a bundle of `Arc`s), returning
    /// `None` for configurations that exceed the codec's field widths.
    fn state_packer(&self) -> Option<StatePacker<Self::State>> {
        None
    }
}

/// The set of all states reachable from `from` in exactly `k` layers.
///
/// Duplicate states produced by different action sequences are merged.
///
/// # Examples
///
/// Counting layer sizes in a toy model:
///
/// ```
/// use layered_core::{states_at_depth, LayeredModel};
/// # use layered_core::testkit::CounterModel;
/// let m = CounterModel::new(2, 4);
/// let x0 = m.initial_states().remove(0);
/// assert_eq!(states_at_depth(&m, &x0, 0).len(), 1);
/// ```
pub fn states_at_depth<M: LayeredModel>(model: &M, from: &M::State, k: usize) -> Vec<M::State> {
    states_at_depth_with(model, from, k, &NOOP)
}

/// [`states_at_depth`] with telemetry: reports states visited, dedup hits
/// and frontier width to `obs` (see [`crate::telemetry`] for the naming
/// scheme).
pub fn states_at_depth_with<M: LayeredModel>(
    model: &M,
    from: &M::State,
    k: usize,
    obs: &dyn Observer,
) -> Vec<M::State> {
    let mut space: StateSpace<M> = StateSpace::for_model(model);
    let levels = space.expand_layers(model, std::slice::from_ref(from), k, obs);
    space.materialize(levels.last().expect("expand returns k + 1 levels"))
}

/// Statistics from a reachability sweep (see [`explore`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Exploration<S> {
    /// Distinct states found, grouped by depth: `levels[d]` holds every
    /// reachable state at depth `d` relative to the exploration roots.
    pub levels: Vec<Vec<S>>,
    /// Total number of distinct states across all levels.
    pub total_states: usize,
    /// Total number of successor edges traversed (with multiplicity).
    pub total_edges: usize,
}

impl<S> Exploration<S> {
    /// All states at the deepest explored level.
    #[must_use]
    pub fn frontier(&self) -> &[S] {
        self.levels.last().map_or(&[], Vec::as_slice)
    }
}

/// Breadth-first exploration of the layered state graph from `roots`, for
/// `horizon` layers.
///
/// States are deduplicated *within* each level; thanks to the grading
/// contract a state can never appear at two different levels.
pub fn explore<M: LayeredModel>(
    model: &M,
    roots: &[M::State],
    horizon: usize,
) -> Exploration<M::State> {
    explore_with(model, roots, horizon, &NOOP)
}

/// [`explore`] with telemetry: reports per-level frontier widths, states
/// visited, edges traversed and dedup hits to `obs`, timing the whole sweep
/// under the `explore.sweep` span.
pub fn explore_with<M: LayeredModel>(
    model: &M,
    roots: &[M::State],
    horizon: usize,
    obs: &dyn Observer,
) -> Exploration<M::State> {
    let _span = Span::enter(obs, "explore.sweep");
    let mut space: StateSpace<M> = StateSpace::for_model(model);
    let id_levels = space.expand_layers(model, roots, horizon, obs);
    // Every frontier state's successor list was computed exactly once into
    // the arena, so the cached edge total is the traversal's edge total.
    let total_edges = space.edge_count();
    obs.counter("explore.edges", total_edges as u64);
    Exploration {
        total_states: id_levels.iter().map(Vec::len).sum(),
        levels: id_levels.iter().map(|ids| space.materialize(ids)).collect(),
        total_edges,
    }
}

/// Why an [`ExecutionTrace`] failed validation against a model.
///
/// Produced by [`ExecutionTrace::validate`], which is the single source of
/// truth for "this trace is a genuine `S`-execution from an initial state" —
/// both [`ImpossibilityWitness::verify`](crate::ImpossibilityWitness::verify)
/// and the simulation replay path build on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The first trace state is not an initial state of the model.
    NotInitial,
    /// A step is not a layer transition: `states[step + 1] ∉ S(states[step])`.
    IllegalStep {
        /// Index of the first illegal step.
        step: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::NotInitial => write!(f, "first trace state is not initial"),
            TraceError::IllegalStep { step } => {
                write!(f, "step {step} is not a layer transition")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A finite execution: a path `x⁰, x¹, …, x^k` through the layered graph,
/// recorded for use as a machine-checkable witness.
///
/// Corresponds to the paper's notion of an *execution* (a finite subinterval
/// of a run) restricted to `S`-runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutionTrace<S> {
    states: Vec<S>,
}

impl<S: Clone + Eq + Debug> ExecutionTrace<S> {
    /// Creates a trace from a non-empty path of states.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    #[must_use]
    pub fn new(states: Vec<S>) -> Self {
        assert!(
            !states.is_empty(),
            "an execution contains at least one state"
        );
        ExecutionTrace { states }
    }

    /// The states of the trace, in order.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The first state.
    #[must_use]
    pub fn first(&self) -> &S {
        &self.states[0]
    }

    /// The last state.
    #[must_use]
    pub fn last(&self) -> &S {
        self.states.last().expect("non-empty")
    }

    /// Number of layer steps (`len() - 1`).
    #[must_use]
    pub fn steps(&self) -> usize {
        self.states.len() - 1
    }

    /// Appends a state.
    pub fn push(&mut self, state: S) {
        self.states.push(state);
    }

    /// Verifies that the trace is a legal `S`-execution of `model`: each
    /// state is among the successors of its predecessor.
    ///
    /// Returns the index of the first illegal step, or `Ok(())`.
    ///
    /// # Errors
    ///
    /// Returns `Err(k)` if `states[k+1] ∉ S(states[k])`.
    pub fn verify<M>(&self, model: &M) -> Result<(), usize>
    where
        M: LayeredModel<State = S>,
    {
        for (k, w) in self.states.windows(2).enumerate() {
            if !model.successors(&w[0]).contains(&w[1]) {
                return Err(k);
            }
        }
        Ok(())
    }

    /// Validates the trace end-to-end: the first state must be an initial
    /// state of `model` and every step must be a layer transition.
    ///
    /// This is the full "is a genuine `S`-execution" check shared by witness
    /// re-verification and simulation replay; [`verify`](Self::verify) checks
    /// only the transition relation.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] encountered, checking the initial
    /// state before the steps.
    pub fn validate<M>(&self, model: &M) -> Result<(), TraceError>
    where
        M: LayeredModel<State = S>,
    {
        if !model.initial_states().contains(self.first()) {
            return Err(TraceError::NotInitial);
        }
        self.verify(model)
            .map_err(|step| TraceError::IllegalStep { step })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::CounterModel;

    #[test]
    fn explore_counter_model_levels() {
        let m = CounterModel::new(2, 5);
        let roots = m.initial_states();
        assert_eq!(roots.len(), 4);
        let exp = explore(&m, &roots, 3);
        assert_eq!(exp.levels.len(), 4);
        // CounterModel has `branch` successors that merge into `branch`
        // distinct states per level per root.
        assert_eq!(exp.levels[0].len(), 4);
        assert!(exp.total_states >= 4);
        assert!(exp.total_edges > 0);
    }

    #[test]
    fn states_at_depth_matches_explore() {
        let m = CounterModel::new(2, 5);
        let x0 = m.initial_states().remove(0);
        for k in 0..3 {
            let a = states_at_depth(&m, &x0, k);
            let b = explore(&m, std::slice::from_ref(&x0), k);
            let mut a2 = a.clone();
            let mut b2 = b.levels[k].clone();
            a2.sort_by(|l, r| format!("{l:?}").cmp(&format!("{r:?}")));
            b2.sort_by(|l, r| format!("{l:?}").cmp(&format!("{r:?}")));
            assert_eq!(a2, b2);
        }
    }

    #[test]
    fn trace_verify_accepts_legal_path() {
        let m = CounterModel::new(2, 5);
        let x0 = m.initial_states().remove(0);
        let x1 = m.successors(&x0).remove(0);
        let x2 = m.successors(&x1).remove(0);
        let tr = ExecutionTrace::new(vec![x0, x1, x2]);
        assert_eq!(tr.steps(), 2);
        assert!(tr.verify(&m).is_ok());
    }

    #[test]
    fn trace_verify_rejects_illegal_path() {
        let m = CounterModel::new(2, 5);
        let x0 = m.initial_states().remove(0);
        let far = {
            let x1 = m.successors(&x0).remove(0);
            m.successors(&x1).remove(0)
        };
        let tr = ExecutionTrace::new(vec![x0, far]);
        assert_eq!(tr.verify(&m), Err(0));
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn trace_requires_nonempty() {
        let _: ExecutionTrace<u32> = ExecutionTrace::new(vec![]);
    }

    #[test]
    fn trace_validate_accepts_rooted_legal_path() {
        let m = CounterModel::new(2, 5);
        let x0 = m.initial_states().remove(0);
        let x1 = m.successors(&x0).remove(0);
        let tr = ExecutionTrace::new(vec![x0, x1]);
        assert!(tr.validate(&m).is_ok());
    }

    #[test]
    fn trace_validate_rejects_unrooted_path() {
        let m = CounterModel::new(2, 5);
        let x0 = m.initial_states().remove(0);
        let x1 = m.successors(&x0).remove(0);
        let x2 = m.successors(&x1).remove(0);
        let tr = ExecutionTrace::new(vec![x1, x2]);
        assert_eq!(tr.validate(&m), Err(TraceError::NotInitial));
    }

    #[test]
    fn trace_validate_reports_illegal_step() {
        let m = CounterModel::new(2, 5);
        let x0 = m.initial_states().remove(0);
        let far = {
            let x1 = m.successors(&x0).remove(0);
            m.successors(&x1).remove(0)
        };
        let tr = ExecutionTrace::new(vec![x0, far]);
        assert_eq!(tr.validate(&m), Err(TraceError::IllegalStep { step: 0 }));
    }
}
