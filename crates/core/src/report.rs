//! Plain-text tables for the experiment harness.
//!
//! Every experiment in this workspace prints a fixed-width table with a
//! caption tying it back to the paper claim it reproduces (the paper has no
//! numbered tables, so claims play that role). Kept deliberately free of
//! dependencies.

use std::fmt;

/// A fixed-width text table.
///
/// # Examples
///
/// ```
/// use layered_core::report::Table;
///
/// let mut t = Table::new("Lemma 3.6 (Con₀ connectivity)", &["n", "|Con₀|", "sim-connected"]);
/// t.row(&["2", "4", "yes"]);
/// t.row(&["3", "8", "yes"]);
/// let s = t.to_string();
/// assert!(s.contains("Lemma 3.6"));
/// assert!(s.contains("sim-connected"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    caption: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a caption and column headers.
    #[must_use]
    pub fn new(caption: &str, header: &[&str]) -> Self {
        Table {
            caption: caption.to_string(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(ToString::to_string).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "== {} ==", self.caption)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| {
                    let pad = widths[i].saturating_sub(c.chars().count());
                    format!("{c}{}", " ".repeat(pad))
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a boolean as `yes` / `NO` (violations stand out in experiment
/// output).
#[must_use]
pub fn yes_no(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_alignment() {
        let mut t = Table::new("cap", &["a", "bbbb"]);
        t.row(&["xxx", "y"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== cap ==");
        assert!(lines[1].starts_with("a  "));
        assert!(lines[3].starts_with("xxx"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("cap", &["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn yes_no_rendering() {
        assert_eq!(yes_no(true), "yes");
        assert_eq!(yes_no(false), "NO");
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new("c", &["x"]);
        assert!(t.is_empty());
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn table_with_no_rows_still_renders_header_and_rule() {
        let t = Table::new("empty", &["col-a", "b"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3, "caption, header, rule — nothing else");
        assert_eq!(lines[0], "== empty ==");
        assert_eq!(lines[1], "col-a  b");
        // The rule spans both columns plus the two-space gap.
        assert_eq!(lines[2], "-".repeat("col-a".len() + 2 + 1));
    }

    #[test]
    fn cell_wider_than_header_drives_column_width() {
        let mut t = Table::new("wide", &["x", "y"]);
        t.row(&["wide-cell", "1"]);
        t.row(&["a", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        // Header pads out to the widest cell; the short row pads too.
        assert_eq!(lines[1], "x          y");
        assert_eq!(lines[3], "wide-cell  1");
        assert_eq!(lines[4], "a          2");
        // All body lines share one width.
        let w = lines[1].chars().count();
        assert!(lines[3..].iter().all(|l| l.chars().count() == w));
    }

    #[test]
    fn caption_renders_once_at_the_top() {
        let mut t = Table::new("Lemma 9.9 — nonexistent but well-formatted", &["k"]);
        t.row(&["0"]);
        let s = t.to_string();
        assert!(s.starts_with("== Lemma 9.9 — nonexistent but well-formatted ==\n"));
        assert_eq!(s.matches("Lemma 9.9").count(), 1);
    }

    #[test]
    fn multibyte_cells_count_chars_not_bytes() {
        let mut t = Table::new("unicode", &["model", "ok"]);
        t.row(&["M^mf (S₁)", "yes"]);
        t.row(&["plain", "NO"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        // `M^mf (S₁)` is 9 chars; `plain` pads to match in chars, not bytes
        // (trailing cells pad to the column width too).
        assert_eq!(lines[3], "M^mf (S₁)  yes");
        assert_eq!(lines[4], "plain      NO ");
    }
}
