//! Bundled, re-verifiable impossibility witnesses.
//!
//! The layered analysis produces its conclusions from a handful of
//! artifacts: a bivalent initial state (Lemma 3.6), an ever-bivalent chain
//! (Lemma 4.1 / Theorem 4.2), undecided-process counts along it
//! (Lemmas 3.1/3.2), and the layer connectivity premises. An
//! [`ImpossibilityWitness`] packages all of them so a consumer — or a
//! referee — can re-verify the whole argument from scratch against the
//! model, without trusting the engine that produced it.

use crate::connectivity::valence_report;
use crate::model::{ExecutionTrace, TraceError};
use crate::space::{StateId, StateSpace};
use crate::sym::Symmetric;
use crate::valence::{undecided_non_failed, QuotientSolver};
use crate::{LayeredModel, ValenceSolver};

/// A packaged impossibility argument for one model + protocol instance.
#[derive(Clone, Debug)]
pub struct ImpossibilityWitness<S> {
    /// The ever-bivalent chain, starting at a bivalent initial state.
    pub chain: ExecutionTrace<S>,
    /// The analysis horizon used for valence.
    pub horizon: usize,
    /// Undecided non-failed processes at each chain state, recorded at
    /// construction (re-verified by [`verify`](Self::verify)).
    pub undecided: Vec<usize>,
}

/// Why re-verification of a witness failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WitnessError {
    /// A chain step is not a layer transition.
    NotAnExecution {
        /// Index of the offending step.
        step: usize,
    },
    /// The first chain state is not an initial state of the model.
    NotInitial,
    /// A chain state failed the bivalence re-check.
    NotBivalent {
        /// Index of the non-bivalent state.
        index: usize,
    },
    /// The recorded undecided counts do not match the states.
    UndecidedMismatch {
        /// Index of the mismatching state.
        index: usize,
    },
    /// Fewer than `n − t` processes undecided at a bivalent state — the
    /// model/protocol pair violates Lemma 3.1's guarantee (i.e. agreement
    /// is already broken nearby).
    TooFewUndecided {
        /// Index of the offending state.
        index: usize,
    },
    /// A layer along the chain is not valence connected (a Theorem 4.2
    /// premise does not hold where the witness claims it was used).
    LayerDisconnected {
        /// Index of the state whose layer disconnects.
        index: usize,
    },
}

impl<S: Clone + Eq + std::hash::Hash + std::fmt::Debug> ImpossibilityWitness<S> {
    /// Constructs a witness by running the Theorem 4.2 engine for `steps`
    /// layers at the given horizon.
    ///
    /// Returns `None` if no bivalent initial state exists or the chain
    /// cannot be extended to the requested length (in which case the
    /// [checker](crate::check_consensus) will localize the protocol's
    /// violation instead).
    pub fn build<M>(model: &M, horizon: usize, steps: usize) -> Option<Self>
    where
        M: LayeredModel<State = S>,
    {
        let mut solver = ValenceSolver::new(model, horizon);
        let interned = InternedWitness::build_with(&mut solver, steps)?;
        Some(interned.materialize(solver.space()))
    }

    /// Like [`build`](Self::build), but runs the Theorem 4.2 engine over
    /// the symmetry-reduced quotient graph — one orbit representative per
    /// equivalence class of states under process renaming — and then
    /// *de-quotients* the resulting chain back into a genuine execution of
    /// `model` using the per-edge witnessing permutations.
    ///
    /// The returned witness is indistinguishable from a full-space one: it
    /// passes the same [`verify`](Self::verify) (which replays layer
    /// transitions, bivalence, and undecided counts against the model from
    /// scratch, with no knowledge of the quotient). The undecided counts
    /// are recomputed on the de-quotiented states rather than copied from
    /// the representatives.
    ///
    /// # Panics
    ///
    /// Panics if the model's active layering is not equivariant
    /// (`symmetric_layering()` is `false`) — quotienting a non-equivariant
    /// layering would be unsound.
    pub fn build_quotient<M>(model: &M, horizon: usize, steps: usize) -> Option<Self>
    where
        M: Symmetric<State = S>,
    {
        let mut solver = QuotientSolver::new(model, horizon);
        let run = crate::layering::build_bivalent_run_quotient(&mut solver, steps);
        if !run.reached_target() {
            return None;
        }
        let states = solver
            .space()
            .dequotient_path(model, &run.chain)
            .expect("quotient run chains follow cached edges");
        let undecided = states
            .iter()
            .map(|x| undecided_non_failed(model, x).len())
            .collect();
        Some(ImpossibilityWitness {
            chain: ExecutionTrace::new(states),
            horizon,
            undecided,
        })
    }

    /// Re-verifies every part of the witness from scratch.
    ///
    /// # Errors
    ///
    /// Returns the first [`WitnessError`] encountered; `Ok(())` means a
    /// fresh solver agrees with every claim the witness makes.
    pub fn verify<M>(&self, model: &M) -> Result<(), WitnessError>
    where
        M: LayeredModel<State = S>,
    {
        // The execution-shape checks (initial state, layer transitions) are
        // shared with the simulation replay path via `ExecutionTrace::validate`.
        match self.chain.validate(model) {
            Ok(()) => {}
            Err(TraceError::IllegalStep { step }) => {
                return Err(WitnessError::NotAnExecution { step });
            }
            Err(TraceError::NotInitial) => return Err(WitnessError::NotInitial),
        }
        let mut solver = ValenceSolver::new(model, self.horizon);
        let n = model.num_processes();
        let t = model.max_failures();
        for (index, x) in self.chain.states().iter().enumerate() {
            if !solver.is_bivalent(x) {
                return Err(WitnessError::NotBivalent { index });
            }
            let u = undecided_non_failed(model, x).len();
            if self.undecided.get(index) != Some(&u) {
                return Err(WitnessError::UndecidedMismatch { index });
            }
            if u < n - t {
                return Err(WitnessError::TooFewUndecided { index });
            }
            // The premise used at each extension step.
            if index + 1 < self.chain.states().len() {
                let layer = model.successors(x);
                if !valence_report(model, &mut solver, &layer).connected {
                    return Err(WitnessError::LayerDisconnected { index });
                }
            }
        }
        Ok(())
    }

    /// Length of the witnessed bivalent run, in layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chain.steps()
    }

    /// Whether the witness is a single state.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chain.steps() == 0
    }
}

/// The id-typed form of an impossibility witness: the chain is a path of
/// [`StateId`]s into the solver's arena, so engines can pass witnesses
/// around without cloning states. Full states are cloned out only at the
/// verification/serialization boundary via
/// [`materialize`](InternedWitness::materialize).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InternedWitness {
    /// The ever-bivalent chain as arena ids.
    pub chain: Vec<StateId>,
    /// The analysis horizon used for valence.
    pub horizon: usize,
    /// Undecided non-failed processes at each chain state.
    pub undecided: Vec<usize>,
}

impl InternedWitness {
    /// Runs the Theorem 4.2 engine on `solver` for `steps` layers and
    /// packages the resulting id chain, or `None` if the run got stuck.
    pub fn build_with<M: LayeredModel>(
        solver: &mut ValenceSolver<'_, M>,
        steps: usize,
    ) -> Option<Self> {
        let outcome = crate::layering::build_bivalent_run_interned(solver, steps);
        if !outcome.reached_target() {
            return None;
        }
        Some(InternedWitness {
            chain: outcome.chain,
            horizon: solver.horizon(),
            undecided: outcome.undecided_per_state,
        })
    }

    /// Clones the chain's states out of `space` into the state-typed,
    /// self-contained witness that [`ImpossibilityWitness::verify`] checks.
    #[must_use]
    pub fn materialize<M: LayeredModel>(
        &self,
        space: &StateSpace<M>,
    ) -> ImpossibilityWitness<M::State> {
        ImpossibilityWitness {
            chain: ExecutionTrace::new(space.materialize(&self.chain)),
            horizon: self.horizon,
            undecided: self.undecided.clone(),
        }
    }

    /// Length of the witnessed bivalent run, in layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chain.len().saturating_sub(1)
    }

    /// Whether the witness is a single state.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chain.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{flp_diamond, ScriptedModelBuilder};
    use crate::Value;

    fn spine() -> crate::testkit::ScriptedModel {
        // 0 -> 1 -> 2 spine with decided leaves at each level (see
        // layering.rs tests for the same shape).
        let mut b = ScriptedModelBuilder::new(2, 1).initial(&[Value::ZERO, Value::ONE], 0);
        for d in 0..2 {
            let (s, s2) = (d as u32, (d + 1) as u32);
            let (l0, l1) = (100 + d as u32, 200 + d as u32);
            b = b
                .edge(s, s2)
                .edge(s, l0)
                .edge(s, l1)
                .depth(s, d)
                .depth(l0, d + 1)
                .depth(l1, d + 1)
                .decision(l0, 0, Value::ZERO)
                .decision(l1, 1, Value::ONE)
                .agree(s2, l0, 1)
                .agree(s2, l1, 0);
        }
        b.depth(2, 2)
            .edge(2, 102)
            .edge(2, 202)
            .depth(102, 3)
            .depth(202, 3)
            .decision(102, 0, Value::ZERO)
            .decision(202, 1, Value::ONE)
            .build()
    }

    #[test]
    fn witness_builds_and_verifies_on_spine() {
        let m = spine();
        let w = ImpossibilityWitness::build(&m, 3, 2).expect("spine stays bivalent");
        assert_eq!(w.len(), 2);
        assert!(w.verify(&m).is_ok());
    }

    #[test]
    fn witness_build_fails_when_chain_cannot_extend() {
        let m = flp_diamond();
        assert!(ImpossibilityWitness::build(&m, 2, 2).is_none());
    }

    #[test]
    fn tampered_witness_is_rejected() {
        let m = spine();
        let w = ImpossibilityWitness::build(&m, 3, 2).expect("witness");

        // Tamper with the chain: replace the last state with a univalent leaf.
        let mut tampered = w.clone();
        let mut states: Vec<u32> = tampered.chain.states().to_vec();
        let last = states.len() - 1;
        states[last] = 201; // decided leaf: a legal successor of state 1, but univalent
        tampered.chain = ExecutionTrace::new(states);
        tampered.undecided[last] = undecided_non_failed(&m, &201).len();
        assert_eq!(
            tampered.verify(&m),
            Err(WitnessError::NotBivalent { index: last })
        );

        // Tamper with the undecided counts.
        let mut tampered = w.clone();
        tampered.undecided[0] = 0;
        assert_eq!(
            tampered.verify(&m),
            Err(WitnessError::UndecidedMismatch { index: 0 })
        );

        // Tamper with the path legality.
        let mut tampered = w;
        let states = vec![0u32, 2];
        tampered.chain = ExecutionTrace::new(states);
        tampered.undecided.truncate(2);
        assert_eq!(
            tampered.verify(&m),
            Err(WitnessError::NotAnExecution { step: 0 })
        );
    }
}
