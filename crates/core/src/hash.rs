//! A hand-rolled SHA-256 — the integrity hash for every persisted artifact.
//!
//! Two subsystems address bytes by this hash: the certificate store in
//! `layered-cert` (the file name *is* the SHA-256 of the certificate's
//! canonical bytes) and the arena snapshots in [`space::snapshot`]
//! (the header names the hash of the rest of the file), so any flipped
//! byte — on disk, in transit, or from a buggy encoder — changes the
//! address and is caught by a re-hash on read. FNV (used for per-state
//! fingerprints in [`artifact`](crate::artifact)) is too easy to collide
//! for an address; SHA-256 is implemented here rather than pulled in
//! because the workspace builds `--offline` with no registry dependencies.
//!
//! The implementation is the plain FIPS 180-4 compression function over
//! 64-byte blocks with standard Merkle–Damgård padding, checked against
//! the published test vectors below.
//!
//! [`space::snapshot`]: crate::space::snapshot

/// First 32 bits of the fractional parts of the square roots of the first
/// 8 primes — the SHA-256 initial hash value (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// First 32 bits of the fractional parts of the cube roots of the first 64
/// primes — the SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// One compression round over a 64-byte block (FIPS 180-4 §6.2.2).
fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (t, chunk) in block.chunks_exact(4).enumerate() {
        w[t] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = big_s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// SHA-256 of `bytes` as the raw 32-byte digest.
#[must_use]
pub fn sha256(bytes: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let mut blocks = bytes.chunks_exact(64);
    for block in blocks.by_ref() {
        compress(&mut state, block);
    }
    // Padding: 0x80, zeros, and the 64-bit big-endian message bit length.
    let mut tail = [0u8; 128];
    let rem = blocks.remainder();
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let bit_len = (bytes.len() as u64).wrapping_mul(8);
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    for block in tail[..tail_len].chunks_exact(64) {
        compress(&mut state, block);
    }
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(state) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// SHA-256 of `bytes` as 64 lowercase hex characters — the form used as a
/// certificate address (file name, URL path segment, index field) and as
/// the `sha256` field of an arena snapshot header.
#[must_use]
pub fn sha256_hex(bytes: &[u8]) -> String {
    let digest = sha256(bytes);
    let mut out = String::with_capacity(64);
    for b in digest {
        out.push(char::from_digit(u32::from(b >> 4), 16).unwrap_or('0'));
        out.push(char::from_digit(u32::from(b & 0xf), 16).unwrap_or('0'));
    }
    out
}

/// Whether `s` is a well-formed content address: exactly 64 lowercase
/// hex characters.
#[must_use]
pub fn is_hash(s: &str) -> bool {
    s.len() == 64
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_test_vectors() {
        // FIPS 180-4 / NIST CAVP known-answer vectors.
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256_hex(&msg),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Messages straddling the 55/56/63/64-byte padding edge cases all
        // hash without panicking and produce distinct digests.
        let mut seen = std::collections::BTreeSet::new();
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let msg = vec![0x5au8; len];
            assert!(seen.insert(sha256_hex(&msg)), "collision at len {len}");
        }
    }

    #[test]
    fn is_hash_accepts_addresses_only() {
        let h = sha256_hex(b"x");
        assert!(is_hash(&h));
        assert!(!is_hash(&h[..63]));
        assert!(!is_hash(&format!("{}G", &h[..63])));
        assert!(!is_hash(&h.to_uppercase()));
        assert!(!is_hash(""));
    }
}
