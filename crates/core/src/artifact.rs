//! Canonical, replayable serialization of proof artifacts.
//!
//! The engines in this workspace produce artifacts whose states are
//! model-specific types ([`ExecutionTrace`] chains, [`ImpossibilityWitness`]
//! bundles). Persisting them naively would require every protocol local
//! state to define a wire format. Instead, this module serializes a trace
//! *relative to its model* as the data needed to replay it:
//!
//! * the input assignment of the initial state, and
//! * for each step, the **index** of the chosen successor within
//!   `model.successors(x)` (whose order is deterministic under the repo's
//!   determinism contract — the same contract the seq ≡ par bit-identity
//!   tests enforce).
//!
//! Decoding replays the path from `initial_state(inputs)`, so a decoded
//! trace is a genuine `S`-execution *by construction*. To detect drift
//! (e.g. a successor-ordering change between engine versions) every state
//! additionally carries a 64-bit FNV-1a fingerprint of its canonical
//! `Debug` rendering, re-checked on decode.
//!
//! The JSON produced here is the body of the certificates in
//! `crates/cert`; the content hash of the full certificate makes the
//! encoding tamper-evident end to end.

use crate::telemetry::json::Json;
use crate::witness::ImpossibilityWitness;
use crate::{ExecutionTrace, LayeredModel, Value};

/// Why encoding or decoding an artifact failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// A required field is missing or has the wrong JSON type.
    Malformed(&'static str),
    /// The trace's first state is not `initial_state(inputs)`.
    NotInitial,
    /// A step's state is not among its predecessor's successors (encode),
    /// or a path index is out of range for the layer (decode).
    BadStep {
        /// Index of the offending step.
        step: usize,
    },
    /// A replayed state's fingerprint differs from the recorded one —
    /// the model or its successor ordering changed since encoding.
    FingerprintMismatch {
        /// Index of the first mismatching state.
        index: usize,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Malformed(what) => write!(f, "malformed artifact JSON: {what}"),
            ArtifactError::NotInitial => write!(f, "first state is not initial_state(inputs)"),
            ArtifactError::BadStep { step } => write!(f, "step {step} is not a layer transition"),
            ArtifactError::FingerprintMismatch { index } => {
                write!(f, "state {index} fingerprint mismatch (model drift?)")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

/// 64-bit FNV-1a over `bytes` — the cheap content fingerprint used for
/// per-state drift detection (the store's collision-resistant hash is the
/// certificate-level SHA in `crates/cert`).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The fingerprint of one model state: FNV-1a of its `Debug` rendering,
/// as a fixed-width lowercase hex string (JSON numbers are `f64`-backed,
/// so 64-bit hashes travel as strings).
#[must_use]
pub fn state_fingerprint<S: std::fmt::Debug>(state: &S) -> String {
    format!("{:016x}", fnv1a64(format!("{state:?}").as_bytes()))
}

fn inputs_to_json(inputs: &[Value]) -> Json {
    Json::Array(
        inputs
            .iter()
            .map(|v| Json::from(u64::from(v.get())))
            .collect(),
    )
}

fn inputs_from_json(json: &Json) -> Result<Vec<Value>, ArtifactError> {
    let Json::Array(items) = json else {
        return Err(ArtifactError::Malformed("inputs must be an array"));
    };
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .map(Value::new)
                .ok_or(ArtifactError::Malformed("inputs must be small integers"))
        })
        .collect()
}

fn u64s_from_json(json: &Json, what: &'static str) -> Result<Vec<u64>, ArtifactError> {
    let Json::Array(items) = json else {
        return Err(ArtifactError::Malformed(what));
    };
    items
        .iter()
        .map(|v| v.as_u64().ok_or(ArtifactError::Malformed(what)))
        .collect()
}

/// Encodes `trace` relative to `model` as a replayable path object:
/// `{"inputs": […], "path": […], "fp": […]}`.
///
/// # Errors
///
/// [`ArtifactError::NotInitial`] if the first state is not the model's
/// initial state for its own inputs; [`ArtifactError::BadStep`] if some
/// step is not a layer transition.
pub fn trace_to_json<M: LayeredModel>(
    model: &M,
    trace: &ExecutionTrace<M::State>,
) -> Result<Json, ArtifactError> {
    let inputs = model.inputs_of(trace.first());
    if *trace.first() != model.initial_state(&inputs) {
        return Err(ArtifactError::NotInitial);
    }
    let mut path = Vec::with_capacity(trace.steps());
    for (step, w) in trace.states().windows(2).enumerate() {
        let layer = model.successors(&w[0]);
        let index = layer
            .iter()
            .position(|y| *y == w[1])
            .ok_or(ArtifactError::BadStep { step })?;
        path.push(Json::from(index as u64));
    }
    let fp = trace
        .states()
        .iter()
        .map(|x| Json::String(state_fingerprint(x)))
        .collect();
    Ok(Json::Object(vec![
        ("inputs".into(), inputs_to_json(&inputs)),
        ("path".into(), Json::Array(path)),
        ("fp".into(), Json::Array(fp)),
    ]))
}

/// Decodes a trace previously encoded by [`trace_to_json`], replaying the
/// successor-index path from `initial_state(inputs)`.
///
/// The result is a genuine `S`-execution by construction; the recorded
/// fingerprints are re-checked so a successor-ordering change between
/// engine versions surfaces as [`ArtifactError::FingerprintMismatch`]
/// instead of a silently different execution.
///
/// # Errors
///
/// Any [`ArtifactError`]: malformed JSON, out-of-range path index, or a
/// fingerprint mismatch.
pub fn trace_from_json<M: LayeredModel>(
    model: &M,
    json: &Json,
) -> Result<ExecutionTrace<M::State>, ArtifactError> {
    let inputs = inputs_from_json(
        json.get("inputs")
            .ok_or(ArtifactError::Malformed("missing inputs"))?,
    )?;
    if inputs.len() != model.num_processes() {
        return Err(ArtifactError::Malformed("inputs length != n"));
    }
    let path = u64s_from_json(
        json.get("path")
            .ok_or(ArtifactError::Malformed("missing path"))?,
        "path must be an index array",
    )?;
    let fp = match json.get("fp") {
        Some(Json::Array(items)) => items
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or(ArtifactError::Malformed("fp must hold hex strings"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err(ArtifactError::Malformed("fp must be an array")),
        None => Vec::new(),
    };
    if !fp.is_empty() && fp.len() != path.len() + 1 {
        return Err(ArtifactError::Malformed("fp length != path length + 1"));
    }

    let mut trace = ExecutionTrace::new(vec![model.initial_state(&inputs)]);
    for (step, &index) in path.iter().enumerate() {
        let layer = model.successors(trace.last());
        let index = usize::try_from(index).map_err(|_| ArtifactError::BadStep { step })?;
        let next = layer
            .into_iter()
            .nth(index)
            .ok_or(ArtifactError::BadStep { step })?;
        trace.push(next);
    }
    for (index, want) in fp.iter().enumerate() {
        if state_fingerprint(&trace.states()[index]) != *want {
            return Err(ArtifactError::FingerprintMismatch { index });
        }
    }
    Ok(trace)
}

/// Encodes a witness as its path-encoded chain plus the horizon and the
/// recorded undecided counts:
/// `{"inputs": …, "path": …, "fp": …, "horizon": …, "undecided": […]}`.
///
/// # Errors
///
/// As [`trace_to_json`] on the chain.
pub fn witness_to_json<M: LayeredModel>(
    model: &M,
    witness: &ImpossibilityWitness<M::State>,
) -> Result<Json, ArtifactError> {
    let Json::Object(mut members) = trace_to_json(model, &witness.chain)? else {
        unreachable!("trace_to_json returns an object");
    };
    members.push(("horizon".into(), Json::from(witness.horizon as u64)));
    members.push((
        "undecided".into(),
        Json::Array(
            witness
                .undecided
                .iter()
                .map(|&u| Json::from(u as u64))
                .collect(),
        ),
    ));
    Ok(Json::Object(members))
}

/// Decodes a witness previously encoded by [`witness_to_json`].
///
/// The chain is replayed via [`trace_from_json`]; the caller decides how
/// much semantic re-verification to run on top (see
/// [`ImpossibilityWitness::verify`] for the full re-check).
///
/// # Errors
///
/// Any [`ArtifactError`] from the chain, or malformed witness fields.
pub fn witness_from_json<M: LayeredModel>(
    model: &M,
    json: &Json,
) -> Result<ImpossibilityWitness<M::State>, ArtifactError> {
    let chain = trace_from_json(model, json)?;
    let horizon = json
        .get("horizon")
        .and_then(Json::as_u64)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or(ArtifactError::Malformed("missing horizon"))?;
    let undecided = u64s_from_json(
        json.get("undecided")
            .ok_or(ArtifactError::Malformed("missing undecided"))?,
        "undecided must be a count array",
    )?
    .into_iter()
    .map(|u| usize::try_from(u).map_err(|_| ArtifactError::Malformed("undecided count too large")))
    .collect::<Result<Vec<_>, _>>()?;
    if undecided.len() != chain.states().len() {
        return Err(ArtifactError::Malformed("undecided length != chain length"));
    }
    Ok(ImpossibilityWitness {
        chain,
        horizon,
        undecided,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::CounterModel;

    fn trace_of_len(
        model: &CounterModel,
        steps: usize,
    ) -> ExecutionTrace<<CounterModel as LayeredModel>::State> {
        let mut trace = ExecutionTrace::new(vec![model.initial_states().remove(1)]);
        for _ in 0..steps {
            let next = model.successors(trace.last()).remove(1);
            trace.push(next);
        }
        trace
    }

    #[test]
    fn trace_round_trips() {
        let m = CounterModel::new(2, 5);
        let trace = trace_of_len(&m, 3);
        let json = trace_to_json(&m, &trace).expect("encodable");
        let back = trace_from_json(&m, &json).expect("decodable");
        assert_eq!(back, trace);
    }

    #[test]
    fn round_trip_survives_json_text() {
        let m = CounterModel::new(2, 5);
        let trace = trace_of_len(&m, 2);
        let text = trace_to_json(&m, &trace).expect("encodable").to_string();
        let parsed = Json::parse(&text).expect("valid json");
        assert_eq!(trace_from_json(&m, &parsed).expect("decodable"), trace);
    }

    #[test]
    fn unrooted_trace_is_not_encodable() {
        let m = CounterModel::new(2, 5);
        let x0 = m.initial_states().remove(0);
        let x1 = m.successors(&x0).remove(0);
        let x2 = m.successors(&x1).remove(0);
        let trace = ExecutionTrace::new(vec![x1, x2]);
        assert_eq!(trace_to_json(&m, &trace), Err(ArtifactError::NotInitial));
    }

    #[test]
    fn out_of_range_path_index_is_rejected() {
        let m = CounterModel::new(2, 5);
        let trace = trace_of_len(&m, 1);
        let Json::Object(mut members) = trace_to_json(&m, &trace).expect("encodable") else {
            panic!("object");
        };
        for (k, v) in &mut members {
            if k == "path" {
                *v = Json::Array(vec![Json::from(9999u64)]);
            }
        }
        assert_eq!(
            trace_from_json(&m, &Json::Object(members)),
            Err(ArtifactError::BadStep { step: 0 })
        );
    }

    #[test]
    fn fingerprint_mismatch_is_detected() {
        let m = CounterModel::new(2, 5);
        let trace = trace_of_len(&m, 1);
        let Json::Object(mut members) = trace_to_json(&m, &trace).expect("encodable") else {
            panic!("object");
        };
        for (k, v) in &mut members {
            if k == "fp" {
                *v = Json::Array(vec![
                    Json::String("0".repeat(16)),
                    Json::String("0".repeat(16)),
                ]);
            }
        }
        assert_eq!(
            trace_from_json(&m, &Json::Object(members)),
            Err(ArtifactError::FingerprintMismatch { index: 0 })
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
