//! Trait plumbing for the adversary-scheduler simulation runtime.
//!
//! The exhaustive engines in this crate reason about *all* runs `R(A, M)` of
//! a protocol by enumerating every layer successor. That is exact but caps
//! out around `n ≤ 3`. The `layered-sim` crate takes the complementary view
//! of the same objects — Gafni–Losa's adversary-vs-protocol game — and
//! executes *individual* long runs under concrete adversary strategies at
//! sizes the enumerator cannot touch.
//!
//! The bridge between the two worlds is [`SimModel`]: a
//! [`LayeredModel`](crate::LayeredModel) that additionally exposes its layer
//! as a set of compact, directly-applicable *moves* (environment actions)
//! instead of only as the materialized successor set. Every move yielded by
//! [`clean_move`](SimModel::clean_move), [`fault_move`](SimModel::fault_move)
//! or [`sample_move`](SimModel::sample_move) must satisfy
//!
//! ```text
//! apply_move(x, m) ∈ S(x)
//! ```
//!
//! so every simulated run is a genuine `S`-execution — re-checkable on small
//! instances against [`LayeredModel::successors`] via
//! [`ExecutionTrace::validate`](crate::ExecutionTrace::validate).
//!
//! Moves also [encode](SimModel::encode_move) into model-agnostic
//! [`MoveRecord`]s, which is what schedules serialize into JSON as and what
//! fault-injection counters are derived from.

use std::fmt::Debug;
use std::hash::Hash;

use crate::telemetry::json::Json;
use crate::{LayeredModel, Pid};

/// A compact, model-agnostic description of one layer move, for schedule
/// serialization and fault accounting.
///
/// The `kind` vocabulary is chosen by each model (e.g. `"clean"`, `"crash"`,
/// `"omit"`, `"absent"`, `"staggered"`, `"seq"`, `"conc"`, `"drop"`); `args`
/// carries the move's parameters (process indices, prefix bounds, orders) as
/// plain integers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MoveRecord {
    /// Model-chosen move tag.
    pub kind: &'static str,
    /// Move parameters, flattened to integers (0-based process indices).
    pub args: Vec<u64>,
    /// Whether the move injects a fault (silences, crashes or skips a
    /// process), as opposed to merely picking a fault-free scheduling order.
    pub fault: bool,
}

impl MoveRecord {
    /// A fault-free record with no parameters.
    #[must_use]
    pub fn clean() -> Self {
        MoveRecord {
            kind: "clean",
            args: Vec::new(),
            fault: false,
        }
    }

    /// The record as a JSON object `{"kind": …, "args": […], "fault": …}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("kind".into(), Json::String(self.kind.to_string())),
            (
                "args".into(),
                Json::Array(self.args.iter().map(|&a| Json::from(a)).collect()),
            ),
            ("fault".into(), Json::from(self.fault)),
        ])
    }

    /// A canonical single-line rendering (`kind(arg,arg,…)`), used for
    /// byte-exact schedule comparison in determinism tests.
    #[must_use]
    pub fn display(&self) -> String {
        let args: Vec<String> = self.args.iter().map(u64::to_string).collect();
        format!("{}({})", self.kind, args.join(","))
    }
}

/// A [`LayeredModel`] whose layer moves can be constructed directly, without
/// enumerating the full successor set.
///
/// This is what lets the simulation runtime execute runs at `n = 16` or
/// `n = 64` in models whose layers have `n²` (synchronous) or `n!`
/// (permutation) members: the adversary *builds* one legal move per layer
/// instead of choosing from a materialized list.
///
/// # Contract
///
/// For every state `x` reachable in the model and every move `m` returned by
/// [`clean_move`](Self::clean_move), [`fault_move`](Self::fault_move) or
/// [`sample_move`](Self::sample_move) at `x`:
///
/// * `apply_move(x, m)` is a member of `successors(x)` (simulated runs are
///   `S`-executions);
/// * `apply_move` is deterministic: equal `(x, m)` give equal results;
/// * `clean_move` never injects a fault (its record satisfies
///   `!record.fault`), so replacing any move by the clean move — as schedule
///   shrinking does — can only remove failures, never add them.
pub trait SimModel: LayeredModel {
    /// The model-specific move (environment action) type.
    type Move: Clone + Eq + Hash + Debug;

    /// The canonical quiet move at `x`: a failure-free round / a full
    /// scheduling order. Always legal.
    fn clean_move(&self, x: &Self::State) -> Self::Move;

    /// A fault move directed at process `target`, with a model-specific
    /// `intensity` knob (message-prefix bound, rotation, stagger point, …).
    ///
    /// Returns `None` when no such fault is legal at `x` (e.g. the failure
    /// budget is exhausted or `target` is already crashed) — adversaries
    /// fall back to [`clean_move`](Self::clean_move) in that case.
    fn fault_move(&self, x: &Self::State, target: Pid, intensity: usize) -> Option<Self::Move>;

    /// Samples a legal move at `x`. `bits(bound)` must return a uniform draw
    /// in `[0, bound)`; the model decides how many draws to consume, and
    /// must consume the same number for equal states (determinism of replay
    /// from a seed).
    fn sample_move(&self, x: &Self::State, bits: &mut dyn FnMut(u64) -> u64) -> Self::Move;

    /// Applies a move, producing the unique successor it selects.
    ///
    /// # Panics
    ///
    /// May panic if `mv` is not legal at `x` (moves must come from the three
    /// constructors above, evaluated at `x`).
    fn apply_move(&self, x: &Self::State, mv: &Self::Move) -> Self::State;

    /// Encodes a move for serialization and fault accounting.
    fn encode_move(&self, mv: &Self::Move) -> MoveRecord;

    /// Decodes the `(kind, args)` of a [`MoveRecord`] back into a move —
    /// the inverse of [`encode_move`](Self::encode_move), used to replay
    /// schedules deserialized from JSON (certificate stores, `--json`
    /// records).
    ///
    /// Returns `None` for an unknown kind or a malformed argument list.
    /// Decoded moves must satisfy `decode_move(encode_move(m)) == Some(m)`
    /// for every move the three constructors produce.
    fn decode_move(&self, kind: &str, args: &[u64]) -> Option<Self::Move>;

    /// Whether the move injects a fault. Defaults to the encoded record's
    /// `fault` flag.
    fn is_fault(&self, mv: &Self::Move) -> bool {
        self.encode_move(mv).fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_record_shape() {
        let r = MoveRecord::clean();
        assert_eq!(r.kind, "clean");
        assert!(!r.fault);
        assert_eq!(r.display(), "clean()");
    }

    #[test]
    fn record_json_round_trips() {
        let r = MoveRecord {
            kind: "omit",
            args: vec![2, 3],
            fault: true,
        };
        let rendered = r.to_json().to_string();
        let parsed = Json::parse(&rendered).expect("valid json");
        assert_eq!(parsed["kind"].as_str(), Some("omit"));
        assert_eq!(parsed["args"][1].as_u64(), Some(3));
        assert_eq!(parsed["fault"].as_bool(), Some(true));
        assert_eq!(r.display(), "omit(2,3)");
    }
}
