//! State-space census: quantitative structure of a layered model.
//!
//! The submodels the layerings induce are drastically smaller than the full
//! models (that is their point — compare `S₁`'s `n² + 1` actions with
//! `M^mf`'s `n·2ⁿ`). This module measures the induced state spaces level by
//! level: distinct states, layer sizes, deduplication factors, and decided
//! fractions; the experiment harness tabulates them per model.

use std::collections::HashSet;

use crate::{LayeredModel, Pid};

/// Census of one depth level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelCensus {
    /// Depth (layers from the initial states).
    pub depth: usize,
    /// Distinct states at this depth.
    pub states: usize,
    /// Successor edges leaving this level (with multiplicity).
    pub edges: usize,
    /// Minimum layer size over the level.
    pub min_layer: usize,
    /// Maximum layer size over the level.
    pub max_layer: usize,
    /// States at this level in which at least one process has decided.
    pub with_decisions: usize,
}

impl LevelCensus {
    /// Average layer size (edges per state).
    #[must_use]
    pub fn avg_layer(&self) -> f64 {
        if self.states == 0 {
            0.0
        } else {
            self.edges as f64 / self.states as f64
        }
    }

    /// Deduplication factor: edges emitted vs. distinct states produced at
    /// the next level (filled by [`census`]; `1.0` means no merging).
    #[must_use]
    pub fn dedup_factor(&self, next_states: usize) -> f64 {
        if next_states == 0 {
            0.0
        } else {
            self.edges as f64 / next_states as f64
        }
    }
}

/// Census of a model's induced state space, level by level.
pub fn census<M: LayeredModel>(model: &M, depth: usize) -> Vec<LevelCensus> {
    let n = model.num_processes();
    let mut out = Vec::with_capacity(depth + 1);
    let mut level = model.initial_states();
    for d in 0..=depth {
        let mut edges = 0usize;
        let mut min_layer = usize::MAX;
        let mut max_layer = 0usize;
        let mut next = Vec::new();
        let mut seen = HashSet::new();
        let with_decisions = level
            .iter()
            .filter(|x| Pid::all(n).any(|i| model.decision(x, i).is_some()))
            .count();
        if d < depth {
            for x in &level {
                let layer = model.successors(x);
                edges += layer.len();
                min_layer = min_layer.min(layer.len());
                max_layer = max_layer.max(layer.len());
                for y in layer {
                    if seen.insert(y.clone()) {
                        next.push(y);
                    }
                }
            }
        }
        out.push(LevelCensus {
            depth: d,
            states: level.len(),
            edges,
            min_layer: if min_layer == usize::MAX { 0 } else { min_layer },
            max_layer,
            with_decisions,
        });
        level = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{flp_diamond, CounterModel};

    #[test]
    fn counter_census_counts() {
        let m = CounterModel::new(2, 3);
        let rows = census(&m, 2);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].depth, 0);
        assert_eq!(rows[0].states, 4); // 2^2 inputs
        assert_eq!(rows[0].edges, 12); // 3 successors each
        assert_eq!(rows[0].min_layer, 3);
        assert_eq!(rows[0].max_layer, 3);
        assert_eq!(rows[1].states, 12); // labels distinct per input vector
        assert_eq!(rows[0].with_decisions, 0);
        // Terminal level measures no edges.
        assert_eq!(rows[2].edges, 0);
    }

    #[test]
    fn diamond_census_sees_decisions() {
        let m = flp_diamond();
        let rows = census(&m, 2);
        assert_eq!(rows[0].states, 1);
        assert_eq!(rows[1].states, 2);
        assert_eq!(rows[2].states, 2);
        assert_eq!(rows[2].with_decisions, 2);
        assert_eq!(rows[1].with_decisions, 0);
    }

    #[test]
    fn avg_and_dedup_factors() {
        let m = CounterModel::new(2, 3);
        let rows = census(&m, 1);
        assert!((rows[0].avg_layer() - 3.0).abs() < 1e-9);
        assert!((rows[0].dedup_factor(rows[1].states) - 1.0).abs() < 1e-9);
    }
}
