//! State-space census: quantitative structure of a layered model.
//!
//! The submodels the layerings induce are drastically smaller than the full
//! models (that is their point — compare `S₁`'s `n² + 1` actions with
//! `M^mf`'s `n·2ⁿ`). This module measures the induced state spaces level by
//! level: distinct states, layer sizes, deduplication factors, and decided
//! fractions; the experiment harness tabulates them per model.

use std::collections::HashSet;

use crate::telemetry::{Observer, Span, NOOP};
use crate::{LayeredModel, Pid};

/// Census of one depth level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelCensus {
    /// Depth (layers from the initial states).
    pub depth: usize,
    /// Distinct states at this depth.
    pub states: usize,
    /// Successor edges leaving this level (with multiplicity).
    pub edges: usize,
    /// Minimum layer size over the level.
    pub min_layer: usize,
    /// Maximum layer size over the level.
    pub max_layer: usize,
    /// States at this level in which at least one process has decided.
    pub with_decisions: usize,
}

impl LevelCensus {
    /// Average layer size (edges per state).
    #[must_use]
    pub fn avg_layer(&self) -> f64 {
        if self.states == 0 {
            0.0
        } else {
            self.edges as f64 / self.states as f64
        }
    }

    /// Deduplication factor: edges emitted vs. distinct states produced at
    /// the next level (filled by [`census`]; `1.0` means no merging).
    #[must_use]
    pub fn dedup_factor(&self, next_states: usize) -> f64 {
        if next_states == 0 {
            0.0
        } else {
            self.edges as f64 / next_states as f64
        }
    }
}

/// Census of a model's induced state space, level by level.
pub fn census<M: LayeredModel>(model: &M, depth: usize) -> Vec<LevelCensus> {
    census_with(model, depth, &NOOP)
}

/// [`census`] with telemetry: states visited, dedup hits, frontier widths
/// and decided-state counts are reported to `obs`.
pub fn census_with<M: LayeredModel>(
    model: &M,
    depth: usize,
    obs: &dyn Observer,
) -> Vec<LevelCensus> {
    let _span = Span::enter(obs, "stats.census");
    let n = model.num_processes();
    let mut out = Vec::with_capacity(depth + 1);
    let mut level = model.initial_states();
    for d in 0..=depth {
        obs.gauge("engine.frontier_width", level.len() as u64);
        let mut edges = 0usize;
        let mut min_layer = usize::MAX;
        let mut max_layer = 0usize;
        let mut next = Vec::new();
        let mut seen = HashSet::new();
        let with_decisions = level
            .iter()
            .filter(|x| Pid::all(n).any(|i| model.decision(x, i).is_some()))
            .count();
        obs.counter("engine.states_visited", level.len() as u64);
        obs.counter("census.decided_states", with_decisions as u64);
        if d < depth {
            for x in &level {
                let layer = model.successors(x);
                edges += layer.len();
                min_layer = min_layer.min(layer.len());
                max_layer = max_layer.max(layer.len());
                for y in layer {
                    if seen.insert(y.clone()) {
                        next.push(y);
                    } else {
                        obs.counter("engine.dedup_hits", 1);
                    }
                }
            }
        }
        out.push(LevelCensus {
            depth: d,
            states: level.len(),
            edges,
            min_layer: if min_layer == usize::MAX {
                0
            } else {
                min_layer
            },
            max_layer,
            with_decisions,
        });
        level = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{flp_diamond, CounterModel};

    #[test]
    fn counter_census_counts() {
        let m = CounterModel::new(2, 3);
        let rows = census(&m, 2);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].depth, 0);
        assert_eq!(rows[0].states, 4); // 2^2 inputs
        assert_eq!(rows[0].edges, 12); // 3 successors each
        assert_eq!(rows[0].min_layer, 3);
        assert_eq!(rows[0].max_layer, 3);
        assert_eq!(rows[1].states, 12); // labels distinct per input vector
        assert_eq!(rows[0].with_decisions, 0);
        // Terminal level measures no edges.
        assert_eq!(rows[2].edges, 0);
    }

    #[test]
    fn diamond_census_sees_decisions() {
        let m = flp_diamond();
        let rows = census(&m, 2);
        assert_eq!(rows[0].states, 1);
        assert_eq!(rows[1].states, 2);
        assert_eq!(rows[2].states, 2);
        assert_eq!(rows[2].with_decisions, 2);
        assert_eq!(rows[1].with_decisions, 0);
    }

    #[test]
    fn avg_and_dedup_factors() {
        let m = CounterModel::new(2, 3);
        let rows = census(&m, 1);
        assert!((rows[0].avg_layer() - 3.0).abs() < 1e-9);
        assert!((rows[0].dedup_factor(rows[1].states) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn census_invariants_hold_on_known_models() {
        for rows in [
            census(&flp_diamond(), 2),
            census(&CounterModel::new(3, 2), 3),
        ] {
            for (i, r) in rows.iter().enumerate() {
                // Decided states are a subset of the level's states.
                assert!(
                    r.with_decisions <= r.states,
                    "level {i}: {} decided > {} states",
                    r.with_decisions,
                    r.states
                );
                // Layer bounds bracket the average.
                assert!(r.min_layer <= r.max_layer, "level {i}: min > max layer");
                if let Some(next) = rows.get(i + 1) {
                    // Merging can only shrink: the dedup factor is ≥ 1 once
                    // edges flow, i.e. edges ≥ distinct next-level states.
                    assert!(
                        r.edges >= next.states,
                        "level {i}: {} edges < {} next states",
                        r.edges,
                        next.states
                    );
                    assert!(r.dedup_factor(next.states) >= 1.0, "level {i}");
                }
            }
        }
    }

    #[test]
    fn census_with_records_engine_telemetry() {
        use crate::telemetry::MetricsRegistry;
        let m = CounterModel::new(2, 3);
        let reg = MetricsRegistry::new();
        let rows = census_with(&m, 2, &reg);
        let snap = reg.snapshot();
        let visited: usize = rows.iter().map(|r| r.states).sum();
        assert_eq!(snap.counter("engine.states_visited"), visited as u64);
        assert_eq!(
            snap.gauge_max("engine.frontier_width"),
            rows.iter().map(|r| r.states).max().unwrap_or(0) as u64
        );
        assert_eq!(snap.spans["stats.census"].count, 1);
    }
}
