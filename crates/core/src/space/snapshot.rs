//! Persistent arenas: versioned, integrity-hashed snapshots of
//! [`StateSpace`] and [`QuotientSpace`].
//!
//! # Wire format
//!
//! A snapshot is one blob: a canonical single-line JSON header, a `\n`
//! terminator, then dense little-endian binary sections.
//!
//! ```text
//! {"body_len":…,"depth":…,"edges":…,"format":"layered-arena","horizon":…,
//!  "kind":"state"|"quotient","layering":…,"model":…,"n":…,"packed":0|1,
//!  "protocol":…,"sha256":"…","states":…,"version":2}\n
//! <body bytes>
//! ```
//!
//! The body sections, in order:
//!
//! 1. **States** — each interned state in id order. When the header's
//!    `packed` flag is 0, each state is encoded by its [`SnapshotState`]
//!    codec (the version-1 layout). When it is 1 (a packed arena), each
//!    state is a `u8` tag: `0` followed by the 16-byte little-endian packed
//!    word, or `1` followed by the [`SnapshotState`] encoding of a state
//!    that spilled the codec. The loader follows the *blob's* flag, so a
//!    boxed snapshot loads into a boxed arena even under a packing model.
//! 2. **Intern index** — `u32` bucket count, then each `(u64 hash,
//!    u32 len, len × u32 id)` bucket sorted by hash. The index is fully
//!    derivable from section 1; storing it lets the loader cross-check the
//!    rebuilt index instead of trusting either side.
//! 3. **CSR successor cache** — per state a `u8` present flag followed
//!    (when present) by the `u32` start/len of its successor slice; then
//!    the `u32` edge count and the edge ids as `u32`.
//! 4. **Fingerprints** — the `u64` raw-successor-list fingerprint of every
//!    state (0 for uncached rows).
//! 5. **Quotient only** — each state's `u64` orbit size, then one
//!    witnessing permutation per edge (`u8` degree + degree image bytes).
//!
//! # Integrity
//!
//! The header's `sha256` field is the [`hash`](crate::hash) of the
//! *entire rest of the file*: the canonical header rendered **without**
//! the `sha256` key, the `\n`, and the body. Every byte of a snapshot is
//! therefore tamper-evident — flip one and either the header no longer
//! parses to the same canonical form (hash input moves) or the body
//! digest moves; both are [`SnapshotError::HashMismatch`]. The hash is
//! checked before any body byte is decoded.
//!
//! # Determinism
//!
//! Saving is a pure function of the arena (the index section is sorted by
//! bucket hash; everything else is already in id or edge order), and
//! loading reconstructs the arena exactly — so `save(load(bytes)) ==
//! bytes`, byte for byte. A solver resumed from a snapshot interns states
//! and walks CSR rows through the same code paths as a cold one, which is
//! what keeps resumed sequential and parallel scans bit-identical.

use std::collections::BTreeMap;
use std::hash::Hash;

use super::pack::{StatePacker, SPILL_TAG};
use super::{QuotientSpace, ShardedIndex, Slot, StateId, StateSpace, Store, SuccRange};
use crate::hash::{is_hash, sha256_hex};
use crate::sym::{PidPerm, Symmetric};
use crate::telemetry::json::Json;
use crate::telemetry::{clock, Observer, Span};
use crate::{LayeredModel, Pid, Value};

/// The sorted bucket view the index sections are encoded from and checked
/// against (hash → dense ids, ascending).
type IndexBuckets = BTreeMap<u64, Vec<StateId>>;

/// Snapshot format version this module writes and accepts. Version 2 added
/// the header's `packed` flag and the tagged packed-word states section.
pub const SNAPSHOT_VERSION: u64 = 2;

/// The `format` field every snapshot header carries.
pub const SNAPSHOT_FORMAT: &str = "layered-arena";

/// What went wrong while decoding a snapshot. Loading never panics on
/// malformed input — every structural defect maps to a variant here.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// The header line is missing, non-UTF-8, unparseable, or lacks a
    /// required field (the payload names which).
    BadHeader(&'static str),
    /// The header's `version` is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u64),
    /// The header's `kind` does not match the arena being loaded.
    WrongKind {
        /// Kind the loader expected (`"state"` or `"quotient"`).
        expected: &'static str,
        /// Kind the header declared.
        found: String,
    },
    /// The integrity hash in the header does not match the file contents.
    HashMismatch,
    /// The body ended before a section was fully decoded.
    Truncated,
    /// A body section decoded but violates an invariant (the payload names
    /// which).
    Malformed(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadHeader(what) => write!(f, "bad snapshot header: {what}"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v}: this build reads version \
                     {SNAPSHOT_VERSION}; regenerate the snapshot with --snapshot"
                )
            }
            SnapshotError::WrongKind { expected, found } => {
                write!(f, "snapshot kind `{found}` where `{expected}` was expected")
            }
            SnapshotError::HashMismatch => write!(f, "snapshot integrity hash mismatch"),
            SnapshotError::Truncated => write!(f, "snapshot body truncated"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot body: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The provenance a snapshot header records: which model instance the
/// arena was built for and how far it was explored. Loaders use it to
/// decide compatibility (same model/protocol/n ⇒ resume; different
/// horizon ⇒ differential refresh; anything else ⇒ cold scan).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArenaMeta {
    /// Model key (e.g. `sync-mobile`).
    pub model: String,
    /// Protocol the model ran (e.g. `floodmin`).
    pub protocol: String,
    /// Number of processes.
    pub n: u64,
    /// Valence horizon the arena was explored under. A horizon change is a
    /// protocol change (deadline-driven protocols decide *at* the horizon)
    /// and calls for a differential refresh, not a plain resume.
    pub horizon: u64,
    /// Scan depth the snapshot was taken after.
    pub depth: u64,
    /// Layering variant key (e.g. `s1`, `full`).
    pub layering: String,
}

/// Cursor over a snapshot body. [`SnapshotState`] codecs read through
/// this; every read is bounds-checked and failures surface as
/// [`SnapshotError::Truncated`].
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A cursor at the start of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        SnapshotReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// The next `n` bytes, advancing the cursor.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = self
            .bytes
            .get(self.pos..self.pos + n)
            .expect("bounds checked against remaining() above");
        self.pos += n;
        Ok(out)
    }

    /// Reads one little-endian `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads one little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads one little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads one little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Binary codec for a model state inside an arena snapshot.
///
/// Implementations must be *canonical*: `decode(encode(x)) == x` and
/// `encode(decode(bytes)) == bytes` for every value the type can hold —
/// byte-identical re-save of a snapshot depends on it. Encode in a fixed
/// field order with fixed-width little-endian integers and
/// length-prefixed sequences; never encode derived or redundant data.
pub trait SnapshotState: Sized {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the cursor.
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

impl SnapshotState for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.u8()
    }
}

impl SnapshotState for u16 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.u16()
    }
}

impl SnapshotState for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.u32()
    }
}

impl SnapshotState for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.u64()
    }
}

impl SnapshotState for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool byte not 0 or 1")),
        }
    }
}

impl SnapshotState for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        self.get().encode(out);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Value::new(r.u32()?))
    }
}

impl SnapshotState for Pid {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Pid::new(r.u8()? as usize))
    }
}

impl<T: SnapshotState> SnapshotState for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(SnapshotError::Malformed("Option tag not 0 or 1")),
        }
    }
}

impl<T: SnapshotState> SnapshotState for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.u32()? as usize;
        let mut out = Vec::with_capacity(len.min(r.remaining().max(1)));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: SnapshotState + Ord> SnapshotState for std::collections::BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.u32()? as usize;
        let mut out = std::collections::BTreeSet::new();
        let mut prev: Option<T> = None;
        for _ in 0..len {
            let v = T::decode(r)?;
            // Strictly increasing keeps the encoding canonical (a permuted
            // or duplicated sequence would decode to the same set but
            // re-encode differently).
            if prev.as_ref().is_some_and(|p| p >= &v) {
                return Err(SnapshotError::Malformed("set elements not strictly sorted"));
            }
            if let Some(p) = prev.take() {
                out.insert(p);
            }
            prev = Some(v);
        }
        if let Some(p) = prev {
            out.insert(p);
        }
        Ok(out)
    }
}

impl<A: SnapshotState, B: SnapshotState> SnapshotState for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Encodes a witnessing permutation: `u8` degree then the image bytes.
fn encode_perm(perm: &PidPerm, out: &mut Vec<u8>) {
    let n = perm.degree();
    out.push(n as u8);
    for i in 0..n {
        out.push(perm.apply(Pid::new(i)).index() as u8);
    }
}

/// Decodes a witnessing permutation, validating it maps `0..n` bijectively
/// (so the [`PidPerm::from_map`] assertion can never fire on wire input).
fn decode_perm(r: &mut SnapshotReader<'_>, n: u64) -> Result<PidPerm, SnapshotError> {
    let degree = r.u8()? as u64;
    if degree != n {
        return Err(SnapshotError::Malformed("permutation degree is not n"));
    }
    let map = r.take(degree as usize)?.to_vec();
    let mut seen = vec![false; map.len()];
    for &image in &map {
        let image = image as usize;
        if image >= map.len() || seen[image] {
            return Err(SnapshotError::Malformed("edge bytes are not a permutation"));
        }
        seen[image] = true;
    }
    Ok(PidPerm::from_map(map))
}

/// One header key-value list (without `sha256`), in any order — the
/// canonicalizer sorts.
fn header_fields(
    kind: &str,
    meta: &ArenaMeta,
    packed: bool,
    states: u64,
    edges: u64,
    body_len: u64,
) -> Vec<(String, Json)> {
    vec![
        ("format".into(), Json::from(SNAPSHOT_FORMAT)),
        ("version".into(), Json::from(SNAPSHOT_VERSION)),
        ("kind".into(), Json::from(kind)),
        ("model".into(), Json::from(meta.model.as_str())),
        ("protocol".into(), Json::from(meta.protocol.as_str())),
        ("n".into(), Json::from(meta.n)),
        ("horizon".into(), Json::from(meta.horizon)),
        ("depth".into(), Json::from(meta.depth)),
        ("layering".into(), Json::from(meta.layering.as_str())),
        ("packed".into(), Json::from(u64::from(packed))),
        ("states".into(), Json::from(states)),
        ("edges".into(), Json::from(edges)),
        ("body_len".into(), Json::from(body_len)),
    ]
}

/// Assembles the final snapshot: hashes header-sans-`sha256` + body,
/// embeds the digest, and concatenates. Returns the blob and its
/// integrity hash.
fn seal(fields: Vec<(String, Json)>, body: Vec<u8>) -> (Vec<u8>, String) {
    let unsigned = Json::Object(fields.clone()).canonicalize().to_string();
    let mut hashed = Vec::with_capacity(unsigned.len() + 1 + body.len());
    hashed.extend_from_slice(unsigned.as_bytes());
    hashed.push(b'\n');
    hashed.extend_from_slice(&body);
    let digest = sha256_hex(&hashed);
    let mut fields = fields;
    fields.push(("sha256".into(), Json::from(digest.as_str())));
    let header = Json::Object(fields).canonicalize().to_string();
    let mut out = Vec::with_capacity(header.len() + 1 + body.len());
    out.extend_from_slice(header.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(&body);
    (out, digest)
}

/// Required string field of a parsed header.
fn header_str<'a>(json: &'a Json, key: &'static str) -> Result<&'a str, SnapshotError> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or(SnapshotError::BadHeader(key))
}

/// Required integer field of a parsed header.
fn header_u64(json: &Json, key: &'static str) -> Result<u64, SnapshotError> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or(SnapshotError::BadHeader(key))
}

/// Everything a verified header yields: the provenance, the section
/// counts, the body slice and the integrity digest.
struct VerifiedHeader<'a> {
    meta: ArenaMeta,
    packed: bool,
    states: u64,
    edges: u64,
    body: &'a [u8],
    digest: String,
}

/// Parses the header line, checks format/version/kind, and verifies the
/// integrity hash over the whole file. Runs before any body decoding.
fn open<'a>(
    bytes: &'a [u8],
    expected_kind: &'static str,
) -> Result<VerifiedHeader<'a>, SnapshotError> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(SnapshotError::BadHeader("no header line"))?;
    let header = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| SnapshotError::BadHeader("header is not UTF-8"))?;
    let body = bytes
        .get(nl + 1..)
        .expect("nl is a newline index found by position()");
    let json = Json::parse(header).map_err(|_| SnapshotError::BadHeader("unparseable JSON"))?;
    if header_str(&json, "format")? != SNAPSHOT_FORMAT {
        return Err(SnapshotError::BadHeader("format is not layered-arena"));
    }
    let version = header_u64(&json, "version")?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let kind = header_str(&json, "kind")?;
    if kind != expected_kind {
        return Err(SnapshotError::WrongKind {
            expected: expected_kind,
            found: kind.to_string(),
        });
    }
    let digest = header_str(&json, "sha256")?.to_string();
    if !is_hash(&digest) {
        return Err(SnapshotError::BadHeader("sha256 is not a hash"));
    }
    // Re-render the header without the sha256 key and re-hash the file.
    let Json::Object(members) = &json else {
        return Err(SnapshotError::BadHeader("header is not an object"));
    };
    let unsigned: Vec<(String, Json)> = members
        .iter()
        .filter(|(k, _)| k != "sha256")
        .cloned()
        .collect();
    let unsigned = Json::Object(unsigned).canonicalize().to_string();
    let mut hashed = Vec::with_capacity(unsigned.len() + 1 + body.len());
    hashed.extend_from_slice(unsigned.as_bytes());
    hashed.push(b'\n');
    hashed.extend_from_slice(body);
    if sha256_hex(&hashed) != digest {
        return Err(SnapshotError::HashMismatch);
    }
    if header_u64(&json, "body_len")? != body.len() as u64 {
        return Err(SnapshotError::Malformed("body_len disagrees with body"));
    }
    let meta = ArenaMeta {
        model: header_str(&json, "model")?.to_string(),
        protocol: header_str(&json, "protocol")?.to_string(),
        n: header_u64(&json, "n")?,
        horizon: header_u64(&json, "horizon")?,
        depth: header_u64(&json, "depth")?,
        layering: header_str(&json, "layering")?.to_string(),
    };
    let packed = match header_u64(&json, "packed")? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::BadHeader("packed flag not 0 or 1")),
    };
    Ok(VerifiedHeader {
        meta,
        packed,
        states: header_u64(&json, "states")?,
        edges: header_u64(&json, "edges")?,
        body,
        digest,
    })
}

/// Encodes the intern index sorted by bucket hash (bucket contents stay
/// in interning order, which is ascending id order).
fn encode_index(buckets: &IndexBuckets, out: &mut Vec<u8>) {
    (buckets.len() as u32).encode(out);
    for (h, ids) in buckets {
        h.encode(out);
        (ids.len() as u32).encode(out);
        for id in ids {
            (id.index() as u32).encode(out);
        }
    }
}

/// Decodes the stored intern index and checks it equals `rebuilt` — the
/// index derived from the decoded states themselves. Disagreement means
/// the snapshot is internally inconsistent (a buggy or adversarial
/// encoder; random corruption is already caught by the hash).
fn check_index(r: &mut SnapshotReader<'_>, rebuilt: &IndexBuckets) -> Result<(), SnapshotError> {
    let buckets = r.u32()? as usize;
    if buckets != rebuilt.len() {
        return Err(SnapshotError::Malformed("index bucket count"));
    }
    let mut prev_hash: Option<u64> = None;
    for _ in 0..buckets {
        let h = r.u64()?;
        if prev_hash.is_some_and(|p| p >= h) {
            return Err(SnapshotError::Malformed("index buckets not sorted"));
        }
        prev_hash = Some(h);
        let expected = rebuilt
            .get(&h)
            .ok_or(SnapshotError::Malformed("index bucket hash unknown"))?;
        let len = r.u32()? as usize;
        if len != expected.len() {
            return Err(SnapshotError::Malformed("index bucket length"));
        }
        for want in expected {
            if r.u32()? as usize != want.index() {
                return Err(SnapshotError::Malformed("index bucket ids"));
            }
        }
    }
    Ok(())
}

/// Encodes the CSR sections (per-row ranges, then the edge array).
fn encode_csr(succ: &[Option<SuccRange>], edges: &[StateId], out: &mut Vec<u8>) {
    for range in succ {
        match range {
            None => out.push(0),
            Some(r) => {
                out.push(1);
                r.start.encode(out);
                r.len.encode(out);
            }
        }
    }
    (edges.len() as u32).encode(out);
    for e in edges {
        (e.index() as u32).encode(out);
    }
}

/// Decodes the CSR sections, validating every range and edge id.
fn decode_csr(
    r: &mut SnapshotReader<'_>,
    states: usize,
    edge_count: u64,
) -> Result<(Vec<Option<SuccRange>>, Vec<StateId>), SnapshotError> {
    let mut succ = Vec::with_capacity(states);
    for _ in 0..states {
        succ.push(match r.u8()? {
            0 => None,
            1 => {
                let start = r.u32()?;
                let len = r.u32()?;
                if u64::from(start) + u64::from(len) > edge_count {
                    return Err(SnapshotError::Malformed("successor range out of bounds"));
                }
                Some(SuccRange { start, len })
            }
            _ => return Err(SnapshotError::Malformed("CSR flag not 0 or 1")),
        });
    }
    if u64::from(r.u32()?) != edge_count {
        return Err(SnapshotError::Malformed("edge count disagrees with header"));
    }
    let mut edges = Vec::with_capacity(edge_count as usize);
    for _ in 0..edge_count {
        let e = r.u32()? as usize;
        if e >= states {
            return Err(SnapshotError::Malformed("edge id out of bounds"));
        }
        edges.push(StateId(e as u32));
    }
    Ok((succ, edges))
}

/// Encodes the states section in id order: plain codecs for a boxed
/// arena, tagged word-or-spill slots for a packed one.
fn encode_store<S: SnapshotState + Clone + Eq + Hash>(store: &Store<S>, out: &mut Vec<u8>) {
    let packed = store.is_packed();
    for i in 0..store.len() {
        match store.slot(i) {
            Slot::Word(w) => {
                out.push(0);
                out.extend_from_slice(&w.to_le_bytes());
            }
            Slot::State(s) => {
                if packed {
                    out.push(1);
                }
                s.encode(out);
            }
        }
    }
}

/// Decodes the states section, following the *blob's* `packed` flag: a
/// boxed blob loads into a boxed store even when the model packs, so old
/// boxed snapshots of a now-packing model stay loadable (and re-save
/// byte-identically). Slots are validated against the codec: a tagged
/// word must not carry the spill tag, and a spilled state must genuinely
/// not fit the codec — otherwise re-saving would not reproduce the blob.
fn decode_store<S>(
    r: &mut SnapshotReader<'_>,
    count: usize,
    packed: bool,
    packer: Option<StatePacker<S>>,
) -> Result<Store<S>, SnapshotError>
where
    S: SnapshotState + Clone + Eq + Hash,
{
    if !packed {
        let mut store = Store::boxed();
        for _ in 0..count {
            store.push_spilled(S::decode(r)?);
        }
        return Ok(store);
    }
    let packer = packer.ok_or(SnapshotError::Malformed(
        "packed snapshot but the model has no state packer",
    ))?;
    let mut store = Store::packed(packer);
    for _ in 0..count {
        match r.u8()? {
            0 => {
                let b = r.take(16)?;
                let mut bytes = [0u8; 16];
                bytes.copy_from_slice(b);
                let w = u128::from_le_bytes(bytes);
                if w & SPILL_TAG != 0 {
                    return Err(SnapshotError::Malformed(
                        "packed word has the spill tag set",
                    ));
                }
                store.push_word(w);
            }
            1 => {
                let s = S::decode(r)?;
                if store.packs(&s) {
                    return Err(SnapshotError::Malformed("spilled state fits the codec"));
                }
                store.push_spilled(s);
            }
            _ => return Err(SnapshotError::Malformed("state tag not 0 or 1")),
        }
    }
    Ok(store)
}

/// Rebuilds the intern index from the decoded store — each slot hashed
/// and bucketed in id order, exactly the interning order — rejecting
/// duplicate states (two ids for one state would break the hash-consing
/// invariant).
fn rebuild_index<S: Clone + Eq + Hash>(store: &Store<S>) -> Result<ShardedIndex<S>, SnapshotError> {
    let mut index = ShardedIndex::new();
    for i in 0..store.len() {
        if !index.insert_slot(store, i) {
            return Err(SnapshotError::Malformed("duplicate interned state"));
        }
    }
    Ok(index)
}

/// Reports snapshot-save telemetry: the `space.snapshot.save` span wraps
/// `body()`, and the byte count / wall time land on the
/// `space.snapshot.bytes_written` and `space.snapshot.save_ns` gauges.
fn measured_save(
    obs: &dyn Observer,
    body: impl FnOnce() -> (Vec<u8>, String),
) -> (Vec<u8>, String) {
    let _span = Span::enter(obs, "space.snapshot.save");
    let started = if obs.enabled() {
        clock::monotonic_ns()
    } else {
        0
    };
    let (bytes, digest) = body();
    if obs.enabled() {
        obs.gauge("space.snapshot.bytes_written", bytes.len() as u64);
        obs.gauge(
            "space.snapshot.save_ns",
            clock::monotonic_ns().saturating_sub(started),
        );
    }
    (bytes, digest)
}

/// Reports snapshot-load telemetry: the `space.snapshot.load` span wraps
/// `body()`, successful loads bump the `space.resume.loads` counter and
/// the wall time lands on the `space.snapshot.load_ns` gauge.
fn measured_load<T>(
    obs: &dyn Observer,
    body: impl FnOnce() -> Result<T, SnapshotError>,
) -> Result<T, SnapshotError> {
    let _span = Span::enter(obs, "space.snapshot.load");
    let started = if obs.enabled() {
        clock::monotonic_ns()
    } else {
        0
    };
    let out = body()?;
    obs.counter("space.resume.loads", 1);
    if obs.enabled() {
        obs.gauge(
            "space.snapshot.load_ns",
            clock::monotonic_ns().saturating_sub(started),
        );
    }
    Ok(out)
}

/// Serializes a [`StateSpace`] under the given provenance. Returns the
/// snapshot bytes and their integrity hash (the header's `sha256`).
pub fn save_space<M>(
    space: &StateSpace<M>,
    meta: &ArenaMeta,
    obs: &dyn Observer,
) -> (Vec<u8>, String)
where
    M: LayeredModel,
    M::State: SnapshotState,
{
    measured_save(obs, || {
        let mut body = Vec::new();
        encode_store(&space.store, &mut body);
        encode_index(&space.index.bucket_snapshot(), &mut body);
        encode_csr(&space.succ, &space.edges, &mut body);
        for fp in &space.succ_fp {
            fp.encode(&mut body);
        }
        let fields = header_fields(
            "state",
            meta,
            space.store.is_packed(),
            space.store.len() as u64,
            space.edges.len() as u64,
            body.len() as u64,
        );
        seal(fields, body)
    })
}

/// Deserializes a [`StateSpace`] snapshot for `model`, verifying the
/// integrity hash and every structural invariant before the arena is
/// handed back. The store mode follows the blob's `packed` flag, so the
/// model is only consulted for its [`StatePacker`] when the blob needs
/// one. Returns the arena, its recorded provenance, and the integrity
/// hash.
pub fn load_space<M>(
    model: &M,
    bytes: &[u8],
    obs: &dyn Observer,
) -> Result<(StateSpace<M>, ArenaMeta, String), SnapshotError>
where
    M: LayeredModel,
    M::State: SnapshotState,
{
    measured_load(obs, || {
        let h = open(bytes, "state")?;
        let count = usize::try_from(h.states).map_err(|_| SnapshotError::Malformed("states"))?;
        let mut r = SnapshotReader::new(h.body);
        let store = decode_store(&mut r, count, h.packed, model.state_packer())?;
        let index = rebuild_index(&store)?;
        check_index(&mut r, &index.bucket_snapshot())?;
        let (succ, edges) = decode_csr(&mut r, count, h.edges)?;
        let mut succ_fp = Vec::with_capacity(count);
        for _ in 0..count {
            succ_fp.push(r.u64()?);
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed("trailing bytes"));
        }
        let space = StateSpace {
            store,
            index,
            succ,
            edges,
            succ_fp,
        };
        Ok((space, h.meta, h.digest))
    })
}

/// Serializes a [`QuotientSpace`] under the given provenance — the state
/// sections plus orbit sizes and the per-edge de-quotienting permutations.
pub fn save_quotient<M>(
    space: &QuotientSpace<M>,
    meta: &ArenaMeta,
    obs: &dyn Observer,
) -> (Vec<u8>, String)
where
    M: Symmetric,
    M::State: SnapshotState,
{
    measured_save(obs, || {
        let mut body = Vec::new();
        encode_store(&space.store, &mut body);
        encode_index(&space.index.bucket_snapshot(), &mut body);
        encode_csr(&space.succ, &space.edges, &mut body);
        for fp in &space.succ_fp {
            fp.encode(&mut body);
        }
        for orbit in &space.orbit_sizes {
            orbit.encode(&mut body);
        }
        for perm in &space.edge_perms {
            encode_perm(perm, &mut body);
        }
        let fields = header_fields(
            "quotient",
            meta,
            space.store.is_packed(),
            space.store.len() as u64,
            space.edges.len() as u64,
            body.len() as u64,
        );
        seal(fields, body)
    })
}

/// Deserializes a [`QuotientSpace`] snapshot for `model`.
///
/// Beyond the [`load_space`] checks, the de-quotienting permutations must
/// all have degree `n` and actually be permutations, and the recorded `n`
/// must match `model` (resuming against a differently-sized model would
/// make every witness permutation nonsense).
///
/// # Panics
///
/// Panics if `model`'s current layering is not equivariant — the same
/// contract as [`QuotientSpace::new`].
pub fn load_quotient<M>(
    model: &M,
    bytes: &[u8],
    obs: &dyn Observer,
) -> Result<(QuotientSpace<M>, ArenaMeta, String), SnapshotError>
where
    M: Symmetric,
    M::State: SnapshotState,
{
    assert!(
        model.symmetric_layering(),
        "QuotientSpace requires an equivariant layering \
         (use the model's full/symmetric layering variant)"
    );
    measured_load(obs, || {
        let h = open(bytes, "quotient")?;
        if h.meta.n != model.num_processes() as u64 {
            return Err(SnapshotError::Malformed("snapshot n does not match model"));
        }
        let count = usize::try_from(h.states).map_err(|_| SnapshotError::Malformed("states"))?;
        let mut r = SnapshotReader::new(h.body);
        let store = decode_store(&mut r, count, h.packed, model.state_packer())?;
        let index = rebuild_index(&store)?;
        check_index(&mut r, &index.bucket_snapshot())?;
        let (succ, edges) = decode_csr(&mut r, count, h.edges)?;
        let mut succ_fp = Vec::with_capacity(count);
        for _ in 0..count {
            succ_fp.push(r.u64()?);
        }
        let mut orbit_sizes = Vec::with_capacity(count);
        for _ in 0..count {
            let orbit = r.u64()?;
            if orbit == 0 {
                return Err(SnapshotError::Malformed("orbit size zero"));
            }
            orbit_sizes.push(orbit);
        }
        let mut edge_perms = Vec::with_capacity(edges.len());
        for _ in 0..edges.len() {
            edge_perms.push(decode_perm(&mut r, h.meta.n)?);
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed("trailing bytes"));
        }
        let space = QuotientSpace {
            store,
            orbit_sizes,
            index,
            succ,
            edges,
            edge_perms,
            succ_fp,
        };
        Ok((space, h.meta, h.digest))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{MetricsRegistry, NOOP};
    use crate::testkit::CounterModel;

    fn meta() -> ArenaMeta {
        ArenaMeta {
            model: "counter".into(),
            protocol: "toy".into(),
            n: 3,
            horizon: 3,
            depth: 2,
            layering: "s1".into(),
        }
    }

    fn built_space() -> (CounterModel, StateSpace<CounterModel>) {
        let m = CounterModel::new(3, 4);
        let roots = m.initial_states();
        let mut space = StateSpace::for_model(&m);
        space.expand_layers(&m, &roots, 3, &NOOP);
        (m, space)
    }

    #[test]
    fn state_space_round_trips() {
        let (m, space) = built_space();
        let (bytes, digest) = save_space(&space, &meta(), &NOOP);
        let (loaded, got_meta, got_digest) = load_space(&m, &bytes, &NOOP).expect("loads");
        assert_eq!(got_meta, meta());
        assert_eq!(got_digest, digest);
        assert_eq!(loaded.len(), space.len());
        assert_eq!(loaded.edge_count(), space.edge_count());
        for k in 0..space.len() {
            let id = StateId(k as u32);
            assert_eq!(loaded.resolve(id), space.resolve(id));
            assert_eq!(loaded.cached_successors(id), space.cached_successors(id));
            assert_eq!(
                loaded.successor_fingerprint_of(id),
                space.successor_fingerprint_of(id)
            );
        }
        // Byte-identical re-save.
        let (again, _) = save_space(&loaded, &meta(), &NOOP);
        assert_eq!(again, bytes);
    }

    #[test]
    fn snapshot_telemetry_moves() {
        let (m, space) = built_space();
        let reg = MetricsRegistry::new();
        let (bytes, _) = save_space(&space, &meta(), &reg);
        load_space(&m, &bytes, &reg).expect("loads");
        let snap = reg.snapshot();
        assert_eq!(
            snap.gauge_max("space.snapshot.bytes_written"),
            bytes.len() as u64
        );
        assert_eq!(snap.counter("space.resume.loads"), 1);
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let (_, space) = built_space();
        let (bytes, _) = save_space(&space, &meta(), &NOOP);
        let m = CounterModel::new(3, 4);
        let err = match load_quotient::<CounterModel>(&m, &bytes, &NOOP) {
            Ok(_) => panic!("state snapshot loaded as quotient"),
            Err(e) => e,
        };
        assert!(matches!(err, SnapshotError::WrongKind { .. }), "{err:?}");
    }

    #[test]
    fn old_version_rejected_before_hash_check() {
        // A version-1 header whose digest is deliberately wrong: the
        // loader must fail on the version — with the actionable
        // "regenerate" message — not stumble into a hash mismatch.
        let header = concat!(
            "{\"format\":\"layered-arena\",\"kind\":\"state\",\"sha256\":\"",
            "0000000000000000000000000000000000000000000000000000000000000000",
            "\",\"version\":1}\n"
        );
        let m = CounterModel::new(3, 4);
        let err = match load_space(&m, header.as_bytes(), &NOOP) {
            Ok(_) => panic!("version-1 snapshot loaded"),
            Err(e) => e,
        };
        assert_eq!(err, SnapshotError::UnsupportedVersion(1));
        assert!(err.to_string().contains("--snapshot"), "{err}");
    }

    #[test]
    fn packed_blob_round_trips_and_declares_packing() {
        let (m, space) = built_space();
        assert!(space.store.is_packed(), "CounterModel provides a packer");
        let (bytes, _) = save_space(&space, &meta(), &NOOP);
        let nl = bytes.iter().position(|&b| b == b'\n').expect("header line");
        let header = std::str::from_utf8(&bytes[..nl]).expect("UTF-8 header");
        assert!(header.contains("\"packed\":1"), "{header}");
        let (loaded, _, _) = load_space(&m, &bytes, &NOOP).expect("loads");
        assert!(loaded.store.is_packed());
    }

    #[test]
    fn boxed_blob_loads_boxed_even_under_a_packing_model() {
        let m = CounterModel::new(3, 4);
        let roots = m.initial_states();
        let mut space: StateSpace<CounterModel> = StateSpace::new();
        space.expand_layers(&m, &roots, 3, &NOOP);
        let (bytes, _) = save_space(&space, &meta(), &NOOP);
        let nl = bytes.iter().position(|&b| b == b'\n').expect("header line");
        let header = std::str::from_utf8(&bytes[..nl]).expect("UTF-8 header");
        assert!(header.contains("\"packed\":0"), "{header}");
        let (loaded, _, _) = load_space(&m, &bytes, &NOOP).expect("loads");
        assert!(!loaded.store.is_packed(), "loader follows the blob's flag");
        // Byte-identical re-save through the boxed path.
        let (again, _) = save_space(&loaded, &meta(), &NOOP);
        assert_eq!(again, bytes);
    }

    #[test]
    fn set_codec_rejects_unsorted() {
        use std::collections::BTreeSet;
        let set: BTreeSet<u8> = [3u8, 1, 2].into_iter().collect();
        let mut bytes = Vec::new();
        set.encode(&mut bytes);
        let decoded = BTreeSet::<u8>::decode(&mut SnapshotReader::new(&bytes)).expect("sorted");
        assert_eq!(decoded, set);
        // Swap two elements: same set, non-canonical encoding — rejected.
        bytes.swap(4, 6);
        let err = BTreeSet::<u8>::decode(&mut SnapshotReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)));
    }
}
