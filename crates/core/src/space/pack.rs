//! Packed state encodings: fixed-width bitfield codecs that fold a whole
//! model state into a single `u128` word.
//!
//! The states explored by the exact engines are small and regular — a
//! round counter plus a few per-process fields, each drawn from a tiny
//! domain — yet the natural Rust representations (`Vec`s of `BTreeSet`s)
//! cost hundreds of heap bytes and `O(|state|)` work per hash, clone and
//! equality test. A [`StatePacker`] replaces that representation *inside
//! the arenas*: packable states are stored, hashed and compared as one
//! `u128`, and only unpacked back into the model's state type at the
//! [`resolve`](super::StateSpace::resolve) boundary.
//!
//! # Contract
//!
//! For every state `x` the model can reach:
//!
//! * **round trip** — if `pack(x) == Some(w)` then `unpack(w) == x`;
//! * **injectivity** — `pack(x) == pack(y) == Some(w)` implies `x == y`
//!   (automatic from round-tripping);
//! * **equality invariance** — packability is a function of the state's
//!   *value*: equal states either both pack or both spill;
//! * **permutation invariance** (symmetric models) — `pack(π·x)` is `Some`
//!   iff `pack(x)` is, so one orbit never straddles the packed/spilled
//!   boundary;
//! * **equivariance** (when a [`permute`](StatePacker::permute_word) shuffle
//!   is provided) — `permute_word(pack(x), π) == pack(permute_state(x, π))`.
//!
//! `pack` returning `None` is always legal (the arena falls back to storing
//! the boxed state — the *spill* path), so codecs cap their field widths at
//! whatever the scan configurations actually use and spill the rest instead
//! of panicking.
//!
//! Bit 127 ([`SPILL_TAG`]) is reserved by the arenas to tag spilled slots,
//! so packed words must stay below it; [`StatePacker::pack`] enforces this
//! by spilling any wider word.

use std::hash::Hasher;
use std::sync::Arc;

use fxhash::FxHasher;

use crate::pid::Value;
use crate::sym::PidPerm;

/// Reserved tag bit: arena word slots with this bit set index into the
/// spill vector instead of encoding a state. Packed words must be smaller.
pub const SPILL_TAG: u128 = 1 << 127;

/// FxHash of a packed word — the arena's hash function for packed slots.
/// (Hashing 16 bytes instead of a whole state tree is most of the point.)
#[must_use]
pub fn word_hash(w: u128) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(w as u64);
    h.write_u64((w >> 64) as u64);
    h.finish()
}

/// Shared pack closure of a [`StatePacker`].
type PackFn<S> = Arc<dyn Fn(&S) -> Option<u128> + Send + Sync>;
/// Shared unpack closure of a [`StatePacker`].
type UnpackFn<S> = Arc<dyn Fn(u128) -> S + Send + Sync>;
/// Shared word-level renaming shuffle of a [`StatePacker`].
type PermuteFn = Arc<dyn Fn(u128, &PidPerm) -> u128 + Send + Sync>;

/// A `u128` bitfield codec for one model's state type.
///
/// Built from closures so model crates can capture their configuration
/// (process count, per-protocol local-state codecs); stored behind [`Arc`]s
/// so a packer clones cheaply into arenas and solvers.
pub struct StatePacker<S> {
    pack: PackFn<S>,
    unpack: UnpackFn<S>,
    permute: Option<PermuteFn>,
}

impl<S> Clone for StatePacker<S> {
    fn clone(&self) -> Self {
        StatePacker {
            pack: Arc::clone(&self.pack),
            unpack: Arc::clone(&self.unpack),
            permute: self.permute.as_ref().map(Arc::clone),
        }
    }
}

impl<S> std::fmt::Debug for StatePacker<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatePacker")
            .field("permute", &self.permute.is_some())
            .finish()
    }
}

impl<S> StatePacker<S> {
    /// A packer from its pack/unpack closures (see the module-level
    /// contract).
    pub fn new(
        pack: impl Fn(&S) -> Option<u128> + Send + Sync + 'static,
        unpack: impl Fn(u128) -> S + Send + Sync + 'static,
    ) -> Self {
        StatePacker {
            pack: Arc::new(pack),
            unpack: Arc::new(unpack),
            permute: None,
        }
    }

    /// Adds an equivariant word-level renaming shuffle:
    /// `permute_word(pack(x), π) == pack(permute_state(x, π))`. Unlocks the
    /// packed canonicalization fast path
    /// ([`canonicalize_packed`](crate::sym::canonicalize_packed)).
    #[must_use]
    pub fn with_permute(
        mut self,
        permute: impl Fn(u128, &PidPerm) -> u128 + Send + Sync + 'static,
    ) -> Self {
        self.permute = Some(Arc::new(permute));
        self
    }

    /// Packs `x`, or `None` if it does not fit the codec (the caller
    /// spills). Words that would collide with [`SPILL_TAG`] are spilled
    /// too, so a returned word is always below `1 << 127`.
    #[must_use]
    pub fn pack(&self, x: &S) -> Option<u128> {
        (self.pack)(x).filter(|w| *w < SPILL_TAG)
    }

    /// Decodes a word produced by [`StatePacker::pack`].
    #[must_use]
    pub fn unpack(&self, w: u128) -> S {
        (self.unpack)(w)
    }

    /// Whether the packer carries a renaming shuffle.
    #[must_use]
    pub fn permutes(&self) -> bool {
        self.permute.is_some()
    }

    /// Applies the renaming shuffle to a packed word, or `None` if the
    /// packer has none.
    #[must_use]
    pub fn permute_word(&self, w: u128, perm: &PidPerm) -> Option<u128> {
        self.permute.as_ref().map(|f| f(w, perm))
    }
}

/// Width of the [`pack_decision`] codec in bits.
pub const DECISION_BITS: u32 = 3;

/// Packs a write-once decision register `d_i` into [`DECISION_BITS`] bits:
/// `0` = undecided, `v + 1` = decided `v`. `None` (spill) for values above
/// 6 — far beyond the binary consensus the scans exercise.
#[must_use]
pub fn pack_decision(d: Option<Value>) -> Option<u64> {
    match d {
        None => Some(0),
        Some(v) => {
            let g = u64::from(v.get());
            (g < (1 << DECISION_BITS) - 1).then_some(g + 1)
        }
    }
}

/// Decodes a field produced by [`pack_decision`].
#[must_use]
pub fn unpack_decision(bits: u64) -> Option<Value> {
    (bits > 0).then(|| Value::new((bits - 1) as u32))
}

/// A fixed-width bitfield codec for one *field* of a state — typically a
/// protocol's per-process local state, register or message payload.
/// Model-level [`StatePacker`]s compose these into per-process lanes.
pub struct FieldPacker<T> {
    bits: u32,
    pack: FieldPackFn<T>,
    unpack: FieldUnpackFn<T>,
}

/// Shared pack closure of a [`FieldPacker`].
type FieldPackFn<T> = Arc<dyn Fn(&T) -> Option<u64> + Send + Sync>;
/// Shared unpack closure of a [`FieldPacker`].
type FieldUnpackFn<T> = Arc<dyn Fn(u64) -> T + Send + Sync>;

impl<T> Clone for FieldPacker<T> {
    fn clone(&self) -> Self {
        FieldPacker {
            bits: self.bits,
            pack: Arc::clone(&self.pack),
            unpack: Arc::clone(&self.unpack),
        }
    }
}

impl<T> std::fmt::Debug for FieldPacker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FieldPacker")
            .field("bits", &self.bits)
            .finish()
    }
}

impl<T> FieldPacker<T> {
    /// A field codec of `bits` width. `pack` must return values below
    /// `1 << bits` (checked at pack time) and round-trip through `unpack`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or above 64.
    pub fn new(
        bits: u32,
        pack: impl Fn(&T) -> Option<u64> + Send + Sync + 'static,
        unpack: impl Fn(u64) -> T + Send + Sync + 'static,
    ) -> Self {
        assert!((1..=64).contains(&bits), "field width out of range");
        FieldPacker {
            bits,
            pack: Arc::new(pack),
            unpack: Arc::new(unpack),
        }
    }

    /// The field's width in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The low-bits mask covering the field's width.
    #[must_use]
    pub fn mask(&self) -> u64 {
        if self.bits >= 64 {
            u64::MAX
        } else {
            (1 << self.bits) - 1
        }
    }

    /// Packs one field value, or `None` if it does not fit.
    #[must_use]
    pub fn pack(&self, v: &T) -> Option<u64> {
        (self.pack)(v).filter(|w| self.bits >= 64 || *w < (1 << self.bits))
    }

    /// Decodes a field value produced by [`FieldPacker::pack`].
    #[must_use]
    pub fn unpack(&self, w: u64) -> T {
        (self.unpack)(w)
    }
}

/// Little-endian bit writer over one `u128` word: fields are pushed low
/// bits first. Used by codecs with variable-length sections (mailboxes);
/// fixed-lane codecs shift by hand.
#[derive(Clone, Copy, Debug, Default)]
pub struct WordWriter {
    word: u128,
    pos: u32,
}

impl WordWriter {
    /// An empty writer at bit position 0.
    #[must_use]
    pub fn new() -> Self {
        WordWriter::default()
    }

    /// Appends `bits` bits of `value`. `None` (overflow) if the value does
    /// not fit the width or the word would spill past bit 126.
    #[must_use]
    pub fn push(mut self, value: u64, bits: u32) -> Option<Self> {
        if bits == 0 || bits > 64 || (bits < 64 && value >= (1 << bits)) {
            return None;
        }
        if self.pos + bits > 127 {
            return None;
        }
        self.word |= u128::from(value) << self.pos;
        self.pos += bits;
        Some(self)
    }

    /// The packed word.
    #[must_use]
    pub fn finish(self) -> u128 {
        self.word
    }
}

/// Cursor counterpart of [`WordWriter`]: reads fields low bits first.
#[derive(Clone, Copy, Debug)]
pub struct WordReader {
    word: u128,
    pos: u32,
}

impl WordReader {
    /// A cursor at bit 0 of `word`.
    #[must_use]
    pub fn new(word: u128) -> Self {
        WordReader { word, pos: 0 }
    }

    /// Reads the next `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if the read runs past bit 128 or `bits` exceeds 64.
    #[must_use]
    pub fn take(&mut self, bits: u32) -> u64 {
        assert!((1..=64).contains(&bits) && self.pos + bits <= 128);
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let out = (self.word >> self.pos) as u64 & mask;
        self.pos += bits;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_writer_round_trips_fields() {
        let w = WordWriter::new()
            .push(5, 3)
            .and_then(|w| w.push(0, 1))
            .and_then(|w| w.push(200, 8))
            .expect("13 bits fit in a word");
        let mut r = WordReader::new(w.finish());
        assert_eq!(r.take(3), 5);
        assert_eq!(r.take(1), 0);
        assert_eq!(r.take(8), 200);
    }

    #[test]
    fn word_writer_rejects_overflow() {
        assert!(WordWriter::new().push(8, 3).is_none(), "value too wide");
        let mut w = WordWriter::new();
        for _ in 0..12 {
            w = w.push(1, 10).expect("120 bits fit");
        }
        assert!(w.push(1, 10).is_none(), "bit 127 is reserved");
    }

    #[test]
    fn state_packer_spills_tagged_words() {
        // A pathological packer that emits the spill tag: pack() must
        // refuse the word rather than corrupt the arena.
        let p: StatePacker<u8> = StatePacker::new(|_| Some(SPILL_TAG), |_| 0);
        assert_eq!(p.pack(&1), None);
        let q: StatePacker<u8> = StatePacker::new(|v| Some(u128::from(*v)), |w| w as u8);
        assert_eq!(q.pack(&7), Some(7));
        assert_eq!(q.unpack(7), 7);
        assert!(!q.permutes());
    }

    #[test]
    fn field_packer_enforces_width() {
        let f: FieldPacker<u8> = FieldPacker::new(3, |v| Some(u64::from(*v)), |w| w as u8);
        assert_eq!(f.pack(&5), Some(5));
        assert_eq!(f.pack(&8), None, "3-bit field caps at 7");
        assert_eq!(f.unpack(5), 5);
        assert_eq!(f.bits(), 3);
    }

    #[test]
    fn decision_codec_round_trips() {
        for d in [None, Some(Value::ZERO), Some(Value::new(6))] {
            let bits = pack_decision(d).expect("small decisions pack");
            assert!(bits < (1 << DECISION_BITS));
            assert_eq!(unpack_decision(bits), d);
        }
        assert_eq!(
            pack_decision(Some(Value::new(7))),
            None,
            "7 collides with the tag space"
        );
    }

    #[test]
    fn word_hash_is_deterministic_and_spreads() {
        assert_eq!(word_hash(42), word_hash(42));
        assert_ne!(word_hash(1), word_hash(2));
        assert_ne!(word_hash(1), word_hash(1 << 64), "both halves mixed");
    }
}
