//! Hash-consed state spaces: dense [`StateId`]s over a model's reachable
//! states, with CSR-packed successor adjacency, a sharded concurrent intern
//! table, packed state storage and deterministic parallel layer expansion.
//!
//! Every exact engine in this crate (valence, connectivity, layering, the
//! consensus checker) explores the same graded state graph. Keying those
//! explorations on full cloned model states makes each hash, clone and
//! equality test cost `O(|state|)` — the direct cause of the n≤3 enumeration
//! ceiling this module removes. A [`StateSpace`] interns each distinct state
//! exactly once and hands out a dense `u32` [`StateId`]; the engines then
//! memoize in flat `Vec`s indexed by id and walk successor lists that are
//! computed once and packed into a single flat edge array (compressed sparse
//! row layout).
//!
//! # Packed storage
//!
//! When the model provides a [`StatePacker`]
//! ([`LayeredModel::state_packer`]), the arena stores each state as a single
//! `u128` word instead of the boxed model struct: hashing, equality and
//! lookup all operate on the word, and states are only unpacked at the
//! [`resolve`](StateSpace::resolve) boundary. States the codec cannot
//! represent *spill* into a side vector (tagged via [`pack::SPILL_TAG`]), so
//! packing is always a pure representation change — ids, layers and every
//! derived report are identical to the boxed arena's.
//!
//! # Sharded interning
//!
//! The intern index is split into [`SHARD_COUNT`] shards keyed by state
//! hash, each behind its own mutex. During bulk expansion worker threads
//! probe and *stage* new states concurrently: a previously unseen state is
//! appended to its shard's pending list and identified by a provisional id.
//! No dense id is assigned concurrently — after the workers join, the
//! calling thread walks the frontier's successor lists **in frontier order**
//! and renumbers every provisional id in first-touch order ([`ProvMap`]),
//! which is exactly the order the sequential path would have interned them
//! in. The staged states are then published into the dense store and the
//! shard buckets rewritten. Parallelism changes how fast successor lists are
//! produced, never which states exist, their ids, or the contents of any
//! layer, so sequential and parallel expansion are bit-identical.
//!
//! # Id layout and determinism
//!
//! Ids are assigned in *interning order*: the first distinct state presented
//! to [`StateSpace::intern`] gets id 0, the next distinct one id 1, and so
//! on. All exploration routines here present states in a canonical order
//! (roots in the order given, then successor lists in model order, level by
//! level), so for a fixed model and entry point the id assignment — and
//! everything derived from it — is deterministic.
//!
//! # Persistence
//!
//! Both arenas serialize to versioned, integrity-hashed snapshots (see
//! [`snapshot`]): the state arena (packed words or boxed states), intern
//! index, CSR successor cache and per-state successor fingerprints
//! round-trip byte-identically, so a scan can be resumed — deepened,
//! re-budgeted, or differentially re-verified after a protocol change via
//! [`StateSpace::refresh_differential`] /
//! [`QuotientSpace::refresh_differential`] — instead of recomputed.

pub mod pack;
pub mod snapshot;

use std::collections::{BTreeMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, MutexGuard, TryLockError};

use fxhash::{FxHashMap, FxHasher};

use self::pack::{word_hash, StatePacker, SPILL_TAG};
use crate::sym::{PidPerm, Symmetric};
use crate::telemetry::{
    clock, trace, Heartbeat, MemoryBreakdown, MemoryFootprint, Observer, Span, NOOP,
};
use crate::LayeredModel;

/// Number of bits of the state hash that select an intern shard.
const SHARD_BITS: u32 = 4;

/// Number of independently locked shards in the intern index. A fixed
/// power of two: the shard of a state is the low [`SHARD_BITS`] bits of its
/// hash, so shard assignment is a pure function of the state and identical
/// at every thread count.
pub const SHARD_COUNT: usize = 1 << SHARD_BITS;

/// Bucket entries with this bit set index a shard's pending (staged) list
/// instead of the dense store. Caps dense ids at `2^31`.
const PENDING_BIT: u32 = 1 << 31;

/// Provisional ids with this bit set refer to a staged state
/// (`shard << 32 | pending index`); without it they are dense ids.
const PROV_PENDING: u64 = 1 << 63;

/// The shard owning hash `h`.
fn shard_of(h: u64) -> usize {
    (h & (SHARD_COUNT as u64 - 1)) as usize
}

/// FxHash of a full model state (the boxed-store / spill-path hash).
fn fx_hash<S: Hash>(s: &S) -> u64 {
    let mut h = FxHasher::default();
    s.hash(&mut h);
    h.finish()
}

/// Dense identifier of an interned state within one [`StateSpace`].
///
/// Ids are only meaningful relative to the space that produced them; they
/// are assigned contiguously from 0 in interning order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(u32);

impl StateId {
    /// The id as a dense `usize` index (`0..space.len()`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Range of a state's successor list inside the packed edge array.
#[derive(Clone, Copy, Debug)]
struct SuccRange {
    start: u32,
    len: u32,
}

/// How a state probes the intern index: its shard-selecting hash, plus the
/// packed word when the store is packed and the state fits the codec
/// (`None` means boxed comparison — the boxed store, or a spilled state).
struct ProbeKey {
    hash: u64,
    word: Option<u128>,
}

/// A staged (not yet dense) state held in a shard's pending list.
enum PendKey<S> {
    /// Packed representation (packed store, codec fits).
    Word(u128),
    /// Boxed representation (boxed store, or a spilled state).
    State(S),
}

/// The arena's state storage: boxed model structs, or packed `u128` words
/// with a spill vector for states the codec cannot represent. Word slots
/// with [`SPILL_TAG`] set index the spill vector.
enum Store<S> {
    /// One boxed state per id.
    Boxed(Vec<S>),
    /// One word per id; spilled states live in `spill`.
    Packed {
        /// The model's codec.
        packer: StatePacker<S>,
        /// Per-id packed word, or `SPILL_TAG | spill index`.
        words: Vec<u128>,
        /// States the codec could not represent.
        spill: Vec<S>,
    },
}

/// A read-only view of one store slot (used by snapshot encoding and index
/// rebuilding).
enum Slot<'a, S> {
    /// A packed word (never has [`SPILL_TAG`] set).
    Word(u128),
    /// A boxed or spilled state.
    State(&'a S),
}

impl<S: Clone + Eq + Hash> Store<S> {
    fn boxed() -> Self {
        Store::Boxed(Vec::new())
    }

    fn packed(packer: StatePacker<S>) -> Self {
        Store::Packed {
            packer,
            words: Vec::new(),
            spill: Vec::new(),
        }
    }

    fn is_packed(&self) -> bool {
        matches!(self, Store::Packed { .. })
    }

    fn len(&self) -> usize {
        match self {
            Store::Boxed(v) => v.len(),
            Store::Packed { words, .. } => words.len(),
        }
    }

    fn spill_len(&self) -> usize {
        match self {
            Store::Boxed(_) => 0,
            Store::Packed { spill, .. } => spill.len(),
        }
    }

    /// The probe key of `s` under this store's representation.
    fn key_of(&self, s: &S) -> ProbeKey {
        match self {
            Store::Boxed(_) => ProbeKey {
                hash: fx_hash(s),
                word: None,
            },
            Store::Packed { packer, .. } => match packer.pack(s) {
                Some(w) => ProbeKey {
                    hash: word_hash(w),
                    word: Some(w),
                },
                None => ProbeKey {
                    hash: fx_hash(s),
                    word: None,
                },
            },
        }
    }

    /// The state behind slot `i`, owned (unpacked or cloned).
    fn get(&self, i: usize) -> S {
        match self {
            Store::Boxed(v) => v[i].clone(),
            Store::Packed {
                packer,
                words,
                spill,
            } => {
                let w = words[i];
                if w & SPILL_TAG == 0 {
                    packer.unpack(w)
                } else {
                    spill[(w ^ SPILL_TAG) as usize].clone()
                }
            }
        }
    }

    /// Whether slot `i` holds the state with probe key `key` / value `s`.
    /// Packed slots compare by word; packability is equality-invariant
    /// (codec contract), so a packed slot can never equal a spilled probe.
    fn slot_matches(&self, i: usize, key: &ProbeKey, s: &S) -> bool {
        match self {
            Store::Boxed(v) => v[i] == *s,
            Store::Packed { words, spill, .. } => {
                let w = words[i];
                if w & SPILL_TAG == 0 {
                    key.word == Some(w)
                } else {
                    key.word.is_none() && spill[(w ^ SPILL_TAG) as usize] == *s
                }
            }
        }
    }

    /// Whether slots `i` and `j` hold equal states (index rebuilding).
    fn slots_equal(&self, i: usize, j: usize) -> bool {
        match self {
            Store::Boxed(v) => v[i] == v[j],
            Store::Packed { words, spill, .. } => {
                let (a, b) = (words[i], words[j]);
                if a & SPILL_TAG == 0 || b & SPILL_TAG == 0 {
                    a == b
                } else {
                    spill[(a ^ SPILL_TAG) as usize] == spill[(b ^ SPILL_TAG) as usize]
                }
            }
        }
    }

    /// Appends `s` (with its already-computed probe key) as the next dense
    /// slot.
    fn push(&mut self, key: &ProbeKey, s: &S) {
        match self {
            Store::Boxed(v) => v.push(s.clone()),
            Store::Packed { words, spill, .. } => match key.word {
                Some(w) => words.push(w),
                None => {
                    let idx = spill.len() as u128;
                    spill.push(s.clone());
                    words.push(SPILL_TAG | idx);
                }
            },
        }
    }

    /// Publishes a staged state as the next dense slot.
    fn push_pend(&mut self, key: PendKey<S>) {
        match (self, key) {
            (Store::Boxed(v), PendKey::State(s)) => v.push(s),
            (Store::Packed { words, .. }, PendKey::Word(w)) => words.push(w),
            (Store::Packed { words, spill, .. }, PendKey::State(s)) => {
                let idx = spill.len() as u128;
                spill.push(s);
                words.push(SPILL_TAG | idx);
            }
            (Store::Boxed(_), PendKey::Word(_)) => {
                unreachable!("boxed stores never stage packed words")
            }
        }
    }

    /// Appends a decoded packed word (snapshot loading; packed stores only).
    fn push_word(&mut self, w: u128) {
        match self {
            Store::Packed { words, .. } => words.push(w),
            Store::Boxed(_) => unreachable!("boxed stores hold no words"),
        }
    }

    /// Appends a decoded boxed/spilled state (snapshot loading).
    fn push_spilled(&mut self, s: S) {
        match self {
            Store::Boxed(v) => v.push(s),
            Store::Packed { words, spill, .. } => {
                let idx = spill.len() as u128;
                spill.push(s);
                words.push(SPILL_TAG | idx);
            }
        }
    }

    /// Whether `s` fits this store's codec (always false for boxed stores).
    fn packs(&self, s: &S) -> bool {
        matches!(self, Store::Packed { packer, .. } if packer.pack(s).is_some())
    }

    /// A read-only view of slot `i`.
    fn slot(&self, i: usize) -> Slot<'_, S> {
        match self {
            Store::Boxed(v) => Slot::State(&v[i]),
            Store::Packed { words, spill, .. } => {
                let w = words[i];
                if w & SPILL_TAG == 0 {
                    Slot::Word(w)
                } else {
                    Slot::State(&spill[(w ^ SPILL_TAG) as usize])
                }
            }
        }
    }

    /// The intern hash of slot `i` (identical to `key_of(get(i)).hash`).
    fn hash_of_slot(&self, i: usize) -> u64 {
        match self.slot(i) {
            Slot::Word(w) => word_hash(w),
            Slot::State(s) => fx_hash(s),
        }
    }

    /// Shallow capacity-based byte accounting of the state payloads.
    fn state_bytes(&self) -> u64 {
        match self {
            Store::Boxed(v) => v.capacity() as u64 * std::mem::size_of::<S>() as u64,
            Store::Packed { words, spill, .. } => {
                words.capacity() as u64 * 16
                    + spill.capacity() as u64 * std::mem::size_of::<S>() as u64
            }
        }
    }

    /// Bytes the packed representation saves over boxing every state
    /// (0 for boxed stores; spilled states save nothing).
    fn bytes_saved(&self) -> u64 {
        let per_state = std::mem::size_of::<S>().saturating_sub(16) as u64;
        per_state * (self.len() - self.spill_len()) as u64
    }
}

/// One intern shard: hash-bucketed candidate entries plus the pending list
/// of states staged during the current bulk expansion. Bucket entries are
/// dense ids, or `PENDING_BIT | pending index` while staged; dense entries
/// are kept in ascending id order (== interning order).
struct Shard<S> {
    buckets: FxHashMap<u64, Vec<u32>>,
    /// Staged states: `(hash, key, orbit size)` — orbit is 0 in the plain
    /// arena and carries the precomputed orbit size in the quotient.
    pending: Vec<(u64, PendKey<S>, u64)>,
}

impl<S> Default for Shard<S> {
    fn default() -> Self {
        Shard {
            buckets: FxHashMap::default(),
            pending: Vec::new(),
        }
    }
}

/// Aggregated interning statistics from one bulk expansion. `hits` and
/// `misses` are thread-count-invariant (each raw successor is probed
/// exactly once; misses count distinct new states); `contention` and
/// `retries` measure lock pressure and are inherently nondeterministic.
#[derive(Clone, Copy, Default, Debug)]
struct InternStats {
    hits: u64,
    misses: u64,
    contention: u64,
    retries: u64,
}

impl InternStats {
    fn merge(&mut self, o: &InternStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.contention += o.contention;
        self.retries += o.retries;
    }
}

/// Locks a shard, counting contention: a failed `try_lock` bumps
/// `contention`, each spin retry bumps `retries`, and after a bounded spin
/// the caller parks on the blocking lock.
fn lock_counting<'a, S>(
    m: &'a Mutex<Shard<S>>,
    stats: &mut InternStats,
) -> MutexGuard<'a, Shard<S>> {
    match m.try_lock() {
        Ok(g) => return g,
        Err(TryLockError::WouldBlock) => stats.contention += 1,
        Err(TryLockError::Poisoned(_)) => panic!("intern shard poisoned: a worker panicked"),
    }
    for _ in 0..64 {
        std::hint::spin_loop();
        match m.try_lock() {
            Ok(g) => return g,
            Err(TryLockError::WouldBlock) => stats.retries += 1,
            Err(TryLockError::Poisoned(_)) => panic!("intern shard poisoned: a worker panicked"),
        }
    }
    match m.lock() {
        Ok(g) => g,
        Err(_) => panic!("intern shard poisoned: a worker panicked"),
    }
}

/// The sharded concurrent intern index shared by both arenas.
struct ShardedIndex<S> {
    shards: Vec<Mutex<Shard<S>>>,
}

impl<S: Clone + Eq + Hash> ShardedIndex<S> {
    fn new() -> Self {
        ShardedIndex {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
        }
    }

    /// Exclusive access to the shard owning `h` (single-threaded paths).
    fn shard_mut(&mut self, h: u64) -> &mut Shard<S> {
        match self.shards[shard_of(h)].get_mut() {
            Ok(g) => g,
            Err(_) => panic!("intern shard poisoned: a worker panicked"),
        }
    }

    /// Locked access to the shard owning `h` (shared-borrow paths).
    fn shard(&self, h: u64) -> MutexGuard<'_, Shard<S>> {
        match self.shards[shard_of(h)].lock() {
            Ok(g) => g,
            Err(_) => panic!("intern shard poisoned: a worker panicked"),
        }
    }

    /// Concurrent probe: returns the provisional id of `s` — its dense id
    /// if already interned, the id of an earlier staging if another probe
    /// already staged it this bulk round, or a fresh staging otherwise.
    fn probe_or_stage(
        &self,
        store: &Store<S>,
        key: &ProbeKey,
        s: &S,
        orbit: u64,
        stats: &mut InternStats,
    ) -> u64 {
        let shard_no = shard_of(key.hash);
        let mut guard = lock_counting(&self.shards[shard_no], stats);
        let Shard { buckets, pending } = &mut *guard;
        let bucket = buckets.entry(key.hash).or_default();
        for &entry in bucket.iter() {
            if entry & PENDING_BIT != 0 {
                let idx = (entry & !PENDING_BIT) as usize;
                let hit = match (&pending[idx].1, &key.word) {
                    (PendKey::Word(w), Some(k)) => w == k,
                    (PendKey::State(t), None) => t == s,
                    _ => false,
                };
                if hit {
                    stats.hits += 1;
                    return PROV_PENDING | ((shard_no as u64) << 32) | idx as u64;
                }
            } else if store.slot_matches(entry as usize, key, s) {
                stats.hits += 1;
                return u64::from(entry);
            }
        }
        let idx = u32::try_from(pending.len()).expect("more than u32::MAX staged states");
        assert!(idx < PENDING_BIT, "shard pending list overflow");
        let pend = match key.word {
            Some(w) => PendKey::Word(w),
            None => PendKey::State(s.clone()),
        };
        pending.push((key.hash, pend, orbit));
        bucket.push(PENDING_BIT | idx);
        stats.misses += 1;
        PROV_PENDING | ((shard_no as u64) << 32) | u64::from(idx)
    }

    /// Per-shard pending-list lengths (sized for [`ProvMap::new`]).
    fn pending_lens(&mut self) -> Vec<usize> {
        self.shards
            .iter_mut()
            .map(|m| match m.get_mut() {
                Ok(g) => g.pending.len(),
                Err(_) => panic!("intern shard poisoned: a worker panicked"),
            })
            .collect()
    }

    /// Publishes every staged state into the dense store under the ids
    /// `map` assigned, rewriting the affected buckets (and restoring their
    /// ascending-id order). Returns the staged orbit sizes in dense id
    /// order.
    fn publish(&mut self, store: &mut Store<S>, map: &ProvMap) -> Vec<u64> {
        let mut staged: Vec<(u32, PendKey<S>, u64)> = Vec::new();
        for (shard_no, m) in self.shards.iter_mut().enumerate() {
            let shard = match m.get_mut() {
                Ok(g) => g,
                Err(_) => panic!("intern shard poisoned: a worker panicked"),
            };
            if shard.pending.is_empty() {
                continue;
            }
            let mut hashes: Vec<u64> = shard.pending.iter().map(|p| p.0).collect();
            hashes.sort_unstable();
            hashes.dedup();
            for h in hashes {
                let bucket = shard
                    .buckets
                    .get_mut(&h)
                    .expect("staged entry always has a bucket");
                for e in bucket.iter_mut() {
                    if *e & PENDING_BIT != 0 {
                        let id = map.assigned[shard_no][(*e & !PENDING_BIT) as usize];
                        debug_assert_ne!(id, u32::MAX, "staged state never renumbered");
                        *e = id;
                    }
                }
                bucket.sort_unstable();
            }
            for (idx, (_, key, orbit)) in shard.pending.drain(..).enumerate() {
                staged.push((map.assigned[shard_no][idx], key, orbit));
            }
        }
        staged.sort_unstable_by_key(|(id, _, _)| *id);
        let mut orbits = Vec::with_capacity(staged.len());
        for (id, key, orbit) in staged {
            debug_assert_eq!(id as usize, store.len(), "dense ids are contiguous");
            store.push_pend(key);
            orbits.push(orbit);
        }
        orbits
    }

    /// Inserts dense slot `i` of `store` into the index (snapshot
    /// rebuilding; slots must arrive in id order). Returns `false` if an
    /// equal state is already indexed.
    fn insert_slot(&mut self, store: &Store<S>, i: usize) -> bool {
        let h = store.hash_of_slot(i);
        let shard = self.shard_mut(h);
        let bucket = shard.buckets.entry(h).or_default();
        if bucket.iter().any(|&e| store.slots_equal(e as usize, i)) {
            return false;
        }
        bucket.push(u32::try_from(i).expect("more than u32::MAX states"));
        true
    }

    /// All buckets merged across shards, sorted by hash (snapshot
    /// encoding). Bucket hashes are disjoint across shards by construction.
    fn bucket_snapshot(&self) -> BTreeMap<u64, Vec<StateId>> {
        let mut out = BTreeMap::new();
        for m in &self.shards {
            let g = match m.lock() {
                Ok(g) => g,
                Err(_) => panic!("intern shard poisoned: a worker panicked"),
            };
            for (h, bucket) in &g.buckets {
                debug_assert!(
                    bucket.iter().all(|e| e & PENDING_BIT == 0),
                    "staging drained before snapshot"
                );
                out.insert(*h, bucket.iter().map(|&e| StateId(e)).collect());
            }
        }
        out
    }
}

/// The canonical renumbering pass: maps provisional ids to dense ids in
/// first-touch order. The caller resolves every successor list in frontier
/// order, so the first touch of each staged state happens in exactly the
/// order the sequential path would have interned it — dense ids are
/// therefore identical at every thread count.
struct ProvMap {
    /// Per shard, per pending index: the assigned dense id (`u32::MAX`
    /// until first touch).
    assigned: Vec<Vec<u32>>,
    next: u32,
}

impl ProvMap {
    fn new(pending_lens: &[usize], base: u32) -> Self {
        ProvMap {
            assigned: pending_lens.iter().map(|&l| vec![u32::MAX; l]).collect(),
            next: base,
        }
    }

    fn resolve(&mut self, prov: u64) -> StateId {
        if prov & PROV_PENDING == 0 {
            return StateId(prov as u32);
        }
        let shard = ((prov & !PROV_PENDING) >> 32) as usize;
        let idx = (prov & 0xFFFF_FFFF) as usize;
        let slot = &mut self.assigned[shard][idx];
        if *slot == u32::MAX {
            *slot = self.next;
            self.next = self.next.checked_add(1).expect("more than u32::MAX states");
        }
        StateId(*slot)
    }
}

/// Outcome of probing one dense bucket for a state: found (with the number
/// of equality comparisons it took) or absent (with the number of
/// candidates that were ruled out).
enum Probe {
    /// The state is interned as `.0`; `.1` candidates were compared.
    Hit(StateId, u64),
    /// The state is absent; `.0` candidates were compared and ruled out.
    Miss(u64),
}

/// Probes a dense bucket for a state equal to `s`. Only valid outside bulk
/// expansion (staged entries are always drained before direct interning).
fn probe_dense<S: Clone + Eq + Hash>(
    store: &Store<S>,
    bucket: Option<&Vec<u32>>,
    key: &ProbeKey,
    s: &S,
) -> Probe {
    match bucket {
        Some(b) => {
            for (probed, &e) in b.iter().enumerate() {
                debug_assert_eq!(e & PENDING_BIT, 0, "staging drained before direct probe");
                if store.slot_matches(e as usize, key, s) {
                    return Probe::Hit(StateId(e), probed as u64 + 1);
                }
            }
            Probe::Miss(b.len() as u64)
        }
        None => Probe::Miss(0),
    }
}

/// FxHash fingerprint of a raw successor list (length plus every element,
/// in order). Stored per state so a re-scan after a protocol change can
/// tell which successor lists moved ([`StateSpace::refresh_differential`])
/// without diffing the lists themselves. Fingerprint equality is treated
/// as list equality — a deliberate 64-bit-collision trade-off, identical
/// to the one the intern index already makes per bucket.
fn successor_fingerprint<S: Hash>(succs: &[S]) -> u64 {
    let mut h = FxHasher::default();
    succs.len().hash(&mut h);
    for s in succs {
        s.hash(&mut h);
    }
    h.finish()
}

/// What a differential refresh did: how many cached successor lists were
/// reused verbatim (fingerprint unchanged), how many were re-expanded, and
/// how many previously unseen states the re-expansion interned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DiffReport {
    /// Cached rows whose successor fingerprint was unchanged — their CSR
    /// slice (and, in the quotient, permutation slice) was copied verbatim.
    pub reused: usize,
    /// Cached rows whose fingerprint moved — re-expanded under the new
    /// model.
    pub recomputed: usize,
    /// States interned during re-expansion that the old arena had not seen.
    pub new_states: usize,
}

/// One chunk's output from [`expand_chunk`]: per-state provisional-id rows
/// (successor provisional ids plus the state's fingerprint, in chunk order)
/// and the chunk's interning statistics.
type ChunkOutput = (Vec<(Vec<u64>, u64)>, InternStats);

/// Expands one chunk of the frontier against the shared store and index:
/// per frontier state, the raw successor list is computed, fingerprinted,
/// and every successor probed-or-staged. Returns per-state provisional-id
/// rows (in chunk order) plus the chunk's interning statistics. Pure with
/// respect to the dense arena — all novelty is staged in the shards.
fn expand_chunk<M: LayeredModel>(
    model: &M,
    store: &Store<M::State>,
    index: &ShardedIndex<M::State>,
    part: &[StateId],
) -> ChunkOutput {
    let mut stats = InternStats::default();
    let rows = part
        .iter()
        .map(|&id| {
            let x = store.get(id.index());
            let raw = model.successors(&x);
            let fp = successor_fingerprint(&raw);
            let provs = raw
                .iter()
                .map(|y| {
                    let key = store.key_of(y);
                    index.probe_or_stage(store, &key, y, 0, &mut stats)
                })
                .collect();
            (provs, fp)
        })
        .collect();
    (rows, stats)
}

/// Quotient twin of [`expand_chunk`]: every raw successor is canonicalized
/// (the `n!` work that dominates quotient expansion) and its orbit
/// representative probed-or-staged with its precomputed orbit size. Rows
/// carry the witnessing permutation alongside each provisional id.
#[allow(clippy::type_complexity)]
fn canon_chunk<M: Symmetric>(
    model: &M,
    store: &Store<M::State>,
    index: &ShardedIndex<M::State>,
    part: &[StateId],
) -> (Vec<(Vec<(u64, PidPerm)>, u64)>, InternStats) {
    let mut stats = InternStats::default();
    let rows = part
        .iter()
        .map(|&id| {
            let x = store.get(id.index());
            let raw = model.successors(&x);
            let fp = successor_fingerprint(&raw);
            let entries = raw
                .iter()
                .map(|y| {
                    let (rep, perm, orbit) = model.canonicalize_with_orbit(y);
                    let key = store.key_of(&rep);
                    (
                        index.probe_or_stage(store, &key, &rep, orbit, &mut stats),
                        perm,
                    )
                })
                .collect();
            (entries, fp)
        })
        .collect();
    (rows, stats)
}

/// A hash-consing arena over a model's states.
///
/// Interning deduplicates states structurally: `intern` returns the same
/// [`StateId`] for equal states and stores each distinct state exactly once.
/// Successor lists are computed lazily (or eagerly, in parallel, via
/// [`StateSpace::prefetch_successors`]) and cached in CSR form, so each
/// `model.successors` call happens at most once per state per space.
///
/// # Examples
///
/// ```
/// use layered_core::space::StateSpace;
/// use layered_core::testkit::CounterModel;
/// use layered_core::LayeredModel;
///
/// let m = CounterModel::new(2, 4);
/// let x0 = m.initial_states().remove(0);
/// let mut space: StateSpace<CounterModel> = StateSpace::for_model(&m);
/// let id = space.intern(&x0);
/// assert_eq!(space.intern(&x0), id); // double-intern: same id
/// assert_eq!(space.resolve(id), x0); // round-trip
/// ```
pub struct StateSpace<M: LayeredModel> {
    store: Store<M::State>,
    index: ShardedIndex<M::State>,
    succ: Vec<Option<SuccRange>>,
    edges: Vec<StateId>,
    /// FxHash fingerprint of each state's *raw* successor list (0 until the
    /// list is cached) — the differential-refresh change detector.
    succ_fp: Vec<u64>,
}

impl<M: LayeredModel> Default for StateSpace<M> {
    fn default() -> Self {
        StateSpace::new()
    }
}

impl<M: LayeredModel> StateSpace<M> {
    /// An empty arena with boxed storage. Prefer
    /// [`StateSpace::for_model`], which picks packed storage when the model
    /// provides a codec.
    #[must_use]
    pub fn new() -> Self {
        StateSpace {
            store: Store::boxed(),
            index: ShardedIndex::new(),
            succ: Vec::new(),
            edges: Vec::new(),
            succ_fp: Vec::new(),
        }
    }

    /// An empty arena storing states packed when `model` provides a
    /// [`StatePacker`] ([`LayeredModel::state_packer`]), boxed otherwise.
    /// Packing is a pure representation change: ids, layers and every
    /// derived report are identical either way.
    #[must_use]
    pub fn for_model(model: &M) -> Self {
        match model.state_packer() {
            Some(p) => StateSpace {
                store: Store::packed(p),
                index: ShardedIndex::new(),
                succ: Vec::new(),
                edges: Vec::new(),
                succ_fp: Vec::new(),
            },
            None => StateSpace::new(),
        }
    }

    /// Number of distinct states interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no state has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// Total successor edges cached so far (with multiplicity).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Interns `s`, returning its dense id (allocating one on first sight).
    pub fn intern(&mut self, s: &M::State) -> StateId {
        self.intern_with(s, &NOOP)
    }

    /// [`StateSpace::intern`] with telemetry: reports `space.intern.hits` /
    /// `space.intern.misses` counters, the `space.states` gauge and the
    /// `space.intern.probe_len` histogram (equality comparisons per probe)
    /// to `obs`.
    pub fn intern_with(&mut self, s: &M::State, obs: &dyn Observer) -> StateId {
        let key = self.store.key_of(s);
        let shard = self.index.shard_mut(key.hash);
        match probe_dense(&self.store, shard.buckets.get(&key.hash), &key, s) {
            Probe::Hit(id, compared) => {
                obs.counter("space.intern.hits", 1);
                obs.histogram("space.intern.probe_len", compared);
                return id;
            }
            Probe::Miss(compared) => obs.histogram("space.intern.probe_len", compared),
        }
        obs.counter("space.intern.misses", 1);
        let id = u32::try_from(self.store.len()).expect("more than u32::MAX states");
        self.store.push(&key, s);
        self.succ.push(None);
        self.succ_fp.push(0);
        shard.buckets.entry(key.hash).or_default().push(id);
        obs.gauge("space.states", self.store.len() as u64);
        StateId(id)
    }

    /// The id of `s` if it has been interned, without interning it.
    #[must_use]
    pub fn get(&self, s: &M::State) -> Option<StateId> {
        let key = self.store.key_of(s);
        let shard = self.index.shard(key.hash);
        match probe_dense(&self.store, shard.buckets.get(&key.hash), &key, s) {
            Probe::Hit(id, _) => Some(id),
            Probe::Miss(_) => None,
        }
    }

    /// The state behind `id`, owned: unpacked from the packed word, or
    /// cloned out of the boxed store.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this space.
    #[must_use]
    pub fn resolve(&self, id: StateId) -> M::State {
        self.store.get(id.index())
    }

    /// The states behind `ids`, owned (used to materialize id paths into
    /// state-typed witnesses at the API boundary).
    #[must_use]
    pub fn materialize(&self, ids: &[StateId]) -> Vec<M::State> {
        ids.iter().map(|&id| self.resolve(id)).collect()
    }

    /// The cached successor list of `id`, or `None` if it has not been
    /// computed yet.
    #[must_use]
    pub fn cached_successors(&self, id: StateId) -> Option<&[StateId]> {
        self.succ[id.index()].map(|r| {
            let start = r.start as usize;
            self.edges
                .get(start..start + r.len as usize)
                .expect("SuccRange lies within the edge array by construction")
        })
    }

    /// Packs already-resolved successor ids of `id` into the edge array.
    /// No-op if `id`'s successors are already cached.
    fn record_ids(&mut self, id: StateId, succs: &[StateId], fp: u64, obs: &dyn Observer) {
        if self.succ[id.index()].is_some() {
            return;
        }
        let start = u32::try_from(self.edges.len()).expect("more than u32::MAX edges");
        self.edges.extend_from_slice(succs);
        let len = u32::try_from(succs.len()).expect("layer larger than u32::MAX");
        self.succ[id.index()] = Some(SuccRange { start, len });
        self.succ_fp[id.index()] = fp;
        obs.histogram("space.succ_fanout", len.into());
    }

    /// Interns the given successor states of `id` and packs them into the
    /// edge array. No-op if `id`'s successors are already cached.
    fn record_successors(&mut self, id: StateId, succs: &[M::State], obs: &dyn Observer) {
        if self.succ[id.index()].is_some() {
            return;
        }
        let fp = successor_fingerprint(succs);
        let ids: Vec<StateId> = succs.iter().map(|y| self.intern_with(y, obs)).collect();
        self.record_ids(id, &ids, fp, obs);
    }

    /// The fingerprint of `id`'s cached raw successor list, or `None` if
    /// the list has not been computed yet.
    #[must_use]
    pub fn successor_fingerprint_of(&self, id: StateId) -> Option<u64> {
        self.succ[id.index()].map(|_| self.succ_fp[id.index()])
    }

    /// Differential re-verification after a model change: recomputes the
    /// raw successor list of every state whose successors were cached,
    /// but re-interns (and re-packs) only the lists whose fingerprint moved
    /// under `model` — unchanged rows have their CSR slice copied verbatim.
    ///
    /// The arena afterwards is *exactly* what caching every old row's new
    /// successor list would produce, modulo edge-array packing order (ids,
    /// states and per-row successor lists are identical; only `SuccRange`
    /// offsets may differ — invisible through [`cached_successors`]).
    /// States interned during re-expansion that the old arena had not seen
    /// start uncached, like any freshly interned state.
    ///
    /// Telemetry: runs under a `space.resume.refresh` span and reports the
    /// `space.resume.rows_reused` / `space.resume.rows_recomputed`
    /// counters.
    ///
    /// [`cached_successors`]: StateSpace::cached_successors
    pub fn refresh_differential(&mut self, model: &M, obs: &dyn Observer) -> DiffReport {
        let _span = Span::enter(obs, "space.resume.refresh");
        let old_len = self.store.len();
        let old_succ = std::mem::take(&mut self.succ);
        let old_edges = std::mem::take(&mut self.edges);
        let old_fp = std::mem::take(&mut self.succ_fp);
        self.succ = vec![None; old_len];
        self.succ_fp = vec![0; old_len];
        let mut report = DiffReport::default();
        for k in 0..old_len {
            let Some(range) = old_succ[k] else { continue };
            let x = self.store.get(k);
            let succs = model.successors(&x);
            let fp = successor_fingerprint(&succs);
            if fp == old_fp[k] {
                let start = u32::try_from(self.edges.len()).expect("more than u32::MAX edges");
                let s = range.start as usize;
                self.edges.extend_from_slice(
                    old_edges
                        .get(s..s + range.len as usize)
                        .expect("resumed SuccRange lies within the loaded edge array"),
                );
                self.succ[k] = Some(SuccRange {
                    start,
                    len: range.len,
                });
                self.succ_fp[k] = fp;
                report.reused += 1;
            } else {
                self.record_successors(StateId(k as u32), &succs, obs);
                report.recomputed += 1;
            }
        }
        report.new_states = self.store.len() - old_len;
        obs.counter("space.resume.rows_reused", report.reused as u64);
        obs.counter("space.resume.rows_recomputed", report.recomputed as u64);
        report
    }

    /// The successor ids of `id` under `model`'s layering, computing and
    /// caching the list on first use.
    pub fn successor_ids(&mut self, model: &M, id: StateId, obs: &dyn Observer) -> Vec<StateId> {
        if self.succ[id.index()].is_none() {
            let x = self.store.get(id.index());
            let succs = model.successors(&x);
            self.record_successors(id, &succs, obs);
        }
        self.cached_successors(id)
            .expect("successors just recorded")
            .to_vec()
    }

    /// The subset of `ids` whose successor lists are not cached yet.
    fn pending_of(&self, ids: &[StateId]) -> Vec<StateId> {
        ids.iter()
            .copied()
            .filter(|id| self.succ[id.index()].is_none())
            .collect()
    }

    /// Renumbers, publishes and records the results of one bulk expansion:
    /// provisional ids are resolved in frontier order ([`ProvMap`] — the
    /// canonical renumbering pass), staged states are published into the
    /// dense store, and every frontier row's CSR slice is packed.
    fn finish_bulk(
        &mut self,
        pending: &[StateId],
        rows: Vec<(Vec<u64>, u64)>,
        stats: InternStats,
        obs: &dyn Observer,
    ) {
        let base = u32::try_from(self.store.len()).expect("more than u32::MAX states");
        let mut map = ProvMap::new(&self.index.pending_lens(), base);
        let resolved: Vec<(Vec<StateId>, u64)> = rows
            .into_iter()
            .map(|(provs, fp)| (provs.into_iter().map(|p| map.resolve(p)).collect(), fp))
            .collect();
        let orbits = self.index.publish(&mut self.store, &map);
        for _ in 0..orbits.len() {
            self.succ.push(None);
            self.succ_fp.push(0);
        }
        obs.counter("space.intern.hits", stats.hits);
        obs.counter("space.intern.misses", stats.misses);
        obs.counter("space.shard.contention", stats.contention);
        obs.counter("space.intern.cas_retries", stats.retries);
        obs.gauge("space.states", self.store.len() as u64);
        for (&id, (yids, fp)) in pending.iter().zip(&resolved) {
            self.record_ids(id, yids, *fp, obs);
        }
    }

    /// Sequential bulk expansion of `ids` (no `Sync` bounds): the exact
    /// same probe-stage-renumber-publish path the parallel variant uses,
    /// run inline.
    fn bulk_seq(&mut self, model: &M, ids: &[StateId], obs: &dyn Observer) {
        let pending = self.pending_of(ids);
        if pending.is_empty() {
            return;
        }
        let (rows, stats) = expand_chunk(model, &self.store, &self.index, &pending);
        self.finish_bulk(&pending, rows, stats, obs);
    }

    /// Parallel bulk expansion of `ids` across up to `threads` scoped
    /// workers probing the sharded index concurrently.
    fn bulk_par(&mut self, model: &M, ids: &[StateId], threads: usize, obs: &dyn Observer)
    where
        M: Sync,
        M::State: Send + Sync,
    {
        let pending = self.pending_of(ids);
        if pending.is_empty() {
            return;
        }
        let threads = threads.max(1).min(pending.len());
        if threads == 1 {
            let (rows, stats) = expand_chunk(model, &self.store, &self.index, &pending);
            self.finish_bulk(&pending, rows, stats, obs);
            return;
        }
        let (store, index) = (&self.store, &self.index);
        let parent = trace::current_span_id();
        let chunked: Vec<ChunkOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = balanced_chunks(&pending, threads)
                .map(|part| {
                    scope.spawn(move || {
                        let _span = Span::enter_under(
                            obs,
                            "space.prefetch_chunk",
                            parent,
                            &[("chunk_len", part.len() as u64)],
                        );
                        expand_chunk(model, store, index, part)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("successor worker panicked"))
                .collect()
        });
        let mut rows = Vec::with_capacity(pending.len());
        let mut stats = InternStats::default();
        for (r, s) in chunked {
            rows.extend(r);
            stats.merge(&s);
        }
        self.finish_bulk(&pending, rows, stats, obs);
    }

    /// Eagerly computes and caches the successor lists of `ids`, fanning
    /// the `model.successors` calls out across up to `threads` scoped
    /// workers that intern through the sharded index as they expand.
    ///
    /// Determinism: workers probe and stage concurrently, but no dense id
    /// is assigned until the renumbering pass on the calling thread walks
    /// the results in the order of `ids` — the exact order the sequential
    /// path would have used. The resulting interning order — and therefore
    /// every id, layer and report derived from it — is identical to calling
    /// [`StateSpace::successor_ids`] sequentially over `ids`.
    pub fn prefetch_successors(
        &mut self,
        model: &M,
        ids: &[StateId],
        threads: usize,
        obs: &dyn Observer,
    ) where
        M: Sync,
        M::State: Send + Sync,
    {
        self.bulk_par(model, ids, threads, obs);
    }

    /// Breadth-first expansion of the layered graph from `roots` for
    /// `horizon` layers, interning every state and caching every successor
    /// list. Returns the interned levels (`levels[d]` = distinct states at
    /// depth `d` relative to the roots, in first-seen order).
    ///
    /// Telemetry: the sweep runs under a `space.build` span and reports
    /// `engine.states_visited`, `engine.dedup_hits` and the
    /// `engine.frontier_width` gauge alongside the interning counters.
    pub fn expand_layers(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        obs: &dyn Observer,
    ) -> Vec<Vec<StateId>> {
        self.expand_with(model, roots, horizon, obs, |space, frontier| {
            space.bulk_seq(model, frontier, obs);
        })
    }

    /// [`StateSpace::expand_layers`] with the per-level successor
    /// computation fanned out across up to `threads` scoped workers.
    ///
    /// Bit-identical to the sequential path (see
    /// [`StateSpace::prefetch_successors`] for why).
    pub fn expand_layers_parallel(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        threads: usize,
        obs: &dyn Observer,
    ) -> Vec<Vec<StateId>>
    where
        M: Sync,
        M::State: Send + Sync,
    {
        self.expand_with(model, roots, horizon, obs, |space, frontier| {
            space.bulk_par(model, frontier, threads, obs);
        })
    }

    fn expand_with(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        obs: &dyn Observer,
        mut prefetch: impl FnMut(&mut Self, &[StateId]),
    ) -> Vec<Vec<StateId>> {
        let _span = Span::enter(obs, "space.build");
        obs.gauge("space.shard.count", SHARD_COUNT as u64);
        let mut levels: Vec<Vec<StateId>> = Vec::with_capacity(horizon + 1);
        let mut frontier: Vec<StateId> = Vec::new();
        let mut seen: HashSet<StateId> = HashSet::new();
        for r in roots {
            let id = self.intern_with(r, obs);
            if seen.insert(id) {
                frontier.push(id);
            } else {
                obs.counter("engine.dedup_hits", 1);
            }
        }
        obs.gauge("engine.frontier_width", frontier.len() as u64);
        levels.push(frontier.clone());
        let mut heartbeat = Heartbeat::new();
        for depth in 0..horizon {
            let _layer_span = Span::enter_with(
                obs,
                "space.layer",
                &[
                    ("depth", depth as u64 + 1),
                    ("frontier", frontier.len() as u64),
                ],
            );
            let layer_started = if obs.enabled() {
                clock::monotonic_ns()
            } else {
                0
            };
            prefetch(self, &frontier);
            let mut seen: HashSet<StateId> = HashSet::new();
            let mut next = Vec::new();
            for &id in &frontier {
                obs.counter("engine.states_visited", 1);
                for y in self.successor_ids(model, id, obs) {
                    if seen.insert(y) {
                        next.push(y);
                    } else {
                        obs.counter("engine.dedup_hits", 1);
                    }
                }
            }
            if obs.enabled() {
                obs.histogram(
                    "space.layer_expand_ns",
                    clock::monotonic_ns().saturating_sub(layer_started),
                );
            }
            obs.gauge("engine.frontier_width", next.len() as u64);
            heartbeat.tick(obs, depth + 1, next.len(), self.len());
            levels.push(next.clone());
            frontier = next;
        }
        levels
    }
}

/// Shared estimate of the sharded intern index's bytes: each shard map's
/// own capacity plus every bucket vector's. Shallow (allocator headers and
/// the drained pending scratch excluded), but deterministic — capacities
/// depend only on per-shard entry counts, which are a pure function of the
/// interned set.
fn index_bytes<S>(index: &ShardedIndex<S>) -> u64 {
    index
        .shards
        .iter()
        .map(|m| {
            let g = match m.lock() {
                Ok(g) => g,
                Err(_) => panic!("intern shard poisoned: a worker panicked"),
            };
            let table = g.buckets.capacity() as u64 * std::mem::size_of::<(u64, Vec<u32>)>() as u64;
            let buckets: u64 = g
                .buckets
                .values()
                .map(|b| b.capacity() as u64 * std::mem::size_of::<u32>() as u64)
                .sum();
            table + buckets
        })
        .sum()
}

/// Intern-table load factor in fixed-point thousandths
/// (`distinct hashes / table capacity × 1000`, summed across shards).
fn index_load_x1000<S>(index: &ShardedIndex<S>) -> u64 {
    let (mut len, mut cap) = (0u64, 0u64);
    for m in &index.shards {
        let g = match m.lock() {
            Ok(g) => g,
            Err(_) => panic!("intern shard poisoned: a worker panicked"),
        };
        len += g.buckets.len() as u64;
        cap += g.buckets.capacity() as u64;
    }
    len * 1000 / cap.max(1)
}

impl<M: LayeredModel> MemoryFootprint for StateSpace<M> {
    /// Shallow, capacity-based accounting (see
    /// [`telemetry::mem`](crate::telemetry::mem)): state payloads that own
    /// further heap (e.g. vectors inside `M::State`) are counted at their
    /// inline size only, so every figure is a deterministic lower bound.
    /// Packed stores count 16 bytes per word plus the spill vector.
    fn memory_footprint(&self) -> MemoryBreakdown {
        let mut b = MemoryBreakdown::new();
        b.push("mem.space.states_bytes", self.store.state_bytes());
        b.push("mem.space.index_bytes", index_bytes(&self.index));
        b.push(
            "mem.space.edges_bytes",
            self.edges.capacity() as u64 * std::mem::size_of::<StateId>() as u64
                + self.succ.capacity() as u64 * std::mem::size_of::<Option<SuccRange>>() as u64,
        );
        b
    }

    /// Adds the `space.intern.load_x1000` and `space.pack.bytes_saved`
    /// gauges next to the byte gauges.
    fn report_memory(&self, obs: &dyn Observer) {
        self.memory_footprint().report(obs);
        obs.gauge("space.intern.load_x1000", index_load_x1000(&self.index));
        obs.gauge("space.pack.bytes_saved", self.store.bytes_saved());
    }
}

impl<M: Symmetric> MemoryFootprint for QuotientSpace<M> {
    /// Shallow, capacity-based accounting like
    /// [`StateSpace`]'s, plus the quotient-only arrays: orbit sizes and
    /// the per-edge witnessing permutations (counted at their inline size
    /// plus their permutation maps).
    fn memory_footprint(&self) -> MemoryBreakdown {
        let mut b = MemoryBreakdown::new();
        b.push("mem.space.states_bytes", self.store.state_bytes());
        b.push("mem.space.index_bytes", index_bytes(&self.index));
        b.push(
            "mem.space.edges_bytes",
            self.edges.capacity() as u64 * std::mem::size_of::<StateId>() as u64
                + self.succ.capacity() as u64 * std::mem::size_of::<Option<SuccRange>>() as u64,
        );
        b.push(
            "mem.space.orbits_bytes",
            self.orbit_sizes.capacity() as u64 * std::mem::size_of::<u64>() as u64,
        );
        let perm_maps: u64 = self.edge_perms.iter().map(|p| p.degree() as u64).sum();
        b.push(
            "mem.space.perms_bytes",
            self.edge_perms.capacity() as u64 * std::mem::size_of::<PidPerm>() as u64 + perm_maps,
        );
        b
    }

    /// Adds the `space.intern.load_x1000` and `space.pack.bytes_saved`
    /// gauges next to the byte gauges.
    fn report_memory(&self, obs: &dyn Observer) {
        self.memory_footprint().report(obs);
        obs.gauge("space.intern.load_x1000", index_load_x1000(&self.index));
        obs.gauge("space.pack.bytes_saved", self.store.bytes_saved());
    }
}

/// Splits `items` into at most `parts` contiguous chunks whose lengths
/// differ by at most one (the first `len % parts` chunks get the extra
/// element). Unlike `chunks(len.div_ceil(parts))`, this never produces a
/// degenerate tail chunk — 9 items over 8 workers yield chunks of
/// 2,1,1,1,1,1,1,1 instead of four chunks of 2 and one of 1 on 5 workers.
fn balanced_chunks<T>(items: &[T], parts: usize) -> impl Iterator<Item = &[T]> {
    let parts = parts.clamp(1, items.len().max(1));
    let base = items.len() / parts;
    let extra = items.len() % parts;
    let mut start = 0;
    (0..parts).map(move |k| {
        let len = base + usize::from(k < extra);
        let part = items
            .get(start..start + len)
            .expect("chunk arithmetic partitions the slice exactly");
        start += len;
        part
    })
}

/// A hash-consing arena over *canonical orbit representatives* of a
/// [`Symmetric`] model's states.
///
/// Interning canonicalizes first: all `n!` process renamings of a state
/// collapse to one [`StateId`], so the arena holds exactly one state per
/// orbit and successor lists are computed once per orbit instead of once
/// per member. Each cached edge `c → c'` additionally stores a permutation
/// `σ` such that `σ · y = c'` for the raw successor `y ∈ S(c)` it came
/// from; [`QuotientSpace::dequotient_path`] folds those witnesses back into
/// a genuine execution of the model (see the de-quotienting recurrence
/// there), which is how id paths through the quotient turn into runs that
/// pass [`ExecutionTrace::validate`](crate::ExecutionTrace::validate).
///
/// # Soundness requires an equivariant layering
///
/// The construction is a quotient of the layered graph only when
/// `S(π·x) = π·S(x)`; [`QuotientSpace::new`] therefore panics unless
/// [`Symmetric::symmetric_layering`] holds for the model's current
/// configuration (each model crate's *full* layering variant).
///
/// # Id layout and determinism
///
/// Identical to [`StateSpace`]: ids are assigned in interning order of the
/// canonical representatives, successor lists are CSR-packed, and the
/// parallel expansion path is bit-identical to the sequential one (workers
/// compute *and canonicalize* successors for disjoint frontier chunks —
/// both pure — staging novel orbits in the sharded index, and the dense
/// renumbering happens on the calling thread in frontier order).
pub struct QuotientSpace<M: Symmetric> {
    /// Canonical representatives, packed or boxed, indexed by [`StateId`].
    store: Store<M::State>,
    /// Orbit size of each representative (distinct renamings of it).
    orbit_sizes: Vec<u64>,
    index: ShardedIndex<M::State>,
    succ: Vec<Option<SuccRange>>,
    edges: Vec<StateId>,
    /// Per-edge witnessing permutation, parallel to `edges`: for the edge
    /// at position `e` from `c` to `c'`, `edge_perms[e] · y = c'` where
    /// `y ∈ S(c)` is the raw successor the edge was computed from.
    edge_perms: Vec<PidPerm>,
    /// FxHash fingerprint of each orbit's *raw* (pre-canonicalization)
    /// successor list (0 until cached) — the differential-refresh change
    /// detector.
    succ_fp: Vec<u64>,
}

/// A raw successor, canonicalized: the orbit representative, the witnessing
/// permutation, and the orbit size (precomputed off-arena so parallel
/// workers can do the `n!`-enumeration work).
type CanonSucc<M> = (<M as LayeredModel>::State, PidPerm, u64);

impl<M: Symmetric> QuotientSpace<M> {
    /// An empty quotient arena for `model`, storing representatives packed
    /// when the model provides a [`StatePacker`], boxed otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the model's current layering is not equivariant
    /// ([`Symmetric::symmetric_layering`] is `false`) — quotienting a
    /// prefix-based layering would silently prune reachable orbits.
    #[must_use]
    pub fn new(model: &M) -> Self {
        let store = match model.state_packer() {
            Some(p) => Store::packed(p),
            None => Store::boxed(),
        };
        Self::with_store(model, store)
    }

    /// An empty quotient arena with boxed storage even when the model
    /// packs (the packed-vs-boxed cross-check path).
    ///
    /// # Panics
    ///
    /// Panics like [`QuotientSpace::new`] on a non-equivariant layering.
    #[must_use]
    pub fn new_boxed(model: &M) -> Self {
        Self::with_store(model, Store::boxed())
    }

    fn with_store(model: &M, store: Store<M::State>) -> Self {
        assert!(
            model.symmetric_layering(),
            "QuotientSpace requires an equivariant layering \
             (use the model's full/symmetric layering variant)"
        );
        QuotientSpace {
            store,
            orbit_sizes: Vec::new(),
            index: ShardedIndex::new(),
            succ: Vec::new(),
            edges: Vec::new(),
            edge_perms: Vec::new(),
            succ_fp: Vec::new(),
        }
    }

    /// Number of orbits interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no orbit has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// Total successor edges cached so far (with multiplicity).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total full-space states covered by the interned orbits (the sum of
    /// their orbit sizes) — the denominator-free form of the compression
    /// the quotient achieves.
    #[must_use]
    pub fn covered_states(&self) -> u64 {
        self.orbit_sizes.iter().sum()
    }

    /// Interns a state that is *already* a canonical representative with a
    /// known orbit size. Internal: callers go through `intern_with`.
    fn intern_canonical(&mut self, rep: &M::State, orbit: u64, obs: &dyn Observer) -> StateId {
        let key = self.store.key_of(rep);
        let shard = self.index.shard_mut(key.hash);
        if let Probe::Hit(id, _) = probe_dense(&self.store, shard.buckets.get(&key.hash), &key, rep)
        {
            obs.counter("space.canon.hits", 1);
            return id;
        }
        let id = u32::try_from(self.store.len()).expect("more than u32::MAX orbits");
        self.store.push(&key, rep);
        self.orbit_sizes.push(orbit);
        self.succ.push(None);
        self.succ_fp.push(0);
        shard.buckets.entry(key.hash).or_default().push(id);
        obs.counter("space.canon.orbit_states", orbit);
        obs.gauge("space.states", self.store.len() as u64);
        // Mean orbit size in fixed-point thousandths (a reading of 5920
        // means each interned representative stands for 5.92 full-space
        // states on average) — see the units table in `telemetry::names`.
        obs.gauge(
            "space.quotient.mean_orbit_x1000",
            self.covered_states() * 1000 / self.store.len() as u64,
        );
        StateId(id)
    }

    /// Interns the orbit of `x`, returning the representative's id and a
    /// permutation `π` with `π · x == representative`.
    pub fn intern(&mut self, model: &M, x: &M::State) -> (StateId, PidPerm) {
        self.intern_with(model, x, &NOOP)
    }

    /// [`QuotientSpace::intern`] with telemetry: canonicalization runs
    /// under a `space.canonicalize` span and reports `space.canon.hits` /
    /// `space.canon.orbit_states` counters plus the `space.states` and
    /// `space.quotient.mean_orbit_x1000` gauges.
    pub fn intern_with(
        &mut self,
        model: &M,
        x: &M::State,
        obs: &dyn Observer,
    ) -> (StateId, PidPerm) {
        let (rep, perm, orbit) = {
            let _span = Span::enter(obs, "space.canonicalize");
            model.canonicalize_with_orbit(x)
        };
        let id = self.intern_canonical(&rep, orbit, obs);
        (id, perm)
    }

    /// The representative's id for `x`'s orbit if it has been interned,
    /// without interning it.
    #[must_use]
    pub fn get(&self, model: &M, x: &M::State) -> Option<StateId> {
        let (rep, _) = model.canonicalize(x);
        let key = self.store.key_of(&rep);
        let shard = self.index.shard(key.hash);
        match probe_dense(&self.store, shard.buckets.get(&key.hash), &key, &rep) {
            Probe::Hit(id, _) => Some(id),
            Probe::Miss(_) => None,
        }
    }

    /// The canonical representative behind `id`, owned: unpacked from the
    /// packed word, or cloned out of the boxed store.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this space.
    #[must_use]
    pub fn resolve(&self, id: StateId) -> M::State {
        self.store.get(id.index())
    }

    /// The orbit size of the representative behind `id`.
    #[must_use]
    pub fn orbit_size_of(&self, id: StateId) -> u64 {
        self.orbit_sizes[id.index()]
    }

    /// The representatives behind `ids`, owned.
    #[must_use]
    pub fn materialize(&self, ids: &[StateId]) -> Vec<M::State> {
        ids.iter().map(|&id| self.resolve(id)).collect()
    }

    /// The cached successor list of `id` (orbit representatives), or `None`
    /// if it has not been computed yet.
    #[must_use]
    pub fn cached_successors(&self, id: StateId) -> Option<&[StateId]> {
        self.succ[id.index()].map(|r| {
            let start = r.start as usize;
            self.edges
                .get(start..start + r.len as usize)
                .expect("SuccRange lies within the edge array by construction")
        })
    }

    /// The cached successor list of `id` together with the per-edge
    /// witnessing permutations.
    #[must_use]
    pub fn cached_successors_with_perms(&self, id: StateId) -> Option<(&[StateId], &[PidPerm])> {
        self.succ[id.index()].map(|r| {
            let (start, end) = (r.start as usize, r.start as usize + r.len as usize);
            (&self.edges[start..end], &self.edge_perms[start..end])
        })
    }

    /// Canonicalizes the raw successors of the representative behind `id`
    /// (pure). Also returns the fingerprint of the *raw* successor list —
    /// computed before canonicalization so a protocol change is detected
    /// even when the canonical images happen to coincide.
    fn canon_successors_of(&self, model: &M, id: StateId) -> (Vec<CanonSucc<M>>, u64) {
        let x = self.store.get(id.index());
        let raw = model.successors(&x);
        let fp = successor_fingerprint(&raw);
        let canon = raw
            .iter()
            .map(|y| model.canonicalize_with_orbit(y))
            .collect();
        (canon, fp)
    }

    /// Packs already-resolved successor entries of `id` into the edge
    /// arrays, deduplicating by representative id (first witness wins).
    /// No-op if `id`'s successors are already cached.
    fn record_canon_ids(
        &mut self,
        id: StateId,
        entries: &[(StateId, PidPerm)],
        fp: u64,
        obs: &dyn Observer,
    ) {
        if self.succ[id.index()].is_some() {
            return;
        }
        let start = u32::try_from(self.edges.len()).expect("more than u32::MAX edges");
        let mut seen: HashSet<StateId> = HashSet::new();
        for (yid, perm) in entries {
            if seen.insert(*yid) {
                self.edges.push(*yid);
                self.edge_perms.push(perm.clone());
            }
        }
        let len = u32::try_from(seen.len()).expect("layer larger than u32::MAX");
        self.succ[id.index()] = Some(SuccRange { start, len });
        self.succ_fp[id.index()] = fp;
        obs.histogram("space.succ_fanout", len.into());
    }

    /// Interns pre-canonicalized successors of `id` into the edge arrays,
    /// deduplicating by representative id (first witness wins). No-op if
    /// `id`'s successors are already cached. `fp` is the raw-successor-list
    /// fingerprint from [`QuotientSpace::canon_successors_of`].
    fn record_successors(
        &mut self,
        id: StateId,
        succs: &[CanonSucc<M>],
        fp: u64,
        obs: &dyn Observer,
    ) {
        if self.succ[id.index()].is_some() {
            return;
        }
        let entries: Vec<(StateId, PidPerm)> = succs
            .iter()
            .map(|(rep, perm, orbit)| (self.intern_canonical(rep, *orbit, obs), perm.clone()))
            .collect();
        self.record_canon_ids(id, &entries, fp, obs);
    }

    /// The successor orbit ids of `id` under `model`'s layering, computing,
    /// canonicalizing and caching the list on first use. Multiple raw
    /// successors in the same orbit collapse to one edge.
    pub fn successor_ids(&mut self, model: &M, id: StateId, obs: &dyn Observer) -> Vec<StateId> {
        if self.succ[id.index()].is_none() {
            let (succs, fp) = self.canon_successors_of(model, id);
            self.record_successors(id, &succs, fp, obs);
        }
        self.cached_successors(id)
            .expect("successors just recorded")
            .to_vec()
    }

    /// The fingerprint of `id`'s cached raw successor list, or `None` if
    /// the list has not been computed yet.
    #[must_use]
    pub fn successor_fingerprint_of(&self, id: StateId) -> Option<u64> {
        self.succ[id.index()].map(|_| self.succ_fp[id.index()])
    }

    /// Differential re-verification after a protocol change — the quotient
    /// twin of [`StateSpace::refresh_differential`]: every cached orbit's
    /// raw successor list is recomputed under `model`, but only orbits
    /// whose fingerprint moved pay for canonicalization (the `n!` work that
    /// dominates quotient expansion); unchanged orbits have their CSR and
    /// permutation slices copied verbatim.
    ///
    /// Telemetry: a `space.resume.refresh` span plus the
    /// `space.resume.orbits_reused` / `space.resume.orbits_recomputed`
    /// counters.
    pub fn refresh_differential(&mut self, model: &M, obs: &dyn Observer) -> DiffReport {
        let _span = Span::enter(obs, "space.resume.refresh");
        let old_len = self.store.len();
        let old_succ = std::mem::take(&mut self.succ);
        let old_edges = std::mem::take(&mut self.edges);
        let old_perms = std::mem::take(&mut self.edge_perms);
        let old_fp = std::mem::take(&mut self.succ_fp);
        self.succ = vec![None; old_len];
        self.succ_fp = vec![0; old_len];
        let mut report = DiffReport::default();
        for k in 0..old_len {
            let Some(range) = old_succ[k] else { continue };
            let x = self.store.get(k);
            let raw = model.successors(&x);
            let fp = successor_fingerprint(&raw);
            if fp == old_fp[k] {
                let start = u32::try_from(self.edges.len()).expect("more than u32::MAX edges");
                let (s, e) = (range.start as usize, (range.start + range.len) as usize);
                self.edges.extend_from_slice(&old_edges[s..e]);
                self.edge_perms.extend_from_slice(&old_perms[s..e]);
                self.succ[k] = Some(SuccRange {
                    start,
                    len: range.len,
                });
                self.succ_fp[k] = fp;
                report.reused += 1;
            } else {
                let canon: Vec<CanonSucc<M>> = raw
                    .iter()
                    .map(|y| model.canonicalize_with_orbit(y))
                    .collect();
                self.record_successors(StateId(k as u32), &canon, fp, obs);
                report.recomputed += 1;
            }
        }
        report.new_states = self.store.len() - old_len;
        obs.counter("space.resume.orbits_reused", report.reused as u64);
        obs.counter("space.resume.orbits_recomputed", report.recomputed as u64);
        report
    }

    /// The subset of `ids` whose successor lists are not cached yet.
    fn pending_of(&self, ids: &[StateId]) -> Vec<StateId> {
        ids.iter()
            .copied()
            .filter(|id| self.succ[id.index()].is_none())
            .collect()
    }

    /// Renumbers, publishes and records the results of one bulk quotient
    /// expansion (see [`StateSpace::finish_bulk`]); staged orbit sizes are
    /// published alongside the representatives.
    #[allow(clippy::type_complexity)]
    fn finish_bulk(
        &mut self,
        pending: &[StateId],
        rows: Vec<(Vec<(u64, PidPerm)>, u64)>,
        stats: InternStats,
        obs: &dyn Observer,
    ) {
        let base = u32::try_from(self.store.len()).expect("more than u32::MAX orbits");
        let mut map = ProvMap::new(&self.index.pending_lens(), base);
        let resolved: Vec<(Vec<(StateId, PidPerm)>, u64)> = rows
            .into_iter()
            .map(|(entries, fp)| {
                (
                    entries
                        .into_iter()
                        .map(|(p, perm)| (map.resolve(p), perm))
                        .collect(),
                    fp,
                )
            })
            .collect();
        let orbits = self.index.publish(&mut self.store, &map);
        obs.counter("space.canon.hits", stats.hits);
        obs.counter("space.canon.orbit_states", orbits.iter().sum());
        obs.counter("space.shard.contention", stats.contention);
        obs.counter("space.intern.cas_retries", stats.retries);
        for orbit in orbits {
            self.orbit_sizes.push(orbit);
            self.succ.push(None);
            self.succ_fp.push(0);
        }
        obs.gauge("space.states", self.store.len() as u64);
        if self.store.len() > 0 {
            obs.gauge(
                "space.quotient.mean_orbit_x1000",
                self.covered_states() * 1000 / self.store.len() as u64,
            );
        }
        for (&id, (entries, fp)) in pending.iter().zip(&resolved) {
            self.record_canon_ids(id, entries, *fp, obs);
        }
    }

    /// Sequential bulk expansion of `ids` (no `Sync` bounds): the exact
    /// same probe-stage-renumber-publish path the parallel variant uses,
    /// run inline.
    fn bulk_seq(&mut self, model: &M, ids: &[StateId], obs: &dyn Observer) {
        let pending = self.pending_of(ids);
        if pending.is_empty() {
            return;
        }
        let (rows, stats) = canon_chunk(model, &self.store, &self.index, &pending);
        self.finish_bulk(&pending, rows, stats, obs);
    }

    /// Parallel bulk expansion of `ids` across up to `threads` scoped
    /// workers canonicalizing and probing the sharded index concurrently.
    fn bulk_par(&mut self, model: &M, ids: &[StateId], threads: usize, obs: &dyn Observer)
    where
        M: Sync,
        M::State: Send + Sync,
    {
        let pending = self.pending_of(ids);
        if pending.is_empty() {
            return;
        }
        let threads = threads.max(1).min(pending.len());
        if threads == 1 {
            let (rows, stats) = canon_chunk(model, &self.store, &self.index, &pending);
            self.finish_bulk(&pending, rows, stats, obs);
            return;
        }
        let (store, index) = (&self.store, &self.index);
        let parent = trace::current_span_id();
        type ChunkOut = (Vec<(Vec<(u64, PidPerm)>, u64)>, InternStats);
        let chunked: Vec<ChunkOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = balanced_chunks(&pending, threads)
                .map(|part| {
                    scope.spawn(move || {
                        let _span = Span::enter_under(
                            obs,
                            "space.prefetch_chunk",
                            parent,
                            &[("chunk_len", part.len() as u64)],
                        );
                        canon_chunk(model, store, index, part)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("canonicalization worker panicked"))
                .collect()
        });
        let mut rows = Vec::with_capacity(pending.len());
        let mut stats = InternStats::default();
        for (r, s) in chunked {
            rows.extend(r);
            stats.merge(&s);
        }
        self.finish_bulk(&pending, rows, stats, obs);
    }

    /// Eagerly computes, canonicalizes and caches the successor lists of
    /// `ids`, fanning the per-orbit work (`model.successors` plus the
    /// canonicalization of every raw successor — the expensive part of
    /// quotient expansion) across up to `threads` scoped workers that
    /// intern through the sharded index as they expand. Deterministic for
    /// the same reason as [`StateSpace::prefetch_successors`]: dense ids
    /// are only assigned by the frontier-order renumbering pass on the
    /// calling thread.
    pub fn prefetch_successors(
        &mut self,
        model: &M,
        ids: &[StateId],
        threads: usize,
        obs: &dyn Observer,
    ) where
        M: Sync,
        M::State: Send + Sync,
    {
        self.bulk_par(model, ids, threads, obs);
    }

    /// Breadth-first expansion of the *quotient* graph from `roots` for
    /// `horizon` layers: each root is canonicalized and interned, and each
    /// level holds the distinct orbit representatives at that depth.
    ///
    /// Telemetry mirrors [`StateSpace::expand_layers`] (`space.build` span,
    /// `engine.*` counters) plus the quotient counters from
    /// [`QuotientSpace::intern_with`].
    pub fn expand_layers(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        obs: &dyn Observer,
    ) -> Vec<Vec<StateId>> {
        self.expand_with(model, roots, horizon, obs, |space, frontier| {
            space.bulk_seq(model, frontier, obs);
        })
    }

    /// [`QuotientSpace::expand_layers`] with per-level successor
    /// computation and canonicalization fanned out across up to `threads`
    /// scoped workers. Bit-identical to the sequential path.
    pub fn expand_layers_parallel(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        threads: usize,
        obs: &dyn Observer,
    ) -> Vec<Vec<StateId>>
    where
        M: Sync,
        M::State: Send + Sync,
    {
        self.expand_with(model, roots, horizon, obs, |space, frontier| {
            space.bulk_par(model, frontier, threads, obs);
        })
    }

    fn expand_with(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        obs: &dyn Observer,
        mut prefetch: impl FnMut(&mut Self, &[StateId]),
    ) -> Vec<Vec<StateId>> {
        let _span = Span::enter(obs, "space.build");
        obs.gauge("space.shard.count", SHARD_COUNT as u64);
        let mut levels: Vec<Vec<StateId>> = Vec::with_capacity(horizon + 1);
        let mut frontier: Vec<StateId> = Vec::new();
        let mut seen: HashSet<StateId> = HashSet::new();
        for r in roots {
            let (id, _) = self.intern_with(model, r, obs);
            if seen.insert(id) {
                frontier.push(id);
            } else {
                obs.counter("engine.dedup_hits", 1);
            }
        }
        obs.gauge("engine.frontier_width", frontier.len() as u64);
        levels.push(frontier.clone());
        let mut heartbeat = Heartbeat::new();
        for depth in 0..horizon {
            let _layer_span = Span::enter_with(
                obs,
                "space.layer",
                &[
                    ("depth", depth as u64 + 1),
                    ("frontier", frontier.len() as u64),
                ],
            );
            let layer_started = if obs.enabled() {
                clock::monotonic_ns()
            } else {
                0
            };
            prefetch(self, &frontier);
            let mut seen: HashSet<StateId> = HashSet::new();
            let mut next = Vec::new();
            for &id in &frontier {
                obs.counter("engine.states_visited", 1);
                for y in self.successor_ids(model, id, obs) {
                    if seen.insert(y) {
                        next.push(y);
                    } else {
                        obs.counter("engine.dedup_hits", 1);
                    }
                }
            }
            if obs.enabled() {
                obs.histogram(
                    "space.layer_expand_ns",
                    clock::monotonic_ns().saturating_sub(layer_started),
                );
            }
            obs.gauge("engine.frontier_width", next.len() as u64);
            heartbeat.tick(obs, depth + 1, next.len(), self.len());
            levels.push(next.clone());
            frontier = next;
        }
        levels
    }

    /// De-quotients an id path into a genuine execution of the model.
    ///
    /// Given representatives `c₀ → c₁ → ⋯ → c_k` along cached quotient
    /// edges with witnesses `σᵢ` (`σᵢ · yᵢ = cᵢ` for a raw successor
    /// `yᵢ ∈ S(cᵢ₋₁)`), the recurrence
    ///
    /// ```text
    ///     ρ₀ = id,   ρᵢ = ρᵢ₋₁ ∘ σᵢ⁻¹,   xᵢ = ρᵢ · cᵢ
    /// ```
    ///
    /// produces states with `x₀ = c₀` and `xᵢ ∈ S(xᵢ₋₁)`: indeed
    /// `xᵢ = ρᵢ₋₁ · yᵢ` with `yᵢ ∈ S(cᵢ₋₁)`, and equivariance gives
    /// `ρᵢ₋₁ · S(cᵢ₋₁) = S(ρᵢ₋₁ · cᵢ₋₁) = S(xᵢ₋₁)`. Since canonical
    /// representatives of initial-state orbits are themselves initial
    /// states (the initial set is closed under renaming), the returned
    /// sequence is a genuine `S`-execution whenever `c₀` is initial.
    ///
    /// Returns `None` if some consecutive pair is not a cached quotient
    /// edge (successors never computed, or not actually adjacent).
    #[must_use]
    pub fn dequotient_path(&self, model: &M, path: &[StateId]) -> Option<Vec<M::State>> {
        let first = path.first()?;
        let mut out = vec![self.resolve(*first)];
        let mut rho = PidPerm::identity(model.num_processes());
        for pair in path.windows(2) {
            let (succs, perms) = self.cached_successors_with_perms(pair[0])?;
            let pos = succs.iter().position(|&s| s == pair[1])?;
            rho = rho.compose(&perms[pos].inverse());
            out.push(model.permute_state(&self.resolve(pair[1]), &rho));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MetricsRegistry;
    use crate::testkit::CounterModel;

    #[test]
    fn intern_round_trips_and_deduplicates() {
        let m = CounterModel::new(2, 4);
        let mut space: StateSpace<CounterModel> = StateSpace::for_model(&m);
        let states = m.initial_states();
        let ids: Vec<StateId> = states.iter().map(|s| space.intern(s)).collect();
        // Dense, contiguous, in interning order.
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), k);
            assert_eq!(space.resolve(*id), states[k]);
        }
        // Double interning returns the same ids and allocates nothing.
        let before = space.len();
        for (k, s) in states.iter().enumerate() {
            assert_eq!(space.intern(s), ids[k]);
        }
        assert_eq!(space.len(), before);
        assert_eq!(space.get(&states[0]), Some(ids[0]));
    }

    #[test]
    fn successor_lists_are_cached_once() {
        let m = CounterModel::new(2, 4);
        let mut space: StateSpace<CounterModel> = StateSpace::for_model(&m);
        let x0 = m.initial_states().remove(0);
        let id = space.intern(&x0);
        assert!(space.cached_successors(id).is_none());
        let a = space.successor_ids(&m, id, &NOOP);
        let edges_after_first = space.edge_count();
        let b = space.successor_ids(&m, id, &NOOP);
        assert_eq!(a, b);
        assert_eq!(space.edge_count(), edges_after_first, "no recompute");
        assert_eq!(space.materialize(&a), m.successors(&x0));
    }

    #[test]
    fn expand_layers_matches_model_exploration() {
        let m = CounterModel::new(3, 4);
        let roots = m.initial_states();
        let mut space: StateSpace<CounterModel> = StateSpace::for_model(&m);
        let levels = space.expand_layers(&m, &roots, 3, &NOOP);
        let reference = crate::explore(&m, &roots, 3);
        assert_eq!(levels.len(), reference.levels.len());
        for (ids, states) in levels.iter().zip(&reference.levels) {
            assert_eq!(&space.materialize(ids), states);
        }
    }

    #[test]
    fn parallel_expansion_is_bit_identical() {
        let m = CounterModel::new(3, 4);
        let roots = m.initial_states();
        let mut seq: StateSpace<CounterModel> = StateSpace::for_model(&m);
        let seq_levels = seq.expand_layers(&m, &roots, 3, &NOOP);
        for threads in [2, 3, 8] {
            let mut par: StateSpace<CounterModel> = StateSpace::for_model(&m);
            let par_levels = par.expand_layers_parallel(&m, &roots, 3, threads, &NOOP);
            assert_eq!(seq_levels, par_levels, "threads={threads}");
            assert_eq!(seq.len(), par.len());
            for k in 0..seq.len() {
                let id = StateId(k as u32);
                assert_eq!(seq.resolve(id), par.resolve(id));
                assert_eq!(seq.cached_successors(id), par.cached_successors(id));
            }
        }
    }

    #[test]
    fn packed_and_boxed_arenas_agree() {
        // Packing is a pure representation change: the packed arena (what
        // `for_model` picks for CounterModel) and a boxed arena assign
        // identical ids, levels and successor lists.
        let m = CounterModel::new(3, 4);
        let roots = m.initial_states();
        let mut packed: StateSpace<CounterModel> = StateSpace::for_model(&m);
        let mut boxed: StateSpace<CounterModel> = StateSpace::new();
        assert!(packed.store.is_packed());
        assert!(!boxed.store.is_packed());
        let a = packed.expand_layers(&m, &roots, 3, &NOOP);
        let b = boxed.expand_layers(&m, &roots, 3, &NOOP);
        assert_eq!(a, b);
        assert_eq!(packed.len(), boxed.len());
        for k in 0..packed.len() {
            let id = StateId(k as u32);
            assert_eq!(packed.resolve(id), boxed.resolve(id));
            assert_eq!(packed.cached_successors(id), boxed.cached_successors(id));
        }
        assert!(packed.store.bytes_saved() > 0, "counter states shrink");
    }

    #[test]
    fn packed_arena_spills_wide_states() {
        // Value 9 exceeds the 2-bit input lane, so the state spills — and
        // still round-trips through the arena.
        let m = CounterModel::new(2, 4);
        let mut space: StateSpace<CounterModel> = StateSpace::for_model(&m);
        let wide = m.initial_state(&[crate::Value::new(9), crate::Value::ZERO]);
        let narrow = m.initial_state(&[crate::Value::ONE, crate::Value::ZERO]);
        let wid = space.intern(&wide);
        let nid = space.intern(&narrow);
        assert_eq!(space.store.spill_len(), 1, "only the wide state spills");
        assert_eq!(space.resolve(wid), wide);
        assert_eq!(space.resolve(nid), narrow);
        assert_eq!(space.intern(&wide), wid, "spilled states dedup too");
        assert_eq!(space.get(&wide), Some(wid));
    }

    #[test]
    fn prefetch_marks_all_requested_states() {
        let m = CounterModel::new(2, 4);
        let mut space: StateSpace<CounterModel> = StateSpace::for_model(&m);
        let ids: Vec<StateId> = m.initial_states().iter().map(|s| space.intern(s)).collect();
        space.prefetch_successors(&m, &ids, 4, &NOOP);
        for &id in &ids {
            assert!(space.cached_successors(id).is_some());
        }
        // Prefetching again is a no-op.
        let edges = space.edge_count();
        space.prefetch_successors(&m, &ids, 4, &NOOP);
        assert_eq!(space.edge_count(), edges);
    }

    #[test]
    fn balanced_chunks_never_degenerate() {
        let items: Vec<u32> = (0..9).collect();
        let parts: Vec<&[u32]> = balanced_chunks(&items, 8).collect();
        assert_eq!(parts.len(), 8);
        let lens: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(lens, vec![2, 1, 1, 1, 1, 1, 1, 1]);
        let flat: Vec<u32> = parts.iter().flat_map(|p| p.iter().copied()).collect();
        assert_eq!(flat, items, "chunks cover the slice in order");
        // More workers than items: one chunk per item.
        assert_eq!(balanced_chunks(&items[..2], 8).count(), 2);
    }

    #[test]
    fn quotient_interning_collapses_orbits() {
        let m = CounterModel::new(3, 2);
        let mut q: QuotientSpace<CounterModel> = QuotientSpace::new(&m);
        // All single-one input vectors are one orbit.
        let mut ids = Vec::new();
        for inputs in crate::binary_input_vectors(3) {
            if inputs.iter().filter(|&&v| v == crate::Value::ONE).count() == 1 {
                let (id, perm) = q.intern(&m, &m.initial_state(&inputs));
                // The witness maps the state onto the stored representative.
                assert_eq!(
                    m.permute_state(&m.initial_state(&inputs), &perm),
                    q.resolve(id)
                );
                ids.push(id);
            }
        }
        assert!(ids.windows(2).all(|w| w[0] == w[1]), "one orbit, one id");
        assert_eq!(q.len(), 1);
        assert_eq!(q.orbit_size_of(ids[0]), 3);
        assert_eq!(q.covered_states(), 3);
    }

    #[test]
    fn quotient_expansion_parity_and_dequotient() {
        let m = CounterModel::new(3, 3);
        let roots = m.initial_states();
        let mut q: QuotientSpace<CounterModel> = QuotientSpace::new(&m);
        let levels = q.expand_layers(&m, &roots, 2, &NOOP);
        // 2^3 = 8 input vectors collapse to 4 orbits (0..=3 ones).
        assert_eq!(levels[0].len(), 4);
        // Parallel expansion is bit-identical; so is the boxed arena.
        for threads in [2, 3, 8] {
            let mut par: QuotientSpace<CounterModel> = QuotientSpace::new(&m);
            let par_levels = par.expand_layers_parallel(&m, &roots, 2, threads, &NOOP);
            assert_eq!(levels, par_levels, "threads={threads}");
            assert_eq!(q.len(), par.len());
        }
        let mut boxed: QuotientSpace<CounterModel> = QuotientSpace::new_boxed(&m);
        let boxed_levels = boxed.expand_layers(&m, &roots, 2, &NOOP);
        assert_eq!(levels, boxed_levels);
        for k in 0..q.len() {
            let id = StateId(k as u32);
            assert_eq!(q.resolve(id), boxed.resolve(id));
            assert_eq!(q.orbit_size_of(id), boxed.orbit_size_of(id));
        }
        // Any root-to-leaf id path de-quotients into a genuine execution.
        let path = vec![levels[0][0], q.cached_successors(levels[0][0]).unwrap()[1]];
        let path = {
            let mut p = path;
            let last = *p.last().unwrap();
            p.push(q.cached_successors(last).unwrap()[0]);
            p
        };
        let genuine = q.dequotient_path(&m, &path).expect("cached edges");
        let trace = crate::ExecutionTrace::new(genuine);
        assert!(trace.validate(&m).is_ok());
    }

    #[test]
    fn quotient_telemetry_reports_canon_counters() {
        let m = CounterModel::new(3, 2);
        let reg = MetricsRegistry::new();
        let mut q: QuotientSpace<CounterModel> = QuotientSpace::new(&m);
        let x = m.initial_state(&[crate::Value::ONE, crate::Value::ZERO, crate::Value::ZERO]);
        let y = m.initial_state(&[crate::Value::ZERO, crate::Value::ZERO, crate::Value::ONE]);
        q.intern_with(&m, &x, &reg);
        q.intern_with(&m, &y, &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("space.canon.hits"), 1, "same orbit twice");
        assert_eq!(snap.counter("space.canon.orbit_states"), 3);
        // One interned orbit covering 3 full states → a mean of 3.000 full
        // states per orbit, reported in fixed-point thousandths.
        assert_eq!(snap.gauge_max("space.quotient.mean_orbit_x1000"), 3000);
    }

    #[test]
    fn interning_telemetry_counts_hits_and_misses() {
        let m = CounterModel::new(2, 4);
        let reg = MetricsRegistry::new();
        let mut space: StateSpace<CounterModel> = StateSpace::for_model(&m);
        let x0 = m.initial_states().remove(0);
        space.intern_with(&x0, &reg);
        space.intern_with(&x0, &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("space.intern.misses"), 1);
        assert_eq!(snap.counter("space.intern.hits"), 1);
        assert_eq!(snap.gauge_max("space.states"), 1);
    }

    #[test]
    fn bulk_interning_counts_match_sequential_interning() {
        // hits/misses from the bulk path are thread-count-invariant.
        let m = CounterModel::new(3, 4);
        let roots = m.initial_states();
        let mut counts = Vec::new();
        for threads in [1, 2, 8] {
            let reg = MetricsRegistry::new();
            let mut space: StateSpace<CounterModel> = StateSpace::for_model(&m);
            space.expand_layers_parallel(&m, &roots, 3, threads, &reg);
            let snap = reg.snapshot();
            counts.push((
                snap.counter("space.intern.hits"),
                snap.counter("space.intern.misses"),
            ));
        }
        assert_eq!(counts[0], counts[1], "1 vs 2 threads");
        assert_eq!(counts[0], counts[2], "1 vs 8 threads");
    }
}
