//! Hash-consed state spaces: dense [`StateId`]s over a model's reachable
//! states, with CSR-packed successor adjacency and deterministic parallel
//! layer expansion.
//!
//! Every exact engine in this crate (valence, connectivity, layering, the
//! consensus checker) explores the same graded state graph. Keying those
//! explorations on full cloned model states makes each hash, clone and
//! equality test cost `O(|state|)` — the direct cause of the n≤3 enumeration
//! ceiling this module removes. A [`StateSpace`] interns each distinct state
//! exactly once and hands out a dense `u32` [`StateId`]; the engines then
//! memoize in flat `Vec`s indexed by id and walk successor lists that are
//! computed once and packed into a single flat edge array (compressed sparse
//! row layout).
//!
//! # Id layout and determinism
//!
//! Ids are assigned in *interning order*: the first distinct state presented
//! to [`StateSpace::intern`] gets id 0, the next distinct one id 1, and so
//! on. All exploration routines here present states in a canonical order
//! (roots in the order given, then successor lists in model order, level by
//! level), so for a fixed model and entry point the id assignment — and
//! everything derived from it — is deterministic.
//!
//! The parallel path ([`StateSpace::expand_layers_parallel`],
//! [`StateSpace::prefetch_successors`]) keeps that guarantee: worker threads
//! only evaluate `model.successors(x)` for disjoint chunks of the frontier
//! (a pure function under the [`LayeredModel`] contract), and the merge back
//! into the arena happens on the calling thread *in frontier order* — the
//! exact order the sequential path would have used. Parallelism changes how
//! fast successor lists are produced, never which states exist, their ids,
//! or the contents of any layer, so sequential and parallel expansion are
//! bit-identical.
//!
//! # Persistence
//!
//! Both arenas serialize to versioned, integrity-hashed snapshots (see
//! [`snapshot`]): the state arena, intern index, CSR successor cache and
//! per-state successor fingerprints round-trip byte-identically, so a scan
//! can be resumed — deepened, re-budgeted, or differentially re-verified
//! after a protocol change via [`StateSpace::refresh_differential`] /
//! [`QuotientSpace::refresh_differential`] — instead of recomputed.

pub mod snapshot;

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use fxhash::{FxHashMap, FxHasher};

use crate::sym::{PidPerm, Symmetric};
use crate::telemetry::{
    clock, trace, Heartbeat, MemoryBreakdown, MemoryFootprint, Observer, Span, NOOP,
};
use crate::LayeredModel;

/// Dense identifier of an interned state within one [`StateSpace`].
///
/// Ids are only meaningful relative to the space that produced them; they
/// are assigned contiguously from 0 in interning order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(u32);

impl StateId {
    /// The id as a dense `usize` index (`0..space.len()`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Range of a state's successor list inside the packed edge array.
#[derive(Clone, Copy, Debug)]
struct SuccRange {
    start: u32,
    len: u32,
}

/// Outcome of probing one hash bucket for a state: found (with the number
/// of equality comparisons it took) or absent (with the number of
/// candidates that were ruled out). One helper serves both arenas' `intern`
/// and `get` paths — including indices reconstructed from snapshots — so
/// there is exactly one probe code path to keep correct.
enum Probe {
    /// The state is interned as `.0`; `.1` candidates were compared.
    Hit(StateId, u64),
    /// The state is absent; `.0` candidates were compared and ruled out.
    Miss(u64),
}

/// Probes `index[h]` for a state equal to `s` among `states`.
fn probe_bucket<S: PartialEq>(
    states: &[S],
    index: &FxHashMap<u64, Vec<StateId>>,
    h: u64,
    s: &S,
) -> Probe {
    match index.get(&h) {
        Some(bucket) => {
            for (probed, &id) in bucket.iter().enumerate() {
                if &states[id.index()] == s {
                    return Probe::Hit(id, probed as u64 + 1);
                }
            }
            Probe::Miss(bucket.len() as u64)
        }
        None => Probe::Miss(0),
    }
}

/// FxHash fingerprint of a raw successor list (length plus every element,
/// in order). Stored per state so a re-scan after a protocol change can
/// tell which successor lists moved ([`StateSpace::refresh_differential`])
/// without diffing the lists themselves. Fingerprint equality is treated
/// as list equality — a deliberate 64-bit-collision trade-off, identical
/// to the one the intern index already makes per bucket.
fn successor_fingerprint<S: Hash>(succs: &[S]) -> u64 {
    let mut h = FxHasher::default();
    succs.len().hash(&mut h);
    for s in succs {
        s.hash(&mut h);
    }
    h.finish()
}

/// What a differential refresh did: how many cached successor lists were
/// reused verbatim (fingerprint unchanged), how many were re-expanded, and
/// how many previously unseen states the re-expansion interned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DiffReport {
    /// Cached rows whose successor fingerprint was unchanged — their CSR
    /// slice (and, in the quotient, permutation slice) was copied verbatim.
    pub reused: usize,
    /// Cached rows whose fingerprint moved — re-expanded under the new
    /// model.
    pub recomputed: usize,
    /// States interned during re-expansion that the old arena had not seen.
    pub new_states: usize,
}

/// A hash-consing arena over a model's states.
///
/// Interning deduplicates states structurally: `intern` returns the same
/// [`StateId`] for equal states and stores each distinct state exactly once.
/// Successor lists are computed lazily (or eagerly, in parallel, via
/// [`StateSpace::prefetch_successors`]) and cached in CSR form, so each
/// `model.successors` call happens at most once per state per space.
///
/// # Examples
///
/// ```
/// use layered_core::space::StateSpace;
/// use layered_core::testkit::CounterModel;
/// use layered_core::LayeredModel;
///
/// let m = CounterModel::new(2, 4);
/// let x0 = m.initial_states().remove(0);
/// let mut space: StateSpace<CounterModel> = StateSpace::new();
/// let id = space.intern(&x0);
/// assert_eq!(space.intern(&x0), id); // double-intern: same id
/// assert_eq!(space.resolve(id), &x0); // round-trip
/// ```
pub struct StateSpace<M: LayeredModel> {
    states: Vec<M::State>,
    /// Hash-bucketed index: state hash → candidate ids (collisions resolved
    /// by equality against `states`). Stores every state once, in `states`.
    /// Keyed and hashed with the vendored FxHash — states are hashed on
    /// every intern, and the keyless multiply-rotate mix is both faster
    /// than `std`'s SipHash and deterministic across runs and machines.
    index: FxHashMap<u64, Vec<StateId>>,
    succ: Vec<Option<SuccRange>>,
    edges: Vec<StateId>,
    /// FxHash fingerprint of each state's *raw* successor list (0 until the
    /// list is cached) — the differential-refresh change detector.
    succ_fp: Vec<u64>,
}

impl<M: LayeredModel> Default for StateSpace<M> {
    fn default() -> Self {
        StateSpace::new()
    }
}

impl<M: LayeredModel> StateSpace<M> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        StateSpace {
            states: Vec::new(),
            index: FxHashMap::default(),
            succ: Vec::new(),
            edges: Vec::new(),
            succ_fp: Vec::new(),
        }
    }

    /// Number of distinct states interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no state has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total successor edges cached so far (with multiplicity).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn hash_of(s: &M::State) -> u64 {
        let mut h = FxHasher::default();
        s.hash(&mut h);
        h.finish()
    }

    /// Interns `s`, returning its dense id (allocating one on first sight).
    pub fn intern(&mut self, s: &M::State) -> StateId {
        self.intern_with(s, &NOOP)
    }

    /// [`StateSpace::intern`] with telemetry: reports `space.intern.hits` /
    /// `space.intern.misses` counters, the `space.states` gauge and the
    /// `space.intern.probe_len` histogram (equality comparisons per probe)
    /// to `obs`.
    pub fn intern_with(&mut self, s: &M::State, obs: &dyn Observer) -> StateId {
        let h = Self::hash_of(s);
        match probe_bucket(&self.states, &self.index, h, s) {
            Probe::Hit(id, compared) => {
                obs.counter("space.intern.hits", 1);
                obs.histogram("space.intern.probe_len", compared);
                return id;
            }
            Probe::Miss(compared) => obs.histogram("space.intern.probe_len", compared),
        }
        obs.counter("space.intern.misses", 1);
        let id = StateId(u32::try_from(self.states.len()).expect("more than u32::MAX states"));
        self.states.push(s.clone());
        self.succ.push(None);
        self.succ_fp.push(0);
        self.index.entry(h).or_default().push(id);
        obs.gauge("space.states", self.states.len() as u64);
        id
    }

    /// The id of `s` if it has been interned, without interning it.
    #[must_use]
    pub fn get(&self, s: &M::State) -> Option<StateId> {
        match probe_bucket(&self.states, &self.index, Self::hash_of(s), s) {
            Probe::Hit(id, _) => Some(id),
            Probe::Miss(_) => None,
        }
    }

    /// The state behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this space.
    #[must_use]
    pub fn resolve(&self, id: StateId) -> &M::State {
        &self.states[id.index()]
    }

    /// Clones the states behind `ids` back out of the arena (used to
    /// materialize id paths into state-typed witnesses at the API boundary).
    #[must_use]
    pub fn materialize(&self, ids: &[StateId]) -> Vec<M::State> {
        ids.iter().map(|&id| self.resolve(id).clone()).collect()
    }

    /// Borrowed twin of [`StateSpace::materialize`]: views into the arena
    /// for callers that only need to *read* the states behind `ids` — no
    /// per-state clone.
    #[must_use]
    pub fn resolve_many(&self, ids: &[StateId]) -> Vec<&M::State> {
        ids.iter().map(|&id| self.resolve(id)).collect()
    }

    /// The cached successor list of `id`, or `None` if it has not been
    /// computed yet.
    #[must_use]
    pub fn cached_successors(&self, id: StateId) -> Option<&[StateId]> {
        self.succ[id.index()].map(|r| {
            let start = r.start as usize;
            &self.edges[start..start + r.len as usize]
        })
    }

    /// Interns the given successor states of `id` and packs them into the
    /// edge array. No-op if `id`'s successors are already cached.
    fn record_successors(&mut self, id: StateId, succs: &[M::State], obs: &dyn Observer) {
        if self.succ[id.index()].is_some() {
            return;
        }
        let fp = successor_fingerprint(succs);
        let start = u32::try_from(self.edges.len()).expect("more than u32::MAX edges");
        for y in succs {
            let yid = self.intern_with(y, obs);
            self.edges.push(yid);
        }
        let len = u32::try_from(succs.len()).expect("layer larger than u32::MAX");
        self.succ[id.index()] = Some(SuccRange { start, len });
        self.succ_fp[id.index()] = fp;
        obs.histogram("space.succ_fanout", len.into());
    }

    /// The fingerprint of `id`'s cached raw successor list, or `None` if
    /// the list has not been computed yet.
    #[must_use]
    pub fn successor_fingerprint_of(&self, id: StateId) -> Option<u64> {
        self.succ[id.index()].map(|_| self.succ_fp[id.index()])
    }

    /// Differential re-verification after a model change: recomputes the
    /// raw successor list of every state whose successors were cached,
    /// but re-interns (and re-packs) only the lists whose fingerprint moved
    /// under `model` — unchanged rows have their CSR slice copied verbatim.
    ///
    /// The arena afterwards is *exactly* what caching every old row's new
    /// successor list would produce, modulo edge-array packing order (ids,
    /// states and per-row successor lists are identical; only `SuccRange`
    /// offsets may differ — invisible through [`cached_successors`]).
    /// States interned during re-expansion that the old arena had not seen
    /// start uncached, like any freshly interned state.
    ///
    /// Telemetry: runs under a `space.resume.refresh` span and reports the
    /// `space.resume.rows_reused` / `space.resume.rows_recomputed`
    /// counters.
    ///
    /// [`cached_successors`]: StateSpace::cached_successors
    pub fn refresh_differential(&mut self, model: &M, obs: &dyn Observer) -> DiffReport {
        let _span = Span::enter(obs, "space.resume.refresh");
        let old_len = self.states.len();
        let old_succ = std::mem::take(&mut self.succ);
        let old_edges = std::mem::take(&mut self.edges);
        let old_fp = std::mem::take(&mut self.succ_fp);
        self.succ = vec![None; old_len];
        self.succ_fp = vec![0; old_len];
        let mut report = DiffReport::default();
        for k in 0..old_len {
            let Some(range) = old_succ[k] else { continue };
            let succs = model.successors(&self.states[k]);
            let fp = successor_fingerprint(&succs);
            if fp == old_fp[k] {
                let start = u32::try_from(self.edges.len()).expect("more than u32::MAX edges");
                let s = range.start as usize;
                self.edges
                    .extend_from_slice(&old_edges[s..s + range.len as usize]);
                self.succ[k] = Some(SuccRange {
                    start,
                    len: range.len,
                });
                self.succ_fp[k] = fp;
                report.reused += 1;
            } else {
                self.record_successors(StateId(k as u32), &succs, obs);
                report.recomputed += 1;
            }
        }
        report.new_states = self.states.len() - old_len;
        obs.counter("space.resume.rows_reused", report.reused as u64);
        obs.counter("space.resume.rows_recomputed", report.recomputed as u64);
        report
    }

    /// The successor ids of `id` under `model`'s layering, computing and
    /// caching the list on first use.
    pub fn successor_ids(&mut self, model: &M, id: StateId, obs: &dyn Observer) -> Vec<StateId> {
        if self.succ[id.index()].is_none() {
            // The successor computation only needs a shared borrow of the
            // arena; the borrow ends before `record_successors` mutates it,
            // so the previous full state clone here was pure overhead.
            let succs = model.successors(&self.states[id.index()]);
            self.record_successors(id, &succs, obs);
        }
        self.cached_successors(id)
            .expect("successors just recorded")
            .to_vec()
    }

    /// Eagerly computes and caches the successor lists of `ids`, fanning the
    /// `model.successors` calls out across up to `threads` scoped workers.
    ///
    /// Determinism: workers receive disjoint chunks of the (already
    /// deduplicated) id list and only evaluate the pure successor function;
    /// the results are merged into the arena on the calling thread in the
    /// order of `ids`. The resulting interning order — and therefore every
    /// id, layer and report derived from it — is identical to calling
    /// [`StateSpace::successor_ids`] sequentially over `ids`.
    pub fn prefetch_successors(
        &mut self,
        model: &M,
        ids: &[StateId],
        threads: usize,
        obs: &dyn Observer,
    ) where
        M: Sync,
        M::State: Send + Sync,
    {
        let pending: Vec<StateId> = ids
            .iter()
            .copied()
            .filter(|id| self.succ[id.index()].is_none())
            .collect();
        if pending.is_empty() {
            return;
        }
        let threads = threads.max(1).min(pending.len());
        if threads == 1 {
            for &id in &pending {
                let succs = model.successors(&self.states[id.index()]);
                self.record_successors(id, &succs, obs);
            }
            return;
        }
        // Workers borrow the arena's state vector directly (no per-state
        // clones); the merge below runs after the scope ends, when the
        // shared borrow is released.
        let states = &self.states;
        // Worker spans attach to the dispatching span explicitly: the
        // parent lives on this thread's span stack, not the workers'.
        let parent = trace::current_span_id();
        let computed: Vec<Vec<Vec<M::State>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = balanced_chunks(&pending, threads)
                .map(|part| {
                    scope.spawn(move || {
                        let _span = Span::enter_under(
                            obs,
                            "space.prefetch_chunk",
                            parent,
                            &[("chunk_len", part.len() as u64)],
                        );
                        part.iter()
                            .map(|id| model.successors(&states[id.index()]))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("successor worker panicked"))
                .collect()
        });
        for (&id, succs) in pending.iter().zip(computed.iter().flatten()) {
            self.record_successors(id, succs, obs);
        }
    }

    /// Breadth-first expansion of the layered graph from `roots` for
    /// `horizon` layers, interning every state and caching every successor
    /// list. Returns the interned levels (`levels[d]` = distinct states at
    /// depth `d` relative to the roots, in first-seen order).
    ///
    /// Telemetry: the sweep runs under a `space.build` span and reports
    /// `engine.states_visited`, `engine.dedup_hits` and the
    /// `engine.frontier_width` gauge alongside the interning counters.
    pub fn expand_layers(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        obs: &dyn Observer,
    ) -> Vec<Vec<StateId>> {
        self.expand_with(model, roots, horizon, obs, |_, _| {})
    }

    /// [`StateSpace::expand_layers`] with the per-level successor
    /// computation fanned out across up to `threads` scoped workers.
    ///
    /// Bit-identical to the sequential path (see
    /// [`StateSpace::prefetch_successors`] for why).
    pub fn expand_layers_parallel(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        threads: usize,
        obs: &dyn Observer,
    ) -> Vec<Vec<StateId>>
    where
        M: Sync,
        M::State: Send + Sync,
    {
        self.expand_with(model, roots, horizon, obs, |space, frontier| {
            space.prefetch_successors(model, frontier, threads, obs);
        })
    }

    fn expand_with(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        obs: &dyn Observer,
        mut prefetch: impl FnMut(&mut Self, &[StateId]),
    ) -> Vec<Vec<StateId>> {
        let _span = Span::enter(obs, "space.build");
        let mut levels: Vec<Vec<StateId>> = Vec::with_capacity(horizon + 1);
        let mut frontier: Vec<StateId> = Vec::new();
        let mut seen: HashSet<StateId> = HashSet::new();
        for r in roots {
            let id = self.intern_with(r, obs);
            if seen.insert(id) {
                frontier.push(id);
            } else {
                obs.counter("engine.dedup_hits", 1);
            }
        }
        obs.gauge("engine.frontier_width", frontier.len() as u64);
        levels.push(frontier.clone());
        let mut heartbeat = Heartbeat::new();
        for depth in 0..horizon {
            let _layer_span = Span::enter_with(
                obs,
                "space.layer",
                &[
                    ("depth", depth as u64 + 1),
                    ("frontier", frontier.len() as u64),
                ],
            );
            let layer_started = if obs.enabled() {
                clock::monotonic_ns()
            } else {
                0
            };
            prefetch(self, &frontier);
            let mut seen: HashSet<StateId> = HashSet::new();
            let mut next = Vec::new();
            for &id in &frontier {
                obs.counter("engine.states_visited", 1);
                for y in self.successor_ids(model, id, obs) {
                    if seen.insert(y) {
                        next.push(y);
                    } else {
                        obs.counter("engine.dedup_hits", 1);
                    }
                }
            }
            if obs.enabled() {
                obs.histogram(
                    "space.layer_expand_ns",
                    clock::monotonic_ns().saturating_sub(layer_started),
                );
            }
            obs.gauge("engine.frontier_width", next.len() as u64);
            heartbeat.tick(obs, depth + 1, next.len(), self.len());
            levels.push(next.clone());
            frontier = next;
        }
        levels
    }
}

/// Shared estimate of an intern index's bytes: the map's own capacity plus
/// every bucket vector's. Shallow (allocator headers excluded), but
/// deterministic — capacities depend only on the insertion sequence.
fn index_bytes(index: &FxHashMap<u64, Vec<StateId>>) -> u64 {
    let table = index.capacity() as u64 * std::mem::size_of::<(u64, Vec<StateId>)>() as u64;
    let buckets: u64 = index
        .values()
        .map(|b| b.capacity() as u64 * std::mem::size_of::<StateId>() as u64)
        .sum();
    table + buckets
}

/// Intern-table load factor in fixed-point thousandths
/// (`len / capacity × 1000`).
fn index_load_x1000(index: &FxHashMap<u64, Vec<StateId>>) -> u64 {
    index.len() as u64 * 1000 / index.capacity().max(1) as u64
}

impl<M: LayeredModel> MemoryFootprint for StateSpace<M> {
    /// Shallow, capacity-based accounting (see
    /// [`telemetry::mem`](crate::telemetry::mem)): state payloads that own
    /// further heap (e.g. vectors inside `M::State`) are counted at their
    /// inline size only, so every figure is a deterministic lower bound.
    fn memory_footprint(&self) -> MemoryBreakdown {
        let mut b = MemoryBreakdown::new();
        b.push(
            "mem.space.states_bytes",
            self.states.capacity() as u64 * std::mem::size_of::<M::State>() as u64,
        );
        b.push("mem.space.index_bytes", index_bytes(&self.index));
        b.push(
            "mem.space.edges_bytes",
            self.edges.capacity() as u64 * std::mem::size_of::<StateId>() as u64
                + self.succ.capacity() as u64 * std::mem::size_of::<Option<SuccRange>>() as u64,
        );
        b
    }

    /// Adds the `space.intern.load_x1000` gauge next to the byte gauges.
    fn report_memory(&self, obs: &dyn Observer) {
        self.memory_footprint().report(obs);
        obs.gauge("space.intern.load_x1000", index_load_x1000(&self.index));
    }
}

impl<M: Symmetric> MemoryFootprint for QuotientSpace<M> {
    /// Shallow, capacity-based accounting like
    /// [`StateSpace`]'s, plus the quotient-only arrays: orbit sizes and
    /// the per-edge witnessing permutations (counted at their inline size
    /// plus their permutation maps).
    fn memory_footprint(&self) -> MemoryBreakdown {
        let mut b = MemoryBreakdown::new();
        b.push(
            "mem.space.states_bytes",
            self.states.capacity() as u64 * std::mem::size_of::<M::State>() as u64,
        );
        b.push("mem.space.index_bytes", index_bytes(&self.index));
        b.push(
            "mem.space.edges_bytes",
            self.edges.capacity() as u64 * std::mem::size_of::<StateId>() as u64
                + self.succ.capacity() as u64 * std::mem::size_of::<Option<SuccRange>>() as u64,
        );
        b.push(
            "mem.space.orbits_bytes",
            self.orbit_sizes.capacity() as u64 * std::mem::size_of::<u64>() as u64,
        );
        let perm_maps: u64 = self.edge_perms.iter().map(|p| p.degree() as u64).sum();
        b.push(
            "mem.space.perms_bytes",
            self.edge_perms.capacity() as u64 * std::mem::size_of::<PidPerm>() as u64 + perm_maps,
        );
        b
    }

    /// Adds the `space.intern.load_x1000` gauge next to the byte gauges.
    fn report_memory(&self, obs: &dyn Observer) {
        self.memory_footprint().report(obs);
        obs.gauge("space.intern.load_x1000", index_load_x1000(&self.index));
    }
}

/// Splits `items` into at most `parts` contiguous chunks whose lengths
/// differ by at most one (the first `len % parts` chunks get the extra
/// element). Unlike `chunks(len.div_ceil(parts))`, this never produces a
/// degenerate tail chunk — 9 items over 8 workers yield chunks of
/// 2,1,1,1,1,1,1,1 instead of four chunks of 2 and one of 1 on 5 workers.
fn balanced_chunks<T>(items: &[T], parts: usize) -> impl Iterator<Item = &[T]> {
    let parts = parts.clamp(1, items.len().max(1));
    let base = items.len() / parts;
    let extra = items.len() % parts;
    let mut start = 0;
    (0..parts).map(move |k| {
        let len = base + usize::from(k < extra);
        let part = &items[start..start + len];
        start += len;
        part
    })
}

/// A hash-consing arena over *canonical orbit representatives* of a
/// [`Symmetric`] model's states.
///
/// Interning canonicalizes first: all `n!` process renamings of a state
/// collapse to one [`StateId`], so the arena holds exactly one state per
/// orbit and successor lists are computed once per orbit instead of once
/// per member. Each cached edge `c → c'` additionally stores a permutation
/// `σ` such that `σ · y = c'` for the raw successor `y ∈ S(c)` it came
/// from; [`QuotientSpace::dequotient_path`] folds those witnesses back into
/// a genuine execution of the model (see the de-quotienting recurrence
/// there), which is how id paths through the quotient turn into runs that
/// pass [`ExecutionTrace::validate`](crate::ExecutionTrace::validate).
///
/// # Soundness requires an equivariant layering
///
/// The construction is a quotient of the layered graph only when
/// `S(π·x) = π·S(x)`; [`QuotientSpace::new`] therefore panics unless
/// [`Symmetric::symmetric_layering`] holds for the model's current
/// configuration (each model crate's *full* layering variant).
///
/// # Id layout and determinism
///
/// Identical to [`StateSpace`]: ids are assigned in interning order of the
/// canonical representatives, successor lists are CSR-packed, and the
/// parallel expansion path is bit-identical to the sequential one (workers
/// compute *and canonicalize* successors for disjoint frontier chunks —
/// both pure — and the merge happens on the calling thread in frontier
/// order).
pub struct QuotientSpace<M: Symmetric> {
    /// Canonical representatives, indexed by [`StateId`].
    states: Vec<M::State>,
    /// Orbit size of each representative (distinct renamings of it).
    orbit_sizes: Vec<u64>,
    index: FxHashMap<u64, Vec<StateId>>,
    succ: Vec<Option<SuccRange>>,
    edges: Vec<StateId>,
    /// Per-edge witnessing permutation, parallel to `edges`: for the edge
    /// at position `e` from `c` to `c'`, `edge_perms[e] · y = c'` where
    /// `y ∈ S(c)` is the raw successor the edge was computed from.
    edge_perms: Vec<PidPerm>,
    /// FxHash fingerprint of each orbit's *raw* (pre-canonicalization)
    /// successor list (0 until cached) — the differential-refresh change
    /// detector.
    succ_fp: Vec<u64>,
}

/// A raw successor, canonicalized: the orbit representative, the witnessing
/// permutation, and the orbit size (precomputed off-arena so parallel
/// workers can do the `n!`-enumeration work).
type CanonSucc<M> = (<M as LayeredModel>::State, PidPerm, u64);

impl<M: Symmetric> QuotientSpace<M> {
    /// An empty quotient arena for `model`.
    ///
    /// # Panics
    ///
    /// Panics if the model's current layering is not equivariant
    /// ([`Symmetric::symmetric_layering`] is `false`) — quotienting a
    /// prefix-based layering would silently prune reachable orbits.
    #[must_use]
    pub fn new(model: &M) -> Self {
        assert!(
            model.symmetric_layering(),
            "QuotientSpace requires an equivariant layering \
             (use the model's full/symmetric layering variant)"
        );
        QuotientSpace {
            states: Vec::new(),
            orbit_sizes: Vec::new(),
            index: FxHashMap::default(),
            succ: Vec::new(),
            edges: Vec::new(),
            edge_perms: Vec::new(),
            succ_fp: Vec::new(),
        }
    }

    /// Number of orbits interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no orbit has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total successor edges cached so far (with multiplicity).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total full-space states covered by the interned orbits (the sum of
    /// their orbit sizes) — the denominator-free form of the compression
    /// the quotient achieves.
    #[must_use]
    pub fn covered_states(&self) -> u64 {
        self.orbit_sizes.iter().sum()
    }

    fn hash_of(s: &M::State) -> u64 {
        let mut h = FxHasher::default();
        s.hash(&mut h);
        h.finish()
    }

    /// Interns a state that is *already* a canonical representative with a
    /// known orbit size. Internal: callers go through `intern_with`.
    fn intern_canonical(&mut self, rep: &M::State, orbit: u64, obs: &dyn Observer) -> StateId {
        let h = Self::hash_of(rep);
        if let Probe::Hit(id, _) = probe_bucket(&self.states, &self.index, h, rep) {
            obs.counter("space.canon.hits", 1);
            return id;
        }
        let id = StateId(u32::try_from(self.states.len()).expect("more than u32::MAX orbits"));
        self.states.push(rep.clone());
        self.orbit_sizes.push(orbit);
        self.succ.push(None);
        self.succ_fp.push(0);
        self.index.entry(h).or_default().push(id);
        obs.counter("space.canon.orbit_states", orbit);
        obs.gauge("space.states", self.states.len() as u64);
        // Mean orbit size in fixed-point thousandths (a reading of 5920
        // means each interned representative stands for 5.92 full-space
        // states on average) — see the units table in `telemetry::names`.
        obs.gauge(
            "space.quotient.mean_orbit_x1000",
            self.covered_states() * 1000 / self.states.len() as u64,
        );
        id
    }

    /// Interns the orbit of `x`, returning the representative's id and a
    /// permutation `π` with `π · x == representative`.
    pub fn intern(&mut self, model: &M, x: &M::State) -> (StateId, PidPerm) {
        self.intern_with(model, x, &NOOP)
    }

    /// [`QuotientSpace::intern`] with telemetry: canonicalization runs
    /// under a `space.canonicalize` span and reports `space.canon.hits` /
    /// `space.canon.orbit_states` counters plus the `space.states` and
    /// `space.quotient.mean_orbit_x1000` gauges.
    pub fn intern_with(
        &mut self,
        model: &M,
        x: &M::State,
        obs: &dyn Observer,
    ) -> (StateId, PidPerm) {
        let (rep, perm, orbit) = {
            let _span = Span::enter(obs, "space.canonicalize");
            let (rep, perm) = model.canonicalize(x);
            let orbit = crate::sym::orbit_size(model, x) as u64;
            (rep, perm, orbit)
        };
        let id = self.intern_canonical(&rep, orbit, obs);
        (id, perm)
    }

    /// The representative's id for `x`'s orbit if it has been interned,
    /// without interning it.
    #[must_use]
    pub fn get(&self, model: &M, x: &M::State) -> Option<StateId> {
        let (rep, _) = model.canonicalize(x);
        match probe_bucket(&self.states, &self.index, Self::hash_of(&rep), &rep) {
            Probe::Hit(id, _) => Some(id),
            Probe::Miss(_) => None,
        }
    }

    /// The canonical representative behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this space.
    #[must_use]
    pub fn resolve(&self, id: StateId) -> &M::State {
        &self.states[id.index()]
    }

    /// The orbit size of the representative behind `id`.
    #[must_use]
    pub fn orbit_size_of(&self, id: StateId) -> u64 {
        self.orbit_sizes[id.index()]
    }

    /// Clones the representatives behind `ids` out of the arena.
    #[must_use]
    pub fn materialize(&self, ids: &[StateId]) -> Vec<M::State> {
        ids.iter().map(|&id| self.resolve(id).clone()).collect()
    }

    /// The cached successor list of `id` (orbit representatives), or `None`
    /// if it has not been computed yet.
    #[must_use]
    pub fn cached_successors(&self, id: StateId) -> Option<&[StateId]> {
        self.succ[id.index()].map(|r| {
            let start = r.start as usize;
            &self.edges[start..start + r.len as usize]
        })
    }

    /// The cached successor list of `id` together with the per-edge
    /// witnessing permutations.
    #[must_use]
    pub fn cached_successors_with_perms(&self, id: StateId) -> Option<(&[StateId], &[PidPerm])> {
        self.succ[id.index()].map(|r| {
            let (start, end) = (r.start as usize, r.start as usize + r.len as usize);
            (&self.edges[start..end], &self.edge_perms[start..end])
        })
    }

    /// Canonicalizes the raw successors of the representative behind `id`
    /// (pure; used directly by parallel workers). Also returns the
    /// fingerprint of the *raw* successor list — computed before
    /// canonicalization so a protocol change is detected even when the
    /// canonical images happen to coincide.
    fn canon_successors_of(&self, model: &M, id: StateId) -> (Vec<CanonSucc<M>>, u64) {
        let raw = model.successors(&self.states[id.index()]);
        let fp = successor_fingerprint(&raw);
        let canon = raw
            .into_iter()
            .map(|y| {
                let (rep, perm) = model.canonicalize(&y);
                let orbit = crate::sym::orbit_size(model, &y) as u64;
                (rep, perm, orbit)
            })
            .collect();
        (canon, fp)
    }

    /// Interns pre-canonicalized successors of `id` into the edge arrays,
    /// deduplicating by representative id (first witness wins). No-op if
    /// `id`'s successors are already cached. `fp` is the raw-successor-list
    /// fingerprint from [`QuotientSpace::canon_successors_of`].
    fn record_successors(
        &mut self,
        id: StateId,
        succs: &[CanonSucc<M>],
        fp: u64,
        obs: &dyn Observer,
    ) {
        if self.succ[id.index()].is_some() {
            return;
        }
        let start = u32::try_from(self.edges.len()).expect("more than u32::MAX edges");
        let mut seen: HashSet<StateId> = HashSet::new();
        for (rep, perm, orbit) in succs {
            let yid = self.intern_canonical(rep, *orbit, obs);
            if seen.insert(yid) {
                self.edges.push(yid);
                self.edge_perms.push(perm.clone());
            }
        }
        let len = u32::try_from(seen.len()).expect("layer larger than u32::MAX");
        self.succ[id.index()] = Some(SuccRange { start, len });
        self.succ_fp[id.index()] = fp;
        obs.histogram("space.succ_fanout", len.into());
    }

    /// The successor orbit ids of `id` under `model`'s layering, computing,
    /// canonicalizing and caching the list on first use. Multiple raw
    /// successors in the same orbit collapse to one edge.
    pub fn successor_ids(&mut self, model: &M, id: StateId, obs: &dyn Observer) -> Vec<StateId> {
        if self.succ[id.index()].is_none() {
            let (succs, fp) = self.canon_successors_of(model, id);
            self.record_successors(id, &succs, fp, obs);
        }
        self.cached_successors(id)
            .expect("successors just recorded")
            .to_vec()
    }

    /// The fingerprint of `id`'s cached raw successor list, or `None` if
    /// the list has not been computed yet.
    #[must_use]
    pub fn successor_fingerprint_of(&self, id: StateId) -> Option<u64> {
        self.succ[id.index()].map(|_| self.succ_fp[id.index()])
    }

    /// Differential re-verification after a protocol change — the quotient
    /// twin of [`StateSpace::refresh_differential`]: every cached orbit's
    /// raw successor list is recomputed under `model`, but only orbits
    /// whose fingerprint moved pay for canonicalization (the `n!` work that
    /// dominates quotient expansion); unchanged orbits have their CSR and
    /// permutation slices copied verbatim.
    ///
    /// Telemetry: a `space.resume.refresh` span plus the
    /// `space.resume.orbits_reused` / `space.resume.orbits_recomputed`
    /// counters.
    pub fn refresh_differential(&mut self, model: &M, obs: &dyn Observer) -> DiffReport {
        let _span = Span::enter(obs, "space.resume.refresh");
        let old_len = self.states.len();
        let old_succ = std::mem::take(&mut self.succ);
        let old_edges = std::mem::take(&mut self.edges);
        let old_perms = std::mem::take(&mut self.edge_perms);
        let old_fp = std::mem::take(&mut self.succ_fp);
        self.succ = vec![None; old_len];
        self.succ_fp = vec![0; old_len];
        let mut report = DiffReport::default();
        for k in 0..old_len {
            let Some(range) = old_succ[k] else { continue };
            let raw = model.successors(&self.states[k]);
            let fp = successor_fingerprint(&raw);
            if fp == old_fp[k] {
                let start = u32::try_from(self.edges.len()).expect("more than u32::MAX edges");
                let (s, e) = (range.start as usize, (range.start + range.len) as usize);
                self.edges.extend_from_slice(&old_edges[s..e]);
                self.edge_perms.extend_from_slice(&old_perms[s..e]);
                self.succ[k] = Some(SuccRange {
                    start,
                    len: range.len,
                });
                self.succ_fp[k] = fp;
                report.reused += 1;
            } else {
                let canon: Vec<CanonSucc<M>> = raw
                    .into_iter()
                    .map(|y| {
                        let (rep, perm) = model.canonicalize(&y);
                        let orbit = crate::sym::orbit_size(model, &y) as u64;
                        (rep, perm, orbit)
                    })
                    .collect();
                self.record_successors(StateId(k as u32), &canon, fp, obs);
                report.recomputed += 1;
            }
        }
        report.new_states = self.states.len() - old_len;
        obs.counter("space.resume.orbits_reused", report.reused as u64);
        obs.counter("space.resume.orbits_recomputed", report.recomputed as u64);
        report
    }

    /// Eagerly computes, canonicalizes and caches the successor lists of
    /// `ids`, fanning the per-orbit work (`model.successors` plus the
    /// `n!`-enumeration canonicalization of every raw successor — the
    /// expensive part of quotient expansion) across up to `threads` scoped
    /// workers. Deterministic for the same reason as
    /// [`StateSpace::prefetch_successors`]: workers only run pure
    /// functions, and the merge happens in frontier order.
    pub fn prefetch_successors(
        &mut self,
        model: &M,
        ids: &[StateId],
        threads: usize,
        obs: &dyn Observer,
    ) where
        M: Sync,
        M::State: Send + Sync,
    {
        let pending: Vec<StateId> = ids
            .iter()
            .copied()
            .filter(|id| self.succ[id.index()].is_none())
            .collect();
        if pending.is_empty() {
            return;
        }
        let threads = threads.max(1).min(pending.len());
        if threads == 1 {
            for &id in &pending {
                let (succs, fp) = self.canon_successors_of(model, id);
                self.record_successors(id, &succs, fp, obs);
            }
            return;
        }
        let this = &*self;
        let parent = trace::current_span_id();
        let computed: Vec<Vec<(Vec<CanonSucc<M>>, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = balanced_chunks(&pending, threads)
                .map(|part| {
                    scope.spawn(move || {
                        let _span = Span::enter_under(
                            obs,
                            "space.prefetch_chunk",
                            parent,
                            &[("chunk_len", part.len() as u64)],
                        );
                        part.iter()
                            .map(|&id| this.canon_successors_of(model, id))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("canonicalization worker panicked"))
                .collect()
        });
        for (&id, (succs, fp)) in pending.iter().zip(computed.iter().flatten()) {
            self.record_successors(id, succs, *fp, obs);
        }
    }

    /// Breadth-first expansion of the *quotient* graph from `roots` for
    /// `horizon` layers: each root is canonicalized and interned, and each
    /// level holds the distinct orbit representatives at that depth.
    ///
    /// Telemetry mirrors [`StateSpace::expand_layers`] (`space.build` span,
    /// `engine.*` counters) plus the quotient counters from
    /// [`QuotientSpace::intern_with`].
    pub fn expand_layers(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        obs: &dyn Observer,
    ) -> Vec<Vec<StateId>> {
        self.expand_with(model, roots, horizon, obs, |_, _| {})
    }

    /// [`QuotientSpace::expand_layers`] with per-level successor
    /// computation and canonicalization fanned out across up to `threads`
    /// scoped workers. Bit-identical to the sequential path.
    pub fn expand_layers_parallel(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        threads: usize,
        obs: &dyn Observer,
    ) -> Vec<Vec<StateId>>
    where
        M: Sync,
        M::State: Send + Sync,
    {
        self.expand_with(model, roots, horizon, obs, |space, frontier| {
            space.prefetch_successors(model, frontier, threads, obs);
        })
    }

    fn expand_with(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        obs: &dyn Observer,
        mut prefetch: impl FnMut(&mut Self, &[StateId]),
    ) -> Vec<Vec<StateId>> {
        let _span = Span::enter(obs, "space.build");
        let mut levels: Vec<Vec<StateId>> = Vec::with_capacity(horizon + 1);
        let mut frontier: Vec<StateId> = Vec::new();
        let mut seen: HashSet<StateId> = HashSet::new();
        for r in roots {
            let (id, _) = self.intern_with(model, r, obs);
            if seen.insert(id) {
                frontier.push(id);
            } else {
                obs.counter("engine.dedup_hits", 1);
            }
        }
        obs.gauge("engine.frontier_width", frontier.len() as u64);
        levels.push(frontier.clone());
        let mut heartbeat = Heartbeat::new();
        for depth in 0..horizon {
            let _layer_span = Span::enter_with(
                obs,
                "space.layer",
                &[
                    ("depth", depth as u64 + 1),
                    ("frontier", frontier.len() as u64),
                ],
            );
            let layer_started = if obs.enabled() {
                clock::monotonic_ns()
            } else {
                0
            };
            prefetch(self, &frontier);
            let mut seen: HashSet<StateId> = HashSet::new();
            let mut next = Vec::new();
            for &id in &frontier {
                obs.counter("engine.states_visited", 1);
                for y in self.successor_ids(model, id, obs) {
                    if seen.insert(y) {
                        next.push(y);
                    } else {
                        obs.counter("engine.dedup_hits", 1);
                    }
                }
            }
            if obs.enabled() {
                obs.histogram(
                    "space.layer_expand_ns",
                    clock::monotonic_ns().saturating_sub(layer_started),
                );
            }
            obs.gauge("engine.frontier_width", next.len() as u64);
            heartbeat.tick(obs, depth + 1, next.len(), self.len());
            levels.push(next.clone());
            frontier = next;
        }
        levels
    }

    /// De-quotients an id path into a genuine execution of the model.
    ///
    /// Given representatives `c₀ → c₁ → ⋯ → c_k` along cached quotient
    /// edges with witnesses `σᵢ` (`σᵢ · yᵢ = cᵢ` for a raw successor
    /// `yᵢ ∈ S(cᵢ₋₁)`), the recurrence
    ///
    /// ```text
    ///     ρ₀ = id,   ρᵢ = ρᵢ₋₁ ∘ σᵢ⁻¹,   xᵢ = ρᵢ · cᵢ
    /// ```
    ///
    /// produces states with `x₀ = c₀` and `xᵢ ∈ S(xᵢ₋₁)`: indeed
    /// `xᵢ = ρᵢ₋₁ · yᵢ` with `yᵢ ∈ S(cᵢ₋₁)`, and equivariance gives
    /// `ρᵢ₋₁ · S(cᵢ₋₁) = S(ρᵢ₋₁ · cᵢ₋₁) = S(xᵢ₋₁)`. Since canonical
    /// representatives of initial-state orbits are themselves initial
    /// states (the initial set is closed under renaming), the returned
    /// sequence is a genuine `S`-execution whenever `c₀` is initial.
    ///
    /// Returns `None` if some consecutive pair is not a cached quotient
    /// edge (successors never computed, or not actually adjacent).
    #[must_use]
    pub fn dequotient_path(&self, model: &M, path: &[StateId]) -> Option<Vec<M::State>> {
        let first = path.first()?;
        let mut out = vec![self.resolve(*first).clone()];
        let mut rho = PidPerm::identity(model.num_processes());
        for pair in path.windows(2) {
            let (succs, perms) = self.cached_successors_with_perms(pair[0])?;
            let pos = succs.iter().position(|&s| s == pair[1])?;
            rho = rho.compose(&perms[pos].inverse());
            out.push(model.permute_state(self.resolve(pair[1]), &rho));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MetricsRegistry;
    use crate::testkit::CounterModel;

    #[test]
    fn intern_round_trips_and_deduplicates() {
        let m = CounterModel::new(2, 4);
        let mut space: StateSpace<CounterModel> = StateSpace::new();
        let states = m.initial_states();
        let ids: Vec<StateId> = states.iter().map(|s| space.intern(s)).collect();
        // Dense, contiguous, in interning order.
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), k);
            assert_eq!(space.resolve(*id), &states[k]);
        }
        // Double interning returns the same ids and allocates nothing.
        let before = space.len();
        for (k, s) in states.iter().enumerate() {
            assert_eq!(space.intern(s), ids[k]);
        }
        assert_eq!(space.len(), before);
        assert_eq!(space.get(&states[0]), Some(ids[0]));
    }

    #[test]
    fn successor_lists_are_cached_once() {
        let m = CounterModel::new(2, 4);
        let mut space: StateSpace<CounterModel> = StateSpace::new();
        let x0 = m.initial_states().remove(0);
        let id = space.intern(&x0);
        assert!(space.cached_successors(id).is_none());
        let a = space.successor_ids(&m, id, &NOOP);
        let edges_after_first = space.edge_count();
        let b = space.successor_ids(&m, id, &NOOP);
        assert_eq!(a, b);
        assert_eq!(space.edge_count(), edges_after_first, "no recompute");
        assert_eq!(space.materialize(&a), m.successors(&x0));
    }

    #[test]
    fn expand_layers_matches_model_exploration() {
        let m = CounterModel::new(3, 4);
        let roots = m.initial_states();
        let mut space: StateSpace<CounterModel> = StateSpace::new();
        let levels = space.expand_layers(&m, &roots, 3, &NOOP);
        let reference = crate::explore(&m, &roots, 3);
        assert_eq!(levels.len(), reference.levels.len());
        for (ids, states) in levels.iter().zip(&reference.levels) {
            assert_eq!(&space.materialize(ids), states);
        }
    }

    #[test]
    fn parallel_expansion_is_bit_identical() {
        let m = CounterModel::new(3, 4);
        let roots = m.initial_states();
        let mut seq: StateSpace<CounterModel> = StateSpace::new();
        let seq_levels = seq.expand_layers(&m, &roots, 3, &NOOP);
        for threads in [2, 3, 8] {
            let mut par: StateSpace<CounterModel> = StateSpace::new();
            let par_levels = par.expand_layers_parallel(&m, &roots, 3, threads, &NOOP);
            assert_eq!(seq_levels, par_levels, "threads={threads}");
            assert_eq!(seq.len(), par.len());
            for k in 0..seq.len() {
                let id = StateId(k as u32);
                assert_eq!(seq.resolve(id), par.resolve(id));
                assert_eq!(seq.cached_successors(id), par.cached_successors(id));
            }
        }
    }

    #[test]
    fn prefetch_marks_all_requested_states() {
        let m = CounterModel::new(2, 4);
        let mut space: StateSpace<CounterModel> = StateSpace::new();
        let ids: Vec<StateId> = m.initial_states().iter().map(|s| space.intern(s)).collect();
        space.prefetch_successors(&m, &ids, 4, &NOOP);
        for &id in &ids {
            assert!(space.cached_successors(id).is_some());
        }
        // Prefetching again is a no-op.
        let edges = space.edge_count();
        space.prefetch_successors(&m, &ids, 4, &NOOP);
        assert_eq!(space.edge_count(), edges);
    }

    #[test]
    fn balanced_chunks_never_degenerate() {
        let items: Vec<u32> = (0..9).collect();
        let parts: Vec<&[u32]> = balanced_chunks(&items, 8).collect();
        assert_eq!(parts.len(), 8);
        let lens: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(lens, vec![2, 1, 1, 1, 1, 1, 1, 1]);
        let flat: Vec<u32> = parts.iter().flat_map(|p| p.iter().copied()).collect();
        assert_eq!(flat, items, "chunks cover the slice in order");
        // More workers than items: one chunk per item.
        assert_eq!(balanced_chunks(&items[..2], 8).count(), 2);
    }

    #[test]
    fn quotient_interning_collapses_orbits() {
        let m = CounterModel::new(3, 2);
        let mut q: QuotientSpace<CounterModel> = QuotientSpace::new(&m);
        // All single-one input vectors are one orbit.
        let mut ids = Vec::new();
        for inputs in crate::binary_input_vectors(3) {
            if inputs.iter().filter(|&&v| v == crate::Value::ONE).count() == 1 {
                let (id, perm) = q.intern(&m, &m.initial_state(&inputs));
                // The witness maps the state onto the stored representative.
                assert_eq!(
                    &m.permute_state(&m.initial_state(&inputs), &perm),
                    q.resolve(id)
                );
                ids.push(id);
            }
        }
        assert!(ids.windows(2).all(|w| w[0] == w[1]), "one orbit, one id");
        assert_eq!(q.len(), 1);
        assert_eq!(q.orbit_size_of(ids[0]), 3);
        assert_eq!(q.covered_states(), 3);
    }

    #[test]
    fn quotient_expansion_parity_and_dequotient() {
        let m = CounterModel::new(3, 3);
        let roots = m.initial_states();
        let mut q: QuotientSpace<CounterModel> = QuotientSpace::new(&m);
        let levels = q.expand_layers(&m, &roots, 2, &NOOP);
        // 2^3 = 8 input vectors collapse to 4 orbits (0..=3 ones).
        assert_eq!(levels[0].len(), 4);
        // Parallel expansion is bit-identical.
        for threads in [2, 3, 8] {
            let mut par: QuotientSpace<CounterModel> = QuotientSpace::new(&m);
            let par_levels = par.expand_layers_parallel(&m, &roots, 2, threads, &NOOP);
            assert_eq!(levels, par_levels, "threads={threads}");
            assert_eq!(q.len(), par.len());
        }
        // Any root-to-leaf id path de-quotients into a genuine execution.
        let path = vec![levels[0][0], q.cached_successors(levels[0][0]).unwrap()[1]];
        let path = {
            let mut p = path;
            let last = *p.last().unwrap();
            p.push(q.cached_successors(last).unwrap()[0]);
            p
        };
        let genuine = q.dequotient_path(&m, &path).expect("cached edges");
        let trace = crate::ExecutionTrace::new(genuine);
        assert!(trace.validate(&m).is_ok());
    }

    #[test]
    fn quotient_telemetry_reports_canon_counters() {
        let m = CounterModel::new(3, 2);
        let reg = MetricsRegistry::new();
        let mut q: QuotientSpace<CounterModel> = QuotientSpace::new(&m);
        let x = m.initial_state(&[crate::Value::ONE, crate::Value::ZERO, crate::Value::ZERO]);
        let y = m.initial_state(&[crate::Value::ZERO, crate::Value::ZERO, crate::Value::ONE]);
        q.intern_with(&m, &x, &reg);
        q.intern_with(&m, &y, &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("space.canon.hits"), 1, "same orbit twice");
        assert_eq!(snap.counter("space.canon.orbit_states"), 3);
        // One interned orbit covering 3 full states → a mean of 3.000 full
        // states per orbit, reported in fixed-point thousandths.
        assert_eq!(snap.gauge_max("space.quotient.mean_orbit_x1000"), 3000);
    }

    #[test]
    fn interning_telemetry_counts_hits_and_misses() {
        let m = CounterModel::new(2, 4);
        let reg = MetricsRegistry::new();
        let mut space: StateSpace<CounterModel> = StateSpace::new();
        let x0 = m.initial_states().remove(0);
        space.intern_with(&x0, &reg);
        space.intern_with(&x0, &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("space.intern.misses"), 1);
        assert_eq!(snap.counter("space.intern.hits"), 1);
        assert_eq!(snap.gauge_max("space.states"), 1);
    }
}
