//! Hash-consed state spaces: dense [`StateId`]s over a model's reachable
//! states, with CSR-packed successor adjacency and deterministic parallel
//! layer expansion.
//!
//! Every exact engine in this crate (valence, connectivity, layering, the
//! consensus checker) explores the same graded state graph. Keying those
//! explorations on full cloned model states makes each hash, clone and
//! equality test cost `O(|state|)` — the direct cause of the n≤3 enumeration
//! ceiling this module removes. A [`StateSpace`] interns each distinct state
//! exactly once and hands out a dense `u32` [`StateId`]; the engines then
//! memoize in flat `Vec`s indexed by id and walk successor lists that are
//! computed once and packed into a single flat edge array (compressed sparse
//! row layout).
//!
//! # Id layout and determinism
//!
//! Ids are assigned in *interning order*: the first distinct state presented
//! to [`StateSpace::intern`] gets id 0, the next distinct one id 1, and so
//! on. All exploration routines here present states in a canonical order
//! (roots in the order given, then successor lists in model order, level by
//! level), so for a fixed model and entry point the id assignment — and
//! everything derived from it — is deterministic.
//!
//! The parallel path ([`StateSpace::expand_layers_parallel`],
//! [`StateSpace::prefetch_successors`]) keeps that guarantee: worker threads
//! only evaluate `model.successors(x)` for disjoint chunks of the frontier
//! (a pure function under the [`LayeredModel`] contract), and the merge back
//! into the arena happens on the calling thread *in frontier order* — the
//! exact order the sequential path would have used. Parallelism changes how
//! fast successor lists are produced, never which states exist, their ids,
//! or the contents of any layer, so sequential and parallel expansion are
//! bit-identical.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use crate::telemetry::{Observer, Span, NOOP};
use crate::LayeredModel;

/// Dense identifier of an interned state within one [`StateSpace`].
///
/// Ids are only meaningful relative to the space that produced them; they
/// are assigned contiguously from 0 in interning order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(u32);

impl StateId {
    /// The id as a dense `usize` index (`0..space.len()`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Range of a state's successor list inside the packed edge array.
#[derive(Clone, Copy, Debug)]
struct SuccRange {
    start: u32,
    len: u32,
}

/// A hash-consing arena over a model's states.
///
/// Interning deduplicates states structurally: `intern` returns the same
/// [`StateId`] for equal states and stores each distinct state exactly once.
/// Successor lists are computed lazily (or eagerly, in parallel, via
/// [`StateSpace::prefetch_successors`]) and cached in CSR form, so each
/// `model.successors` call happens at most once per state per space.
///
/// # Examples
///
/// ```
/// use layered_core::space::StateSpace;
/// use layered_core::testkit::CounterModel;
/// use layered_core::LayeredModel;
///
/// let m = CounterModel::new(2, 4);
/// let x0 = m.initial_states().remove(0);
/// let mut space: StateSpace<CounterModel> = StateSpace::new();
/// let id = space.intern(&x0);
/// assert_eq!(space.intern(&x0), id); // double-intern: same id
/// assert_eq!(space.resolve(id), &x0); // round-trip
/// ```
pub struct StateSpace<M: LayeredModel> {
    states: Vec<M::State>,
    /// Hash-bucketed index: state hash → candidate ids (collisions resolved
    /// by equality against `states`). Stores every state once, in `states`.
    index: HashMap<u64, Vec<StateId>>,
    succ: Vec<Option<SuccRange>>,
    edges: Vec<StateId>,
}

impl<M: LayeredModel> Default for StateSpace<M> {
    fn default() -> Self {
        StateSpace::new()
    }
}

impl<M: LayeredModel> StateSpace<M> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        StateSpace {
            states: Vec::new(),
            index: HashMap::new(),
            succ: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Number of distinct states interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no state has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total successor edges cached so far (with multiplicity).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn hash_of(s: &M::State) -> u64 {
        let mut h = DefaultHasher::new();
        s.hash(&mut h);
        h.finish()
    }

    /// Interns `s`, returning its dense id (allocating one on first sight).
    pub fn intern(&mut self, s: &M::State) -> StateId {
        self.intern_with(s, &NOOP)
    }

    /// [`StateSpace::intern`] with telemetry: reports `space.intern.hits` /
    /// `space.intern.misses` counters and the `space.states` gauge to `obs`.
    pub fn intern_with(&mut self, s: &M::State, obs: &dyn Observer) -> StateId {
        let h = Self::hash_of(s);
        if let Some(bucket) = self.index.get(&h) {
            for &id in bucket {
                if &self.states[id.index()] == s {
                    obs.counter("space.intern.hits", 1);
                    return id;
                }
            }
        }
        obs.counter("space.intern.misses", 1);
        let id = StateId(u32::try_from(self.states.len()).expect("more than u32::MAX states"));
        self.states.push(s.clone());
        self.succ.push(None);
        self.index.entry(h).or_default().push(id);
        obs.gauge("space.states", self.states.len() as u64);
        id
    }

    /// The id of `s` if it has been interned, without interning it.
    #[must_use]
    pub fn get(&self, s: &M::State) -> Option<StateId> {
        let h = Self::hash_of(s);
        self.index
            .get(&h)?
            .iter()
            .copied()
            .find(|id| &self.states[id.index()] == s)
    }

    /// The state behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this space.
    #[must_use]
    pub fn resolve(&self, id: StateId) -> &M::State {
        &self.states[id.index()]
    }

    /// Clones the states behind `ids` back out of the arena (used to
    /// materialize id paths into state-typed witnesses at the API boundary).
    #[must_use]
    pub fn materialize(&self, ids: &[StateId]) -> Vec<M::State> {
        ids.iter().map(|&id| self.resolve(id).clone()).collect()
    }

    /// The cached successor list of `id`, or `None` if it has not been
    /// computed yet.
    #[must_use]
    pub fn cached_successors(&self, id: StateId) -> Option<&[StateId]> {
        self.succ[id.index()].map(|r| {
            let start = r.start as usize;
            &self.edges[start..start + r.len as usize]
        })
    }

    /// Interns the given successor states of `id` and packs them into the
    /// edge array. No-op if `id`'s successors are already cached.
    fn record_successors(&mut self, id: StateId, succs: &[M::State], obs: &dyn Observer) {
        if self.succ[id.index()].is_some() {
            return;
        }
        let start = u32::try_from(self.edges.len()).expect("more than u32::MAX edges");
        for y in succs {
            let yid = self.intern_with(y, obs);
            self.edges.push(yid);
        }
        let len = u32::try_from(succs.len()).expect("layer larger than u32::MAX");
        self.succ[id.index()] = Some(SuccRange { start, len });
    }

    /// The successor ids of `id` under `model`'s layering, computing and
    /// caching the list on first use.
    pub fn successor_ids(&mut self, model: &M, id: StateId, obs: &dyn Observer) -> Vec<StateId> {
        if self.succ[id.index()].is_none() {
            let x = self.states[id.index()].clone();
            let succs = model.successors(&x);
            self.record_successors(id, &succs, obs);
        }
        self.cached_successors(id)
            .expect("successors just recorded")
            .to_vec()
    }

    /// Eagerly computes and caches the successor lists of `ids`, fanning the
    /// `model.successors` calls out across up to `threads` scoped workers.
    ///
    /// Determinism: workers receive disjoint chunks of the (already
    /// deduplicated) id list and only evaluate the pure successor function;
    /// the results are merged into the arena on the calling thread in the
    /// order of `ids`. The resulting interning order — and therefore every
    /// id, layer and report derived from it — is identical to calling
    /// [`StateSpace::successor_ids`] sequentially over `ids`.
    pub fn prefetch_successors(
        &mut self,
        model: &M,
        ids: &[StateId],
        threads: usize,
        obs: &dyn Observer,
    ) where
        M: Sync,
        M::State: Send + Sync,
    {
        let pending: Vec<(StateId, M::State)> = ids
            .iter()
            .filter(|id| self.succ[id.index()].is_none())
            .map(|&id| (id, self.states[id.index()].clone()))
            .collect();
        if pending.is_empty() {
            return;
        }
        let threads = threads.max(1).min(pending.len());
        if threads == 1 {
            for (id, x) in &pending {
                let succs = model.successors(x);
                self.record_successors(*id, &succs, obs);
            }
            return;
        }
        let chunk = pending.len().div_ceil(threads);
        let computed: Vec<Vec<Vec<M::State>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = pending
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || part.iter().map(|(_, x)| model.successors(x)).collect())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("successor worker panicked"))
                .collect()
        });
        for ((id, _), succs) in pending.iter().zip(computed.iter().flatten()) {
            self.record_successors(*id, succs, obs);
        }
    }

    /// Breadth-first expansion of the layered graph from `roots` for
    /// `horizon` layers, interning every state and caching every successor
    /// list. Returns the interned levels (`levels[d]` = distinct states at
    /// depth `d` relative to the roots, in first-seen order).
    ///
    /// Telemetry: the sweep runs under a `space.build` span and reports
    /// `engine.states_visited`, `engine.dedup_hits` and the
    /// `engine.frontier_width` gauge alongside the interning counters.
    pub fn expand_layers(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        obs: &dyn Observer,
    ) -> Vec<Vec<StateId>> {
        self.expand_with(model, roots, horizon, obs, |_, _| {})
    }

    /// [`StateSpace::expand_layers`] with the per-level successor
    /// computation fanned out across up to `threads` scoped workers.
    ///
    /// Bit-identical to the sequential path (see
    /// [`StateSpace::prefetch_successors`] for why).
    pub fn expand_layers_parallel(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        threads: usize,
        obs: &dyn Observer,
    ) -> Vec<Vec<StateId>>
    where
        M: Sync,
        M::State: Send + Sync,
    {
        self.expand_with(model, roots, horizon, obs, |space, frontier| {
            space.prefetch_successors(model, frontier, threads, obs);
        })
    }

    fn expand_with(
        &mut self,
        model: &M,
        roots: &[M::State],
        horizon: usize,
        obs: &dyn Observer,
        mut prefetch: impl FnMut(&mut Self, &[StateId]),
    ) -> Vec<Vec<StateId>> {
        let _span = Span::enter(obs, "space.build");
        let mut levels: Vec<Vec<StateId>> = Vec::with_capacity(horizon + 1);
        let mut frontier: Vec<StateId> = Vec::new();
        let mut seen: HashSet<StateId> = HashSet::new();
        for r in roots {
            let id = self.intern_with(r, obs);
            if seen.insert(id) {
                frontier.push(id);
            } else {
                obs.counter("engine.dedup_hits", 1);
            }
        }
        obs.gauge("engine.frontier_width", frontier.len() as u64);
        levels.push(frontier.clone());
        for _ in 0..horizon {
            prefetch(self, &frontier);
            let mut seen: HashSet<StateId> = HashSet::new();
            let mut next = Vec::new();
            for &id in &frontier {
                obs.counter("engine.states_visited", 1);
                for y in self.successor_ids(model, id, obs) {
                    if seen.insert(y) {
                        next.push(y);
                    } else {
                        obs.counter("engine.dedup_hits", 1);
                    }
                }
            }
            obs.gauge("engine.frontier_width", next.len() as u64);
            levels.push(next.clone());
            frontier = next;
        }
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MetricsRegistry;
    use crate::testkit::CounterModel;

    #[test]
    fn intern_round_trips_and_deduplicates() {
        let m = CounterModel::new(2, 4);
        let mut space: StateSpace<CounterModel> = StateSpace::new();
        let states = m.initial_states();
        let ids: Vec<StateId> = states.iter().map(|s| space.intern(s)).collect();
        // Dense, contiguous, in interning order.
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), k);
            assert_eq!(space.resolve(*id), &states[k]);
        }
        // Double interning returns the same ids and allocates nothing.
        let before = space.len();
        for (k, s) in states.iter().enumerate() {
            assert_eq!(space.intern(s), ids[k]);
        }
        assert_eq!(space.len(), before);
        assert_eq!(space.get(&states[0]), Some(ids[0]));
    }

    #[test]
    fn successor_lists_are_cached_once() {
        let m = CounterModel::new(2, 4);
        let mut space: StateSpace<CounterModel> = StateSpace::new();
        let x0 = m.initial_states().remove(0);
        let id = space.intern(&x0);
        assert!(space.cached_successors(id).is_none());
        let a = space.successor_ids(&m, id, &NOOP);
        let edges_after_first = space.edge_count();
        let b = space.successor_ids(&m, id, &NOOP);
        assert_eq!(a, b);
        assert_eq!(space.edge_count(), edges_after_first, "no recompute");
        assert_eq!(space.materialize(&a), m.successors(&x0));
    }

    #[test]
    fn expand_layers_matches_model_exploration() {
        let m = CounterModel::new(3, 4);
        let roots = m.initial_states();
        let mut space: StateSpace<CounterModel> = StateSpace::new();
        let levels = space.expand_layers(&m, &roots, 3, &NOOP);
        let reference = crate::explore(&m, &roots, 3);
        assert_eq!(levels.len(), reference.levels.len());
        for (ids, states) in levels.iter().zip(&reference.levels) {
            assert_eq!(&space.materialize(ids), states);
        }
    }

    #[test]
    fn parallel_expansion_is_bit_identical() {
        let m = CounterModel::new(3, 4);
        let roots = m.initial_states();
        let mut seq: StateSpace<CounterModel> = StateSpace::new();
        let seq_levels = seq.expand_layers(&m, &roots, 3, &NOOP);
        for threads in [2, 3, 8] {
            let mut par: StateSpace<CounterModel> = StateSpace::new();
            let par_levels = par.expand_layers_parallel(&m, &roots, 3, threads, &NOOP);
            assert_eq!(seq_levels, par_levels, "threads={threads}");
            assert_eq!(seq.len(), par.len());
            for k in 0..seq.len() {
                let id = StateId(k as u32);
                assert_eq!(seq.resolve(id), par.resolve(id));
                assert_eq!(seq.cached_successors(id), par.cached_successors(id));
            }
        }
    }

    #[test]
    fn prefetch_marks_all_requested_states() {
        let m = CounterModel::new(2, 4);
        let mut space: StateSpace<CounterModel> = StateSpace::new();
        let ids: Vec<StateId> = m.initial_states().iter().map(|s| space.intern(s)).collect();
        space.prefetch_successors(&m, &ids, 4, &NOOP);
        for &id in &ids {
            assert!(space.cached_successors(id).is_some());
        }
        // Prefetching again is a no-op.
        let edges = space.edge_count();
        space.prefetch_successors(&m, &ids, 4, &NOOP);
        assert_eq!(space.edge_count(), edges);
    }

    #[test]
    fn interning_telemetry_counts_hits_and_misses() {
        let m = CounterModel::new(2, 4);
        let reg = MetricsRegistry::new();
        let mut space: StateSpace<CounterModel> = StateSpace::new();
        let x0 = m.initial_states().remove(0);
        space.intern_with(&x0, &reg);
        space.intern_with(&x0, &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("space.intern.misses"), 1);
        assert_eq!(snap.counter("space.intern.hits"), 1);
        assert_eq!(snap.gauge_max("space.states"), 1);
    }
}
