//! Exhaustive checking of the consensus requirements and of the abstract
//! failure-model properties of Section 2.
//!
//! * [`check_consensus`] sweeps every `S`-execution up to a horizon and
//!   reports *Agreement*, *Validity*, and *Decision* violations with explicit
//!   state witnesses. Combined with the impossibility engine in
//!   [`crate::layering`], this is the workhorse of all the paper's
//!   experiments: the paper proves no protocol can pass; the checker finds
//!   the concrete violation for each candidate protocol.
//! * [`check_crash_display`] verifies the *arbitrary crash failure* display
//!   property (Section 2) in its inductive form over the reachable graph.
//! * [`check_fault_independence`] verifies the *fault independence* property
//!   in its inductive form: every state has a successor introducing no new
//!   failures.
//! * [`check_graded`] validates the state-graph contract every model must
//!   satisfy (see [`crate::model`]).

use std::collections::HashSet;

use crate::space::{StateId, StateSpace};
use crate::telemetry::{Observer, Span, NOOP};
use crate::{LayeredModel, Pid, Value};

/// A violation of one of the three consensus requirements, with its witness
/// state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation<S> {
    /// Two non-failed processes decided differently in the same state.
    Agreement {
        /// Witness state.
        state: S,
        /// First decided process and its value.
        p: (Pid, Value),
        /// Second decided process and its conflicting value.
        q: (Pid, Value),
    },
    /// A non-failed process decided a value that is nobody's input.
    Validity {
        /// Witness state.
        state: S,
        /// The deciding process.
        p: Pid,
        /// The invalid decided value.
        v: Value,
        /// The run's input assignment.
        inputs: Vec<Value>,
    },
    /// An execution reached the horizon with obligated processes undecided.
    Decision {
        /// Witness state at the horizon.
        state: S,
        /// Obligated processes that have not decided.
        undecided: Vec<Pid>,
    },
}

impl<S> Violation<S> {
    /// Short tag for reporting.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Agreement { .. } => "agreement",
            Violation::Validity { .. } => "validity",
            Violation::Decision { .. } => "decision",
        }
    }
}

/// Result of an exhaustive consensus sweep.
#[derive(Clone, Debug)]
pub struct ConsensusReport<S> {
    /// Number of distinct states visited.
    pub states_explored: usize,
    /// The horizon used (layers from the initial states).
    pub horizon: usize,
    /// All violations found, capped by the `max_violations` argument.
    pub violations: Vec<Violation<S>>,
}

impl<S> ConsensusReport<S> {
    /// Whether the protocol passed the sweep.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of a particular kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Violation<S>> + 'a {
        self.violations.iter().filter(move |v| v.kind() == kind)
    }
}

/// Checks Agreement and Validity at a single state; used by the sweep and
/// exposed for targeted tests.
pub fn state_violations<M: LayeredModel>(model: &M, x: &M::State) -> Vec<Violation<M::State>> {
    let n = model.num_processes();
    let mut out = Vec::new();
    let inputs = model.inputs_of(x);
    let decided: Vec<(Pid, Value)> = Pid::all(n)
        .filter(|&i| !model.failed_at(x, i))
        .filter_map(|i| model.decision(x, i).map(|v| (i, v)))
        .collect();
    for (idx, &(p, vp)) in decided.iter().enumerate() {
        if !inputs.contains(&vp) {
            out.push(Violation::Validity {
                state: x.clone(),
                p,
                v: vp,
                inputs: inputs.clone(),
            });
        }
        let later = decided
            .get(idx + 1..)
            .expect("idx comes from enumerate, so idx + 1 <= decided.len()");
        for &(q, vq) in later {
            if vp != vq {
                out.push(Violation::Agreement {
                    state: x.clone(),
                    p: (p, vp),
                    q: (q, vq),
                });
            }
        }
    }
    out
}

/// Exhaustively checks the three consensus requirements over all
/// `S`-executions of up to `horizon` layers.
///
/// *Decision* is checked at horizon states via
/// [`LayeredModel::obligated`]; *Agreement* and *Validity* at every state.
/// Exploration stops early once `max_violations` have been collected.
pub fn check_consensus<M: LayeredModel>(
    model: &M,
    horizon: usize,
    max_violations: usize,
) -> ConsensusReport<M::State> {
    check_consensus_with(model, horizon, max_violations, &NOOP)
}

/// [`check_consensus`] with telemetry: states visited, frontier dedup hits,
/// frontier widths and violations found are reported to `obs`.
pub fn check_consensus_with<M: LayeredModel>(
    model: &M,
    horizon: usize,
    max_violations: usize,
    obs: &dyn Observer,
) -> ConsensusReport<M::State> {
    let _span = Span::enter(obs, "checker.sweep");
    let mut report = ConsensusReport {
        states_explored: 0,
        horizon,
        violations: Vec::new(),
    };
    let mut space: StateSpace<M> = StateSpace::new();
    let mut frontier: Vec<StateId> = Vec::new();
    {
        let mut seen: HashSet<StateId> = HashSet::new();
        for x in model.initial_states() {
            let id = space.intern_with(&x, obs);
            if seen.insert(id) {
                frontier.push(id);
            }
        }
    }
    for depth in 0..=horizon {
        obs.gauge("engine.frontier_width", frontier.len() as u64);
        let mut next: Vec<StateId> = Vec::new();
        let mut seen: HashSet<StateId> = HashSet::new();
        for &id in &frontier {
            report.states_explored += 1;
            obs.counter("engine.states_visited", 1);
            {
                let x = space.resolve(id);
                for v in state_violations(model, &x) {
                    if report.violations.len() < max_violations {
                        obs.counter("checker.violations", 1);
                        report.violations.push(v);
                    }
                }
                if depth == horizon {
                    let undecided: Vec<Pid> = model
                        .obligated(&x)
                        .into_iter()
                        .filter(|&i| model.decision(&x, i).is_none())
                        .collect();
                    if !undecided.is_empty() && report.violations.len() < max_violations {
                        obs.counter("checker.violations", 1);
                        report.violations.push(Violation::Decision {
                            state: x,
                            undecided,
                        });
                    }
                }
            }
            if depth < horizon {
                for y in space.successor_ids(model, id, obs) {
                    if seen.insert(y) {
                        next.push(y);
                    } else {
                        obs.counter("engine.dedup_hits", 1);
                    }
                }
            }
            if report.violations.len() >= max_violations {
                return report;
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    report
}

/// Reconstructs an execution from an initial state to `target`, if `target`
/// is reachable within `max_depth` layers.
///
/// Breadth-first with parent tracking; the result is a legal
/// [`ExecutionTrace`](crate::ExecutionTrace) (verified by construction) that
/// can be attached to a [`Violation`] as a full run witness.
pub fn trace_to<M: LayeredModel>(
    model: &M,
    target: &M::State,
    max_depth: usize,
) -> Option<crate::ExecutionTrace<M::State>> {
    use std::collections::HashMap;
    let mut space: StateSpace<M> = StateSpace::new();
    let mut parent: HashMap<StateId, Option<StateId>> = HashMap::new();
    let mut frontier: Vec<StateId> = Vec::new();
    for x in model.initial_states() {
        let id = space.intern(&x);
        if parent.insert(id, None).is_none() {
            frontier.push(id);
        }
    }
    let is_found = |space: &StateSpace<M>, parent: &HashMap<StateId, Option<StateId>>| {
        space.get(target).filter(|id| parent.contains_key(id))
    };
    let mut found = is_found(&space, &parent);
    let mut depth = 0;
    while found.is_none() && depth < max_depth && !frontier.is_empty() {
        let mut next = Vec::new();
        for &id in &frontier {
            for y in space.successor_ids(model, id, &NOOP) {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(y) {
                    e.insert(Some(id));
                    next.push(y);
                }
            }
        }
        frontier = next;
        depth += 1;
        found = is_found(&space, &parent);
    }
    let target_id = found?;
    let mut ids = vec![target_id];
    while let Some(Some(p)) = parent.get(ids.last().expect("non-empty")) {
        ids.push(*p);
    }
    ids.reverse();
    Some(crate::ExecutionTrace::new(space.materialize(&ids)))
}

fn failed_set<M: LayeredModel>(model: &M, x: &M::State) -> Vec<Pid> {
    Pid::all(model.num_processes())
        .filter(|&i| model.failed_at(x, i))
        .collect()
}

/// Verifies the inductive form of the *arbitrary crash failure* display
/// property up to `depth_limit`: for every reachable pair `x, y` at equal
/// depth that agree modulo `j`,
///
/// 1. `crash_step(x, j)` and `crash_step(y, j)` again agree modulo `j`, and
/// 2. every process `i ≠ j` non-failed in both `x` and `y` remains
///    non-failed in both crash successors, and
/// 3. each crash successor is a member of its layer.
///
/// Unrolling the induction yields exactly the paired runs `r^x, r^y` of the
/// paper's definition. Returns the first violating triple `(x, y, j)`.
#[allow(clippy::type_complexity)]
pub fn check_crash_display<M: LayeredModel>(
    model: &M,
    depth_limit: usize,
) -> Option<(M::State, M::State, Pid)> {
    let n = model.num_processes();
    let mut frontier = model.initial_states();
    for depth in 0..=depth_limit {
        for (ai, x) in frontier.iter().enumerate() {
            for y in &frontier[ai..] {
                for j in Pid::all(n) {
                    if !model.agree_modulo(x, y, j) {
                        continue;
                    }
                    let cx = model.crash_step(x, j);
                    let cy = model.crash_step(y, j);
                    let members =
                        model.successors(x).contains(&cx) && model.successors(y).contains(&cy);
                    let agrees = model.agree_modulo(&cx, &cy, j);
                    let preserves = Pid::all(n).all(|i| {
                        i == j
                            || model.failed_at(x, i)
                            || model.failed_at(y, i)
                            || (!model.failed_at(&cx, i) && !model.failed_at(&cy, i))
                    });
                    if !(members && agrees && preserves) {
                        return Some((x.clone(), y.clone(), j));
                    }
                }
            }
        }
        if depth == depth_limit {
            break;
        }
        let mut seen = HashSet::new();
        let mut next = Vec::new();
        for x in &frontier {
            for s in model.successors(x) {
                if seen.insert(s.clone()) {
                    next.push(s);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    None
}

/// Verifies the inductive form of *fault independence* up to `depth_limit`:
/// every reachable state has a successor whose failed set is exactly its
/// own (no new failures). Iterating that successor choice produces the run
/// `r^x` of the paper's definition. Returns the first violating state.
pub fn check_fault_independence<M: LayeredModel>(
    model: &M,
    depth_limit: usize,
) -> Option<M::State> {
    let mut frontier = model.initial_states();
    for depth in 0..=depth_limit {
        for x in &frontier {
            let fx = failed_set(model, x);
            let ok = model
                .successors(x)
                .iter()
                .any(|y| failed_set(model, y) == fx);
            if !ok {
                return Some(x.clone());
            }
        }
        if depth == depth_limit {
            break;
        }
        let mut seen = HashSet::new();
        let mut next = Vec::new();
        for x in &frontier {
            for s in model.successors(x) {
                if seen.insert(s.clone()) {
                    next.push(s);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    None
}

/// Validates the grading contract up to `depth_limit`: all initial states
/// have depth 0, every successor is one layer deeper, layers are non-empty
/// and duplicate-free, and failed sets only grow along edges.
///
/// Returns a description of the first contract breach.
pub fn check_graded<M: LayeredModel>(model: &M, depth_limit: usize) -> Option<String> {
    let mut frontier = model.initial_states();
    for x in &frontier {
        if model.depth(x) != 0 {
            return Some(format!("initial state at depth {}: {x:?}", model.depth(x)));
        }
    }
    for _ in 0..depth_limit {
        let mut seen = HashSet::new();
        let mut next = Vec::new();
        for x in &frontier {
            let succ = model.successors(x);
            if succ.is_empty() {
                return Some(format!("empty layer at {x:?}"));
            }
            let mut dedup = HashSet::new();
            for y in &succ {
                if !dedup.insert(y.clone()) {
                    return Some(format!("duplicate successor {y:?} of {x:?}"));
                }
                if model.depth(y) != model.depth(x) + 1 {
                    return Some(format!(
                        "depth jump {} -> {} at {y:?}",
                        model.depth(x),
                        model.depth(y)
                    ));
                }
                let fx: HashSet<_> = failed_set(model, x).into_iter().collect();
                let fy: HashSet<_> = failed_set(model, y).into_iter().collect();
                if !fx.is_subset(&fy) {
                    return Some(format!("failed set shrank along edge {x:?} -> {y:?}"));
                }
                if seen.insert(y.clone()) {
                    next.push(y.clone());
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{flp_diamond, CounterModel, ScriptedModelBuilder};

    #[test]
    fn diamond_fails_decision_at_short_horizon() {
        let m = flp_diamond();
        // At horizon 1 nothing has decided: both processes undecided.
        let report = check_consensus(&m, 1, 10);
        assert!(!report.passed());
        assert!(report.of_kind("decision").next().is_some());
        assert!(report.of_kind("agreement").next().is_none());
    }

    #[test]
    fn diamond_passes_at_full_horizon() {
        // At horizon 2 every leaf has p1 decided; p2 is obligated but
        // undecided in this toy — so decision still fails for p2.
        let m = flp_diamond();
        let report = check_consensus(&m, 2, 10);
        let decision_violations: Vec<_> = report.of_kind("decision").collect();
        assert!(!decision_violations.is_empty());
    }

    #[test]
    fn agreement_violation_detected() {
        let m = ScriptedModelBuilder::new(2, 1)
            .initial(&[Value::ZERO, Value::ONE], 0)
            .decision(0, 0, Value::ZERO)
            .decision(0, 1, Value::ONE)
            .depth(0, 0)
            .build();
        let vs = state_violations(&m, &0);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind(), "agreement");
    }

    #[test]
    fn validity_violation_detected() {
        let m = ScriptedModelBuilder::new(2, 1)
            .initial(&[Value::ZERO, Value::ZERO], 0)
            .decision(0, 0, Value::ONE) // 1 is nobody's input
            .depth(0, 0)
            .build();
        let vs = state_violations(&m, &0);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind(), "validity");
        match &vs[0] {
            Violation::Validity { v, inputs, .. } => {
                assert_eq!(*v, Value::ONE);
                assert_eq!(inputs, &vec![Value::ZERO, Value::ZERO]);
            }
            other => panic!("wrong violation {other:?}"),
        }
    }

    #[test]
    fn failed_process_decisions_are_exempt() {
        let m = ScriptedModelBuilder::new(2, 1)
            .initial(&[Value::ZERO, Value::ZERO], 0)
            .decision(0, 0, Value::ONE)
            .failed(0, 0)
            .depth(0, 0)
            .build();
        assert!(state_violations(&m, &0).is_empty());
    }

    #[test]
    fn violation_cap_respected() {
        let m = flp_diamond();
        let report = check_consensus(&m, 1, 1);
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn trace_to_reconstructs_witness_runs() {
        let m = flp_diamond();
        // State 4 ("decided 1") is reachable in 2 layers via 0 -> 2 -> 4.
        let trace = trace_to(&m, &4u32, 2).expect("reachable");
        assert_eq!(trace.states(), &[0, 2, 4]);
        assert!(trace.verify(&m).is_ok());
        // An unreachable state yields None.
        assert!(trace_to(&m, &99u32, 5).is_none());
        // Depth limits are respected.
        assert!(trace_to(&m, &4u32, 1).is_none());
        // An initial state traces to itself.
        let trivial = trace_to(&m, &0u32, 0).expect("initial");
        assert_eq!(trivial.states(), &[0]);
    }

    #[test]
    fn violations_can_be_traced() {
        // Combine the checker and the tracer: find a violation, then
        // reconstruct the full run that exhibits it.
        let m = flp_diamond();
        let report = check_consensus(&m, 2, 10);
        let v = report
            .violations
            .first()
            .expect("diamond violates decision");
        let state = match v {
            Violation::Decision { state, .. } => state,
            Violation::Agreement { state, .. } => state,
            Violation::Validity { state, .. } => state,
        };
        let trace = trace_to(&m, state, 2).expect("witness reachable");
        assert!(trace.verify(&m).is_ok());
        assert_eq!(trace.first(), &0);
    }

    #[test]
    fn counter_model_satisfies_structural_properties() {
        let m = CounterModel::new(3, 3);
        assert_eq!(check_graded(&m, 2), None);
        assert_eq!(check_fault_independence(&m, 2), None);
        assert_eq!(check_crash_display(&m, 1), None);
    }

    #[test]
    fn graded_check_catches_depth_jump() {
        let m = ScriptedModelBuilder::new(2, 1)
            .initial(&[Value::ZERO, Value::ZERO], 0)
            .edge(0, 1)
            .depth(0, 0)
            .depth(1, 5) // wrong
            .build();
        let err = check_graded(&m, 1).expect("depth jump");
        assert!(err.contains("depth jump"), "{err}");
    }

    #[test]
    fn fault_independence_catches_forced_failures() {
        // Every successor of 0 adds a failure: fault independence fails.
        let m = ScriptedModelBuilder::new(2, 1)
            .initial(&[Value::ZERO, Value::ZERO], 0)
            .edge(0, 1)
            .depth(0, 0)
            .depth(1, 1)
            .failed(1, 0)
            .build();
        assert_eq!(check_fault_independence(&m, 1), Some(0));
    }
}
