//! Model-independent kernel for the *layered analysis* of consensus.
//!
//! This crate is the executable core of Moses & Rajsbaum, *"The Unified
//! Structure of Consensus: a Layered Analysis Approach"* (PODC 1998). The
//! paper analyzes consensus once, abstractly, in terms of *layerings* —
//! successor functions `S : G → 2^G` over global states — and then derives
//! the classical impossibility results and lower bounds in four models by
//! exhibiting suitable layerings. This crate implements the abstract side:
//!
//! * global states, runs and executions over a model ([`model`]),
//! * valence of states — 0-valent / 1-valent / bivalent ([`valence`]),
//! * similarity and valence connectivity with machine-checkable
//!   certificates ([`connectivity`]),
//! * the layering engine: Lemma 4.1 and the Theorem 4.2 bivalent-run
//!   construction ([`layering`]),
//! * exhaustive checking of Decision / Agreement / Validity and of the
//!   abstract failure-model properties ([`checker`]).
//!
//! The concrete models live in sibling crates (`layered-sync-mobile`,
//! `layered-async-sm`, `layered-async-mp`, `layered-sync-crash`), protocols
//! in `layered-protocols`, and the Section 7 decision-task machinery in
//! `layered-topology`.
//!
//! # Quick example
//!
//! Build a toy layered model and run the Theorem 4.2 engine on it:
//!
//! ```
//! use layered_core::{build_bivalent_run, LayeredModel, ValenceSolver};
//! use layered_core::testkit::flp_diamond;
//!
//! let model = flp_diamond();
//! let mut solver = ValenceSolver::new(&model, 2);
//! let outcome = build_bivalent_run(&mut solver, 0);
//! // The diamond's initial state is bivalent: the engine finds it.
//! assert!(outcome.reached_target());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifact;
pub mod checker;
pub mod connectivity;
pub mod graph;
pub mod hash;
mod model;
mod pid;
pub mod report;
pub mod sim;
pub mod space;
pub mod stats;
pub mod sym;
pub mod telemetry;
pub mod testkit;
mod valence;
mod witness;

pub mod layering;

pub use artifact::{
    fnv1a64, state_fingerprint, trace_from_json, trace_to_json, witness_from_json, witness_to_json,
    ArtifactError,
};
pub use checker::{
    check_consensus, check_consensus_with, check_crash_display, check_fault_independence,
    check_graded, trace_to, ConsensusReport, Violation,
};
pub use connectivity::{
    input_interpolation, quotient_valence_graph_ids, quotient_valence_report_ids, s_diameter,
    similar, similarity_chain_between, similarity_chain_between_with, similarity_graph,
    similarity_graph_ids, similarity_graph_with, similarity_report, similarity_report_ids,
    similarity_report_with, similarity_witness, valence_graph, valence_graph_ids, valence_report,
    valence_report_ids, ConnectivityReport, SimilarityChain, SimilarityWitness,
};
pub use layering::{
    bivalent_successor, bivalent_successor_id, bivalent_successor_quotient_id, build_bivalent_run,
    build_bivalent_run_interned, build_bivalent_run_quotient, check_lemma_3_1, check_lemma_3_2,
    dequotient_run, extend_bivalent_run, extend_bivalent_run_interned,
    scan_layer_valence_connectivity, scan_layer_valence_connectivity_parallel,
    scan_layer_valence_connectivity_quotient, scan_layer_valence_connectivity_quotient_parallel,
    BivalentRunOutcome, InternedRun, LayerScan, Stuck,
};
pub use model::{
    explore, explore_with, states_at_depth, states_at_depth_with, ExecutionTrace, Exploration,
    LayeredModel, TraceError,
};
pub use pid::{binary_input_vectors, Pid, Value};
pub use sim::{MoveRecord, SimModel};
pub use space::pack::{
    pack_decision, unpack_decision, FieldPacker, StatePacker, WordReader, WordWriter, DECISION_BITS,
};
pub use space::snapshot::{
    load_quotient, load_space, save_quotient, save_space, ArenaMeta, SnapshotError, SnapshotReader,
    SnapshotState, SNAPSHOT_VERSION,
};
pub use space::{DiffReport, QuotientSpace, StateId, StateSpace, SHARD_COUNT};
pub use stats::{census, census_with, LevelCensus};
pub use sym::{canonicalize_by_min, canonicalize_packed, orbit_size, PidPerm, Symmetric};
pub use telemetry::{
    Fanout, Heartbeat, Histogram, JsonlObserver, MemoryBreakdown, MemoryFootprint, MetricsRegistry,
    MetricsSnapshot, NoopObserver, Observer, Span, TraceObserver,
};
pub use valence::{undecided_non_failed, QuotientSolver, Valence, ValenceSolver, Valences};
pub use witness::{ImpossibilityWitness, InternedWitness, WitnessError};
