//! The layering engine (Section 4 of the paper).
//!
//! Lemma 4.1: if `x` is bivalent and `S(x)` is valence connected, then
//! `S(x)` contains a bivalent state. Theorem 4.2 iterates this from a
//! bivalent initial state (supplied by Lemma 3.6) into an ever-bivalent run,
//! contradicting *Decision* — the unified impossibility argument.
//!
//! This module mechanizes both steps: [`bivalent_successor`] is Lemma 4.1
//! for one layer, [`build_bivalent_run`] is the Theorem 4.2 loop, and
//! [`scan_layer_valence_connectivity`] verifies the theorem's premise (iii)
//! — valence connectivity of every layer — over the reachable graph.
//!
//! # Horizon soundness
//!
//! Valence is computed within a finite horizon and therefore
//! *under-approximates* the paper's notion (see [`crate::valence`]): every
//! state reported bivalent is genuinely bivalent, so every chain produced
//! here is a sound impossibility witness. When the chain cannot be extended,
//! the outcome records why — typically because the protocol under analysis
//! already violates Decision/Agreement/Validity at the horizon, which the
//! [checker](crate::checker) surfaces separately.

use std::collections::HashSet;

use crate::connectivity::{quotient_valence_report_ids, valence_report_ids, ConnectivityReport};
use crate::model::ExecutionTrace;
use crate::space::{StateId, StateSpace};
use crate::sym::Symmetric;
use crate::telemetry::Span;
use crate::valence::{undecided_non_failed, QuotientSolver, Valence};
use crate::{LayeredModel, ValenceSolver};

/// Lemma 4.1, executed: a bivalent state in `S(x)`, if any.
///
/// Picks the first bivalent successor in the model's successor order, which
/// keeps runs deterministic and reproducible. Thin wrapper over
/// [`bivalent_successor_id`].
pub fn bivalent_successor<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    x: &M::State,
) -> Option<M::State> {
    let id = solver.intern(x);
    let y = bivalent_successor_id(solver, id)?;
    Some(solver.space().resolve(y).clone())
}

/// Id-typed twin of [`bivalent_successor`]: walks the interned successor
/// list of `x` (cached in the solver's arena) without cloning states.
pub fn bivalent_successor_id<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    x: StateId,
) -> Option<StateId> {
    let obs = solver.observer();
    solver.successor_ids(x).into_iter().find(|&y| {
        obs.counter("layering.candidates_tested", 1);
        solver.is_bivalent_id(y)
    })
}

/// Why a bivalent run stopped before reaching its target length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stuck {
    /// No initial state is bivalent. By Lemma 3.6, a protocol satisfying
    /// Decision and Validity (with arbitrary-crash display on `Con₀`) must
    /// have one, so this certifies a violation of one of those requirements
    /// within the horizon.
    NoBivalentInitialState,
    /// The chain reached a bivalent state whose layer contains no bivalent
    /// state. If the layer is valence connected, Lemma 4.1 says this is
    /// impossible for a decision-satisfying protocol; the attached report
    /// shows which premise broke.
    NoBivalentSuccessor {
        /// Depth at which the chain stalled.
        depth: usize,
        /// Valence connectivity of the stalling layer.
        layer_report: ConnectivityReport,
    },
}

/// Result of the Theorem 4.2 construction.
#[derive(Clone, Debug)]
pub struct BivalentRunOutcome<S> {
    /// The constructed chain of bivalent states (always starts at an initial
    /// state when one bivalent initial state exists).
    pub chain: Option<ExecutionTrace<S>>,
    /// Why construction stopped early, if it did.
    pub stuck: Option<Stuck>,
    /// For each chain state, the number of non-failed undecided processes —
    /// the quantity Lemma 3.1 lower-bounds by `n − t`.
    pub undecided_per_state: Vec<usize>,
}

impl<S> BivalentRunOutcome<S> {
    /// Whether a chain of the requested length was built.
    #[must_use]
    pub fn reached_target(&self) -> bool {
        self.stuck.is_none() && self.chain.is_some()
    }
}

/// Id-typed result of the Theorem 4.2 construction: the chain is a path of
/// [`StateId`]s into the solver's arena, materialized into full states only
/// at the API boundary (see [`InternedRun::materialize`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InternedRun {
    /// The constructed chain of bivalent state ids (empty when no bivalent
    /// initial state exists).
    pub chain: Vec<StateId>,
    /// Why construction stopped early, if it did.
    pub stuck: Option<Stuck>,
    /// Non-failed undecided process counts along the chain (Lemma 3.1).
    pub undecided_per_state: Vec<usize>,
}

impl InternedRun {
    /// Whether a chain of the requested length was built.
    #[must_use]
    pub fn reached_target(&self) -> bool {
        self.stuck.is_none() && !self.chain.is_empty()
    }

    /// Clones the chain's states back out of `space` into the state-typed
    /// outcome the public wrappers return.
    #[must_use]
    pub fn materialize<M: LayeredModel>(
        &self,
        space: &StateSpace<M>,
    ) -> BivalentRunOutcome<M::State> {
        BivalentRunOutcome {
            chain: if self.chain.is_empty() {
                None
            } else {
                Some(ExecutionTrace::new(space.materialize(&self.chain)))
            },
            stuck: self.stuck.clone(),
            undecided_per_state: self.undecided_per_state.clone(),
        }
    }
}

/// The Theorem 4.2 loop: find a bivalent initial state and extend it through
/// `steps` layers, keeping every state bivalent.
///
/// The solver's horizon bounds the lookahead used for valence; callers
/// normally set it to the protocol's claimed decision deadline and request
/// `steps <= horizon`.
pub fn build_bivalent_run<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    steps: usize,
) -> BivalentRunOutcome<M::State> {
    let run = build_bivalent_run_interned(solver, steps);
    run.materialize(solver.space())
}

/// Id-typed twin of [`build_bivalent_run`]: the whole Theorem 4.2 loop runs
/// on dense ids; only the returned [`InternedRun`] needs materializing.
pub fn build_bivalent_run_interned<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    steps: usize,
) -> InternedRun {
    let Some(x0) = solver.bivalent_initial_id() else {
        let obs = solver.observer();
        obs.counter("layering.stuck", 1);
        obs.event("layering.stuck", "no_bivalent_initial_state");
        return InternedRun {
            chain: Vec::new(),
            stuck: Some(Stuck::NoBivalentInitialState),
            undecided_per_state: Vec::new(),
        };
    };
    extend_bivalent_run_interned(solver, x0, steps)
}

/// The Theorem 4.2 loop from a given bivalent starting state.
///
/// # Panics
///
/// Panics if `start` is not bivalent under the solver's horizon.
pub fn extend_bivalent_run<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    start: M::State,
    steps: usize,
) -> BivalentRunOutcome<M::State> {
    let id = solver.intern(&start);
    let run = extend_bivalent_run_interned(solver, id, steps);
    run.materialize(solver.space())
}

/// Id-typed twin of [`extend_bivalent_run`].
///
/// # Panics
///
/// Panics if `start` is not bivalent under the solver's horizon.
pub fn extend_bivalent_run_interned<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    start: StateId,
    steps: usize,
) -> InternedRun {
    assert!(
        solver.is_bivalent_id(start),
        "extend_bivalent_run requires a bivalent starting state"
    );
    let model = solver.model();
    let obs = solver.observer();
    let _span = Span::enter(obs, "layering.bivalent_run");
    let mut chain = vec![start];
    let mut undecided = vec![undecided_non_failed(model, &solver.space().resolve(start)).len()];
    for _ in 0..steps {
        let x = *chain.last().expect("chain is non-empty");
        match bivalent_successor_id(solver, x) {
            Some(y) => {
                obs.counter("layering.extensions", 1);
                undecided.push(undecided_non_failed(model, &solver.space().resolve(y)).len());
                chain.push(y);
                obs.gauge("layering.run_length", (chain.len() - 1) as u64);
            }
            None => {
                let layer = solver.successor_ids(x);
                let report = valence_report_ids(solver, &layer);
                let depth = model.depth(&solver.space().resolve(x));
                obs.counter("layering.stuck", 1);
                obs.event(
                    "layering.stuck",
                    &format!(
                        "no_bivalent_successor depth={depth} layer_states={} components={}",
                        report.states, report.components
                    ),
                );
                return InternedRun {
                    chain,
                    stuck: Some(Stuck::NoBivalentSuccessor {
                        depth,
                        layer_report: report,
                    }),
                    undecided_per_state: undecided,
                };
            }
        }
    }
    InternedRun {
        chain,
        stuck: None,
        undecided_per_state: undecided,
    }
}

/// Result of sweeping layer valence connectivity over the reachable graph —
/// premise (iii) of Theorem 4.2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerScan<S> {
    /// Number of states whose layer was checked.
    pub layers_checked: usize,
    /// Total states enumerated.
    pub states_seen: usize,
    /// First state whose layer `S(x)` is not valence connected, with its
    /// report, if any.
    pub violation: Option<(S, ConnectivityReport)>,
}

impl<S> LayerScan<S> {
    /// Whether every checked layer was valence connected.
    #[must_use]
    pub fn all_connected(&self) -> bool {
        self.violation.is_none()
    }
}

/// Checks that `S(x)` is valence connected for every state `x` reachable
/// within `depth_limit` layers of the initial states.
///
/// `only_bivalent` restricts the sweep to bivalent states — the only ones
/// Lemma 4.1 is ever applied to — which is both cheaper and avoids vacuous
/// failures on univalent states near the horizon (whose layers can contain
/// `NoValence` successors purely due to lookahead truncation).
pub fn scan_layer_valence_connectivity<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    depth_limit: usize,
    only_bivalent: bool,
) -> LayerScan<M::State> {
    scan_ids(solver, depth_limit, only_bivalent)
}

/// [`scan_layer_valence_connectivity`] with the successor computation fanned
/// out across up to `threads` scoped workers.
///
/// The reachable region is first expanded in parallel into the solver's
/// arena ([`StateSpace::expand_layers_parallel`], which is bit-identical to
/// sequential expansion); the scan itself then runs over fully cached
/// adjacency. The returned [`LayerScan`] — layers checked, states seen, and
/// any violation — is therefore identical to the sequential path's.
pub fn scan_layer_valence_connectivity_parallel<M>(
    solver: &mut ValenceSolver<'_, M>,
    depth_limit: usize,
    only_bivalent: bool,
    threads: usize,
) -> LayerScan<M::State>
where
    M: LayeredModel + Sync,
    M::State: Send + Sync,
{
    let model = solver.model();
    let obs = solver.observer();
    let roots = model.initial_states();
    // Valence lookahead reaches the horizon; the scan itself needs layers of
    // states down to `depth_limit`. Expanding to the max covers both, so the
    // scan below finds every successor list already cached.
    let expand_to = solver.horizon().max(depth_limit + 1);
    solver
        .space_mut()
        .expand_layers_parallel(model, &roots, expand_to, threads, obs);
    scan_ids(solver, depth_limit, only_bivalent)
}

fn scan_ids<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    depth_limit: usize,
    only_bivalent: bool,
) -> LayerScan<M::State> {
    let model = solver.model();
    let obs = solver.observer();
    let _span = Span::enter(obs, "layering.layer_scan");
    let mut frontier: Vec<StateId> = Vec::new();
    let mut roots_seen: HashSet<StateId> = HashSet::new();
    for x in model.initial_states() {
        let id = solver.intern(&x);
        if roots_seen.insert(id) {
            frontier.push(id);
        }
    }
    let mut states_seen = frontier.len();
    let mut layers_checked = 0;
    obs.gauge("engine.frontier_width", frontier.len() as u64);
    for _ in 0..=depth_limit {
        let mut next: Vec<StateId> = Vec::new();
        let mut seen: HashSet<StateId> = HashSet::new();
        for &id in &frontier {
            obs.counter("engine.states_visited", 1);
            let _check_span =
                Span::enter_with(obs, "layering.check_layer", &[("state", id.index() as u64)]);
            if only_bivalent {
                let bivalent = {
                    let _classify_span = Span::enter(obs, "valence.classify");
                    solver.is_bivalent_id(id)
                };
                if !bivalent {
                    continue;
                }
            }
            let layer = solver.successor_ids(id);
            let report = valence_report_ids(solver, &layer);
            layers_checked += 1;
            obs.counter("layering.layers_scanned", 1);
            if !report.connected {
                obs.event(
                    "layering.scan_violation",
                    &format!(
                        "disconnected layer: {} states in {} components",
                        report.states, report.components
                    ),
                );
                return LayerScan {
                    layers_checked,
                    states_seen,
                    violation: Some((solver.space().resolve(id), report)),
                };
            }
            if model.depth(&solver.space().resolve(id)) < depth_limit {
                for y in layer {
                    if seen.insert(y) {
                        next.push(y);
                    } else {
                        obs.counter("engine.dedup_hits", 1);
                    }
                }
            }
        }
        frontier = next;
        obs.gauge("engine.frontier_width", frontier.len() as u64);
        states_seen += frontier.len();
        if frontier.is_empty() {
            break;
        }
    }
    LayerScan {
        layers_checked,
        states_seen,
        violation: None,
    }
}

/// Quotient twin of [`scan_layer_valence_connectivity`]: sweeps one orbit
/// representative per reachable orbit and checks valence connectivity of
/// each representative's *orbit-collapsed* layer.
///
/// Soundness: over an equivariant layering the quotient BFS visits exactly
/// the orbits of the full BFS's states (bivalence is orbit-invariant, so
/// the `only_bivalent` filter selects the same orbits), and a collapsed
/// layer's `connected` verdict equals the full layer's (see
/// [`quotient_valence_report_ids`]). `layers_checked` / `states_seen`
/// count *orbits* and are therefore smaller than the full scan's — that
/// reduction is the point.
pub fn scan_layer_valence_connectivity_quotient<M: Symmetric>(
    solver: &mut QuotientSolver<'_, M>,
    depth_limit: usize,
    only_bivalent: bool,
) -> LayerScan<M::State> {
    scan_quotient_ids(solver, depth_limit, only_bivalent)
}

/// [`scan_layer_valence_connectivity_quotient`] with the successor
/// computation *and canonicalization* fanned out across up to `threads`
/// scoped workers, by pre-expanding the quotient graph with
/// [`QuotientSpace::expand_layers_parallel`](crate::space::QuotientSpace::expand_layers_parallel)
/// (bit-identical to sequential expansion) before the scan.
pub fn scan_layer_valence_connectivity_quotient_parallel<M>(
    solver: &mut QuotientSolver<'_, M>,
    depth_limit: usize,
    only_bivalent: bool,
    threads: usize,
) -> LayerScan<M::State>
where
    M: Symmetric + Sync,
    M::State: Send + Sync,
{
    let model = solver.model();
    let obs = solver.observer();
    let roots = model.initial_states();
    let expand_to = solver.horizon().max(depth_limit + 1);
    solver
        .space_mut()
        .expand_layers_parallel(model, &roots, expand_to, threads, obs);
    scan_quotient_ids(solver, depth_limit, only_bivalent)
}

fn scan_quotient_ids<M: Symmetric>(
    solver: &mut QuotientSolver<'_, M>,
    depth_limit: usize,
    only_bivalent: bool,
) -> LayerScan<M::State> {
    let model = solver.model();
    let obs = solver.observer();
    let _span = Span::enter(obs, "layering.layer_scan");
    let mut frontier: Vec<StateId> = Vec::new();
    let mut roots_seen: HashSet<StateId> = HashSet::new();
    for x in model.initial_states() {
        let (id, _) = solver.intern(&x);
        if roots_seen.insert(id) {
            frontier.push(id);
        }
    }
    let mut states_seen = frontier.len();
    let mut layers_checked = 0;
    obs.gauge("engine.frontier_width", frontier.len() as u64);
    for _ in 0..=depth_limit {
        let mut next: Vec<StateId> = Vec::new();
        let mut seen: HashSet<StateId> = HashSet::new();
        for &id in &frontier {
            obs.counter("engine.states_visited", 1);
            let _check_span =
                Span::enter_with(obs, "layering.check_layer", &[("state", id.index() as u64)]);
            if only_bivalent {
                let bivalent = {
                    let _classify_span = Span::enter(obs, "valence.classify");
                    solver.is_bivalent_id(id)
                };
                if !bivalent {
                    continue;
                }
            }
            let layer = solver.successor_ids(id);
            let report = quotient_valence_report_ids(solver, &layer);
            layers_checked += 1;
            obs.counter("layering.layers_scanned", 1);
            if !report.connected {
                obs.event(
                    "layering.scan_violation",
                    &format!(
                        "disconnected layer: {} orbits in {} components",
                        report.states, report.components
                    ),
                );
                return LayerScan {
                    layers_checked,
                    states_seen,
                    violation: Some((solver.space().resolve(id), report)),
                };
            }
            if model.depth(&solver.space().resolve(id)) < depth_limit {
                for y in layer {
                    if seen.insert(y) {
                        next.push(y);
                    } else {
                        obs.counter("engine.dedup_hits", 1);
                    }
                }
            }
        }
        frontier = next;
        obs.gauge("engine.frontier_width", frontier.len() as u64);
        states_seen += frontier.len();
        if frontier.is_empty() {
            break;
        }
    }
    LayerScan {
        layers_checked,
        states_seen,
        violation: None,
    }
}

/// Quotient twin of [`bivalent_successor_id`]: the first bivalent orbit in
/// the collapsed layer of `x`'s representative, in edge order.
pub fn bivalent_successor_quotient_id<M: Symmetric>(
    solver: &mut QuotientSolver<'_, M>,
    x: StateId,
) -> Option<StateId> {
    let obs = solver.observer();
    solver.successor_ids(x).into_iter().find(|&y| {
        obs.counter("layering.candidates_tested", 1);
        solver.is_bivalent_id(y)
    })
}

/// The Theorem 4.2 loop over the quotient graph: finds a bivalent initial
/// orbit and extends it through `steps` collapsed layers, keeping every
/// orbit bivalent. The returned [`InternedRun`]'s chain holds ids into the
/// solver's [`QuotientSpace`](crate::space::QuotientSpace); de-quotient it
/// into a genuine execution with [`dequotient_run`].
///
/// The recorded undecided counts are taken on the representatives, which
/// is sound: the number of undecided non-failed processes is invariant
/// under renaming (`decision` and `failed_at` transport along the
/// permutation), so every member of the orbit has the same count.
pub fn build_bivalent_run_quotient<M: Symmetric>(
    solver: &mut QuotientSolver<'_, M>,
    steps: usize,
) -> InternedRun {
    let obs = solver.observer();
    let _span = Span::enter(obs, "layering.bivalent_run");
    let Some(x0) = solver.bivalent_initial_id() else {
        obs.counter("layering.stuck", 1);
        obs.event("layering.stuck", "no_bivalent_initial_state");
        return InternedRun {
            chain: Vec::new(),
            stuck: Some(Stuck::NoBivalentInitialState),
            undecided_per_state: Vec::new(),
        };
    };
    let model = solver.model();
    let mut chain = vec![x0];
    let mut undecided = vec![undecided_non_failed(model, &solver.space().resolve(x0)).len()];
    for _ in 0..steps {
        let x = *chain.last().expect("chain is non-empty");
        match bivalent_successor_quotient_id(solver, x) {
            Some(y) => {
                obs.counter("layering.extensions", 1);
                undecided.push(undecided_non_failed(model, &solver.space().resolve(y)).len());
                chain.push(y);
                obs.gauge("layering.run_length", (chain.len() - 1) as u64);
            }
            None => {
                let layer = solver.successor_ids(x);
                let report = quotient_valence_report_ids(solver, &layer);
                let depth = model.depth(&solver.space().resolve(x));
                obs.counter("layering.stuck", 1);
                obs.event(
                    "layering.stuck",
                    &format!(
                        "no_bivalent_successor depth={depth} layer_orbits={} components={}",
                        report.states, report.components
                    ),
                );
                return InternedRun {
                    chain,
                    stuck: Some(Stuck::NoBivalentSuccessor {
                        depth,
                        layer_report: report,
                    }),
                    undecided_per_state: undecided,
                };
            }
        }
    }
    InternedRun {
        chain,
        stuck: None,
        undecided_per_state: undecided,
    }
}

/// Materializes a quotient-built [`InternedRun`] into a state-typed outcome
/// whose chain is a *genuine execution* of the model, reconstructed from
/// the per-edge witnessing permutations (see
/// [`QuotientSpace::dequotient_path`](crate::space::QuotientSpace::dequotient_path)).
///
/// # Panics
///
/// Panics if the run's chain ids are not connected by cached quotient edges
/// (they always are for runs built by [`build_bivalent_run_quotient`] on
/// the same solver).
pub fn dequotient_run<M: Symmetric>(
    solver: &QuotientSolver<'_, M>,
    run: &InternedRun,
) -> BivalentRunOutcome<M::State> {
    BivalentRunOutcome {
        chain: if run.chain.is_empty() {
            None
        } else {
            let states = solver
                .space()
                .dequotient_path(solver.model(), &run.chain)
                .expect("quotient run chains follow cached edges");
            Some(ExecutionTrace::new(states))
        },
        stuck: run.stuck.clone(),
        undecided_per_state: run.undecided_per_state.clone(),
    }
}

/// Lemma 3.1, checked exhaustively: every bivalent state reachable within
/// `depth_limit` layers has at least `n − t` non-failed undecided processes.
///
/// Returns the first violating state, if any.
pub fn check_lemma_3_1<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    depth_limit: usize,
) -> Option<M::State> {
    let model = solver.model();
    let t = model.max_failures();
    let n = model.num_processes();
    lemma_sweep(solver, depth_limit, n - t, |_, _| {})
}

/// Lemma 3.2, checked exhaustively for systems displaying *no finite
/// failure*: no process has decided at any bivalent state reachable within
/// `depth_limit` layers. Returns the first violating state, if any.
///
/// # Panics
///
/// Panics if the model records a failed process anywhere in the scanned
/// region (such a model does not display "no finite failure", and the lemma
/// does not apply).
pub fn check_lemma_3_2<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    depth_limit: usize,
) -> Option<M::State> {
    let model = solver.model();
    let n = model.num_processes();
    lemma_sweep(solver, depth_limit, n, |m, x| {
        assert!(
            (0..n).all(|i| !m.failed_at(x, crate::Pid::new(i))),
            "Lemma 3.2 applies only to systems displaying no finite failure"
        );
    })
}

/// Shared interned BFS behind the Lemma 3.1/3.2 checkers: returns the first
/// bivalent state within `depth_limit` layers whose non-failed undecided
/// count drops below `min_undecided`, running `precheck` on every visited
/// state first.
fn lemma_sweep<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    depth_limit: usize,
    min_undecided: usize,
    precheck: impl Fn(&M, &M::State),
) -> Option<M::State> {
    let model = solver.model();
    let obs = solver.observer();
    let mut frontier: Vec<StateId> = Vec::new();
    let mut roots_seen: HashSet<StateId> = HashSet::new();
    for x in model.initial_states() {
        let id = solver.intern(&x);
        if roots_seen.insert(id) {
            frontier.push(id);
        }
    }
    for _ in 0..=depth_limit {
        let mut next: Vec<StateId> = Vec::new();
        let mut seen: HashSet<StateId> = HashSet::new();
        for &id in &frontier {
            obs.counter("engine.states_visited", 1);
            precheck(model, &solver.space().resolve(id));
            if solver.valence_id(id) == Valence::Bivalent
                && undecided_non_failed(model, &solver.space().resolve(id)).len() < min_undecided
            {
                return Some(solver.space().resolve(id));
            }
            if model.depth(&solver.space().resolve(id)) < depth_limit {
                for y in solver.successor_ids(id) {
                    if seen.insert(y) {
                        next.push(y);
                    } else {
                        obs.counter("engine.dedup_hits", 1);
                    }
                }
            }
        }
        frontier = next;
        obs.gauge("engine.frontier_width", frontier.len() as u64);
        if frontier.is_empty() {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{flp_diamond, ScriptedModelBuilder};
    use crate::Value;

    /// A model where the root stays bivalent for 3 layers:
    /// a chain of bivalent states each with a decided 0-branch and 1-branch.
    fn bivalent_spine(depth: usize) -> crate::testkit::ScriptedModel {
        let mut b = ScriptedModelBuilder::new(2, 1).initial(&[Value::ZERO, Value::ONE], 0);
        // ids: spine state at depth d = d; leaf0 at 100+d; leaf1 at 200+d.
        for d in 0..depth {
            let (s, s2) = (d as u32, (d + 1) as u32);
            let (l0, l1) = (100 + d as u32, 200 + d as u32);
            b = b
                .edge(s, s2)
                .edge(s, l0)
                .edge(s, l1)
                .depth(s, d)
                .depth(l0, d + 1)
                .depth(l1, d + 1)
                .decision(l0, 0, Value::ZERO)
                .decision(l1, 1, Value::ONE)
                // spine, leaf0, leaf1 pairwise linked for valence via spine
                .agree(s2, l0, 1)
                .agree(s2, l1, 0);
        }
        // terminal spine state decides both ways one last time
        let s = depth as u32;
        b = b
            .depth(s, depth)
            .edge(s, 100 + depth as u32)
            .edge(s, 200 + depth as u32)
            .depth(100 + depth as u32, depth + 1)
            .depth(200 + depth as u32, depth + 1)
            .decision(100 + depth as u32, 0, Value::ZERO)
            .decision(200 + depth as u32, 1, Value::ONE);
        b.build()
    }

    #[test]
    fn bivalent_successor_finds_spine() {
        let m = bivalent_spine(3);
        let mut solver = ValenceSolver::new(&m, 4);
        let y = bivalent_successor(&mut solver, &0).expect("spine continues");
        assert_eq!(y, 1);
    }

    #[test]
    fn build_bivalent_run_walks_the_spine() {
        let m = bivalent_spine(3);
        let mut solver = ValenceSolver::new(&m, 4);
        let out = build_bivalent_run(&mut solver, 3);
        assert!(out.reached_target());
        let chain = out.chain.expect("chain built");
        assert_eq!(chain.states(), &[0, 1, 2, 3]);
        assert!(chain.verify(&m).is_ok());
        // Lemma 3.2 flavor: nobody decided along the chain (n = 2 undecided).
        assert!(out.undecided_per_state.iter().all(|&u| u == 2));
    }

    #[test]
    fn run_reports_stuck_when_spine_ends() {
        let m = bivalent_spine(2);
        let mut solver = ValenceSolver::new(&m, 3);
        let out = build_bivalent_run(&mut solver, 10);
        assert!(!out.reached_target());
        match out.stuck {
            Some(Stuck::NoBivalentSuccessor { depth, .. }) => assert_eq!(depth, 2),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn no_bivalent_initial_state_is_reported() {
        // Single initial state that decides 0 immediately: univalent.
        let m = ScriptedModelBuilder::new(2, 1)
            .initial(&[Value::ZERO, Value::ZERO], 0)
            .decision(0, 0, Value::ZERO)
            .depth(0, 0)
            .build();
        let mut solver = ValenceSolver::new(&m, 0);
        let out = build_bivalent_run(&mut solver, 1);
        assert_eq!(out.stuck, Some(Stuck::NoBivalentInitialState));
    }

    #[test]
    fn layer_scan_flags_disconnected_layer() {
        // The diamond's root layer {1, 2} is NOT valence connected (0- and
        // 1-univalent with no bridge), so the scan over bivalent states
        // reports it.
        let m = flp_diamond();
        let mut solver = ValenceSolver::new(&m, 2);
        let scan = scan_layer_valence_connectivity(&mut solver, 1, true);
        assert!(!scan.all_connected());
        let (state, report) = scan.violation.expect("diamond layer disconnects");
        assert_eq!(state, 0);
        assert_eq!(report.components, 2);
    }

    #[test]
    fn layer_scan_passes_on_spine() {
        let m = bivalent_spine(2);
        let mut solver = ValenceSolver::new(&m, 3);
        let scan = scan_layer_valence_connectivity(&mut solver, 1, true);
        assert!(scan.all_connected(), "violation: {:?}", scan.violation);
        assert!(scan.layers_checked >= 2);
    }

    #[test]
    fn lemma_3_1_holds_on_spine() {
        let m = bivalent_spine(3);
        let mut solver = ValenceSolver::new(&m, 4);
        assert_eq!(check_lemma_3_1(&mut solver, 3), None);
        assert_eq!(check_lemma_3_2(&mut solver, 3), None);
    }

    #[test]
    fn lemma_3_1_detects_violation_in_corrupt_model() {
        // A bivalent state where a process has already decided while both
        // completions remain reachable — violates agreement, and Lemma 3.1's
        // conclusion fails (n - t = 1 undecided required... craft 0 undecided).
        let m = ScriptedModelBuilder::new(2, 1)
            .initial(&[Value::ZERO, Value::ONE], 0)
            .decision(0, 0, Value::ZERO)
            .decision(0, 1, Value::ONE) // both decided at a bivalent state
            .depth(0, 0)
            .build();
        let mut solver = ValenceSolver::new(&m, 0);
        assert_eq!(check_lemma_3_1(&mut solver, 0), Some(0));
    }

    #[test]
    #[should_panic(expected = "no finite failure")]
    fn lemma_3_2_rejects_models_with_finite_failures() {
        let m = ScriptedModelBuilder::new(2, 1)
            .initial(&[Value::ZERO, Value::ONE], 0)
            .failed(0, 1)
            .depth(0, 0)
            .build();
        let mut solver = ValenceSolver::new(&m, 0);
        let _ = check_lemma_3_2(&mut solver, 0);
    }
}
