//! Symmetry reduction: process-renaming orbits of global states.
//!
//! Every model in the paper is *anonymous* up to process names: permuting
//! the process identifiers of a global state (inputs, local states,
//! decisions, failure flags, register/mailbox slots — everything indexed by
//! a [`Pid`]) yields another legal global state of the same model, and for
//! the *symmetric* layering variants the layers commute with the renaming:
//!
//! ```text
//!     S(π · x) = π · S(x)        (equivariance)
//! ```
//!
//! Valence is invariant under renaming — a permutation moves *processes*,
//! never decision *values*, so a nonfaulty 0-decision reachable from `x` is
//! a nonfaulty 0-decision reachable from `π · x` — and therefore every
//! valence-connectivity lemma only needs to be checked on one state per
//! orbit. [`QuotientSpace`](crate::space::QuotientSpace) exploits this by
//! interning only canonical orbit representatives; this module provides the
//! group machinery it is built on:
//!
//! * [`PidPerm`] — a permutation of `0..n` process identifiers with the
//!   usual group operations,
//! * [`Symmetric`] — the trait a model implements to expose its renaming
//!   action and a canonical-representative choice,
//! * [`canonicalize_by_min`] — the default representative: the
//!   lexicographic minimum of the orbit under the state's `Ord`.
//!
//! # Equivariance is a property of the layering, not the model
//!
//! The *prefix-based* layerings (`S₁`, `S^rw`, `S^t`) are **not**
//! equivariant: they privilege the natural order of process indices (a
//! prefix `[k]` of receivers/readers), so the permuted image of a layer
//! action need not be a layer action. Each model crate therefore carries a
//! *full* (subset-based) layering variant — genuine layers of the same
//! underlying model that merely drop the prefix restriction — and
//! [`Symmetric::symmetric_layering`] reports whether the model's current
//! configuration is equivariant. The quotient constructions refuse to run
//! over a non-equivariant layering; they would silently prune reachable
//! orbits otherwise.

use std::collections::HashSet;

use crate::space::pack::StatePacker;
use crate::{LayeredModel, Pid};

/// A permutation `π` of the process identifiers `0..n`, stored in map form:
/// `perm.apply(Pid::new(i)) == Pid::new(map[i])`.
///
/// Acting on a state, `π` *relocates roles*: the process that played index
/// `i` in `x` plays index `π(i)` in `π · x` (so for any per-process vector
/// `v` of the state, `(π · v)[π(i)] = v[i]`).
///
/// # Examples
///
/// ```
/// use layered_core::sym::PidPerm;
/// use layered_core::Pid;
///
/// let swap = PidPerm::from_map(vec![1, 0, 2]);
/// assert_eq!(swap.apply(Pid::new(0)), Pid::new(1));
/// assert_eq!(swap.inverse(), swap);
/// assert!(swap.compose(&swap).is_identity());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PidPerm {
    map: Vec<u8>,
}

impl PidPerm {
    /// The identity permutation on `n` processes.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        PidPerm {
            map: (0..n).map(|i| i as u8).collect(),
        }
    }

    /// Builds a permutation from its map form (`map[i]` = image of `i`).
    ///
    /// # Panics
    ///
    /// Panics if `map` is not a permutation of `0..map.len()`.
    #[must_use]
    pub fn from_map(map: Vec<u8>) -> Self {
        let n = map.len();
        let mut seen = vec![false; n];
        for &image in &map {
            let image = image as usize;
            assert!(image < n && !seen[image], "not a permutation of 0..{n}");
            seen[image] = true;
        }
        PidPerm { map }
    }

    /// Number of processes the permutation acts on.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.map.len()
    }

    /// Whether this is the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &j)| i as u8 == j)
    }

    /// The image `π(i)` of a process.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside `0..degree()`.
    #[must_use]
    pub fn apply(&self, i: Pid) -> Pid {
        Pid::new(self.map[i.index()] as usize)
    }

    /// The inverse permutation `π⁻¹`.
    #[must_use]
    pub fn inverse(&self) -> PidPerm {
        let mut inv = vec![0u8; self.map.len()];
        for (i, &j) in self.map.iter().enumerate() {
            inv[j as usize] = i as u8;
        }
        PidPerm { map: inv }
    }

    /// Composition `π ∘ τ`: first `τ`, then `self`
    /// (`(π ∘ τ)(i) = π(τ(i))`).
    ///
    /// # Panics
    ///
    /// Panics if the degrees differ.
    #[must_use]
    pub fn compose(&self, tau: &PidPerm) -> PidPerm {
        assert_eq!(self.degree(), tau.degree(), "degree mismatch");
        PidPerm {
            map: tau.map.iter().map(|&i| self.map[i as usize]).collect(),
        }
    }

    /// Permutes a per-process vector: `out[π(i)] = v[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != degree()`.
    #[must_use]
    pub fn permute_vec<T: Clone>(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.degree(), "vector/permutation length mismatch");
        let mut out: Vec<Option<T>> = vec![None; v.len()];
        for (i, item) in v.iter().enumerate() {
            out[self.map[i] as usize] = Some(item.clone());
        }
        out.into_iter()
            .map(|slot| slot.expect("permutation is total"))
            .collect()
    }

    /// All `n!` permutations of `0..n`, in lexicographic order of their map
    /// form (so the identity comes first). Intended for the small `n` of
    /// exhaustive scans; panics if `n > 8` to catch accidental blowups.
    #[must_use]
    pub fn all(n: usize) -> Vec<PidPerm> {
        assert!(n <= 8, "refusing to enumerate {n}! permutations");
        let mut out = Vec::new();
        let mut current: Vec<u8> = (0..n as u8).collect();
        let mut used = vec![false; n];
        fn rec(
            n: usize,
            depth: usize,
            current: &mut Vec<u8>,
            used: &mut [bool],
            out: &mut Vec<PidPerm>,
        ) {
            if depth == n {
                out.push(PidPerm {
                    map: current.clone(),
                });
                return;
            }
            for j in 0..n {
                if !used[j] {
                    used[j] = true;
                    current[depth] = j as u8;
                    rec(n, depth + 1, current, used, out);
                    used[j] = false;
                }
            }
        }
        rec(n, 0, &mut current, &mut used, &mut out);
        out
    }
}

/// A model whose states carry a process-renaming action.
///
/// Implementors must satisfy, for all permutations `π`, `τ` and states `x`:
///
/// * **action laws** — `permute_state(x, id) == x` and
///   `permute_state(permute_state(x, τ), π) == permute_state(x, π ∘ τ)`;
/// * **observable equivariance** — per-process observables transport along
///   the renaming: `decision(π·x, π(i)) == decision(x, i)`,
///   `failed_at(π·x, π(i)) == failed_at(x, i)`, `depth(π·x) == depth(x)`,
///   and `inputs_of(π·x)[π(i)] == inputs_of(x)[i]`;
/// * **layer equivariance**, *when [`symmetric_layering`](Self::symmetric_layering)
///   returns `true`* — `successors(π·x)` equals `successors(x)` mapped
///   through `π`, as sets.
///
/// [`canonicalize`](Self::canonicalize) must pick the same representative
/// for every member of an orbit and return the witnessing permutation `π`
/// with `permute_state(x, π) == representative`. Models with `Ord` states
/// implement it as a one-liner over [`canonicalize_by_min`].
pub trait Symmetric: LayeredModel {
    /// The renaming action `π · x` (role of old index `i` moves to `π(i)`).
    fn permute_state(&self, x: &Self::State, perm: &PidPerm) -> Self::State;

    /// Whether the model's *current layering configuration* is equivariant
    /// (`S(π·x) = π·S(x)`). Quotient constructions require `true`.
    fn symmetric_layering(&self) -> bool;

    /// The canonical representative of `x`'s orbit, plus a permutation `π`
    /// with `permute_state(x, π) == representative`.
    fn canonicalize(&self, x: &Self::State) -> (Self::State, PidPerm);

    /// [`canonicalize`](Self::canonicalize) fused with [`orbit_size`]: the
    /// representative, the witnessing permutation, and the number of
    /// distinct states in `x`'s orbit.
    ///
    /// The default runs the two passes separately; models whose packers
    /// carry a renaming shuffle override it with
    /// [`canonicalize_packed`], which answers all three questions in a
    /// single sweep over `n!` packed words — the hot path of quotient
    /// interning.
    fn canonicalize_with_orbit(&self, x: &Self::State) -> (Self::State, PidPerm, u64)
    where
        Self: Sized,
    {
        let (rep, pi) = self.canonicalize(x);
        let orbit = orbit_size(self, x) as u64;
        (rep, pi, orbit)
    }
}

/// The default canonical representative: the lexicographically least state
/// of the orbit under `Ord`, found by brute-force enumeration of all `n!`
/// renamings (fine for the `n ≤ 5` of exhaustive scans — at most 120
/// candidate states per call).
pub fn canonicalize_by_min<M>(model: &M, x: &M::State) -> (M::State, PidPerm)
where
    M: Symmetric,
    M::State: Ord,
{
    let mut best: Option<(M::State, PidPerm)> = None;
    for perm in PidPerm::all(model.num_processes()) {
        let y = model.permute_state(x, &perm);
        match &best {
            Some((b, _)) if *b <= y => {}
            _ => best = Some((y, perm)),
        }
    }
    best.expect("n >= 1, so the orbit is non-empty")
}

/// The size of `x`'s orbit under renaming: the number of distinct states
/// `π · x` over all `n!` permutations (equal to `n!` divided by the order
/// of `x`'s stabilizer subgroup).
pub fn orbit_size<M: Symmetric>(model: &M, x: &M::State) -> usize {
    let mut seen: HashSet<M::State> = HashSet::new();
    for perm in PidPerm::all(model.num_processes()) {
        seen.insert(model.permute_state(x, &perm));
    }
    seen.len()
}

/// Packed-word canonicalization: representative, witnessing permutation and
/// orbit size in **one** sweep over the precomputed permutation list,
/// touching only `u128` words.
///
/// The representative is the orbit member with the **smallest packed word**
/// — a different (but equally canonical) choice than
/// [`canonicalize_by_min`]'s `Ord`-least state. Consistency only requires
/// that every member of an orbit maps to the same representative, which
/// holds because the packer's renaming shuffle is equivariant and
/// packability is permutation-invariant (see the
/// [`pack`](crate::space::pack) contract): the whole orbit packs, and the
/// minimum over `{permute_word(pack(x), π)}` is orbit-determined.
///
/// Returns `None` — caller falls back to the unpacked path — when the
/// packer has no shuffle or `x` does not pack.
pub fn canonicalize_packed<M: Symmetric>(
    model: &M,
    packer: &StatePacker<M::State>,
    perms: &[PidPerm],
    x: &M::State,
) -> Option<(M::State, PidPerm, u64)> {
    if !packer.permutes() {
        return None;
    }
    let w = packer.pack(x)?;
    debug_assert_eq!(perms.len(), {
        let n = model.num_processes();
        (1..=n).product::<usize>()
    });
    let mut best_word = u128::MAX;
    let mut best_perm: Option<&PidPerm> = None;
    let mut orbit: Vec<u128> = Vec::with_capacity(perms.len());
    for perm in perms {
        let y = packer
            .permute_word(w, perm)
            .expect("permutes() checked above");
        if y < best_word {
            best_word = y;
            best_perm = Some(perm);
        }
        orbit.push(y);
    }
    orbit.sort_unstable();
    orbit.dedup();
    let perm = best_perm.expect("n >= 1, so the orbit is non-empty");
    debug_assert_eq!(
        packer.pack(&model.permute_state(x, perm)),
        Some(best_word),
        "packer shuffle must be equivariant with permute_state"
    );
    Some((packer.unpack(best_word), perm.clone(), orbit.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::CounterModel;
    use crate::Value;

    #[test]
    fn identity_and_inverse_laws() {
        for n in 1..=4 {
            let id = PidPerm::identity(n);
            assert!(id.is_identity());
            for p in PidPerm::all(n) {
                assert_eq!(p.compose(&id), p);
                assert_eq!(id.compose(&p), p);
                assert!(p.compose(&p.inverse()).is_identity());
                assert!(p.inverse().compose(&p).is_identity());
            }
        }
    }

    #[test]
    fn composition_is_associative_and_matches_apply() {
        let perms = PidPerm::all(3);
        for a in &perms {
            for b in &perms {
                for c in &perms {
                    assert_eq!(a.compose(b).compose(c), a.compose(&b.compose(c)));
                }
                // (a ∘ b)(i) = a(b(i))
                for i in 0..3 {
                    let i = Pid::new(i);
                    assert_eq!(a.compose(b).apply(i), a.apply(b.apply(i)));
                }
            }
        }
    }

    #[test]
    fn all_enumerates_n_factorial_distinct_perms() {
        for (n, fact) in [(1, 1), (2, 2), (3, 6), (4, 24)] {
            let perms = PidPerm::all(n);
            assert_eq!(perms.len(), fact);
            let mut distinct: HashSet<Vec<u8>> = HashSet::new();
            for p in &perms {
                assert!(distinct.insert(p.map.clone()));
            }
            assert!(perms[0].is_identity(), "identity first (lexicographic)");
        }
    }

    #[test]
    fn permute_vec_relocates_roles() {
        // π = (0→1, 1→2, 2→0): old index 0's entry lands at index 1.
        let p = PidPerm::from_map(vec![1, 2, 0]);
        assert_eq!(p.permute_vec(&['a', 'b', 'c']), vec!['c', 'a', 'b']);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_map_rejects_non_permutations() {
        let _ = PidPerm::from_map(vec![0, 0, 1]);
    }

    #[test]
    fn counter_model_canonicalization() {
        let m = CounterModel::new(3, 2);
        let x = m.initial_state(&[Value::ONE, Value::ZERO, Value::ONE]);
        let (rep, pi) = m.canonicalize(&x);
        // The witnessing permutation maps x onto the representative.
        assert_eq!(m.permute_state(&x, &pi), rep);
        // The representative is canonical: re-canonicalizing is the identity.
        let (rep2, pi2) = m.canonicalize(&rep);
        assert_eq!(rep2, rep);
        assert!(pi2.is_identity() || m.permute_state(&rep, &pi2) == rep);
        // Orbit of a (1,0,1) input vector: 3 arrangements.
        assert_eq!(orbit_size(&m, &x), 3);
        // Every orbit member canonicalizes to the same representative.
        for perm in PidPerm::all(3) {
            let y = m.permute_state(&x, &perm);
            assert_eq!(m.canonicalize(&y).0, rep);
        }
    }

    #[test]
    fn packed_canonicalization_is_orbit_consistent() {
        let m = CounterModel::new(3, 2);
        let packer = m.state_packer().expect("CounterModel packs");
        let perms = PidPerm::all(3);
        let x = m.initial_state(&[Value::ONE, Value::ZERO, Value::ONE]);
        let (rep, pi, orbit) = canonicalize_packed(&m, &packer, &perms, &x).expect("x packs");
        // The witness transports x onto the representative.
        assert_eq!(m.permute_state(&x, &pi), rep);
        // Orbit size matches the brute-force enumeration.
        assert_eq!(orbit, orbit_size(&m, &x) as u64);
        // Every orbit member maps to the same representative with a valid
        // witness and the same orbit size.
        for p in &perms {
            let y = m.permute_state(&x, p);
            let (rep_y, pi_y, orbit_y) =
                canonicalize_packed(&m, &packer, &perms, &y).expect("orbit members pack");
            assert_eq!(rep_y, rep);
            assert_eq!(m.permute_state(&y, &pi_y), rep);
            assert_eq!(orbit_y, orbit);
        }
    }
}
