//! Similarity and valence connectivity (Section 3, "Connectivity", and the
//! s-diameter machinery of Section 7).
//!
//! Two states are *similar* (`x ∼_s y`) if they agree modulo some process
//! `j` and some process `i ≠ j` is non-failed in both. Two states have a
//! *shared valence* (`x ∼_v y`) if both are `w`-valent for some `w`. A set
//! `X` of states is *similarity connected* (resp. *valence connected*) if
//! the graph `(X, ∼_s)` (resp. `(X, ∼_v)`) is connected.
//!
//! Everything here produces machine-checkable artifacts: connectivity
//! reports carry component structure, and [`SimilarityChain`] is an explicit
//! certificate (a path plus the per-edge witness processes) that can be
//! re-verified from scratch with [`SimilarityChain::verify`].

use std::fmt::Debug;

use crate::graph::Graph;
use crate::space::{StateId, StateSpace};
use crate::sym::Symmetric;
use crate::telemetry::{Observer, NOOP};
use crate::valence::{QuotientSolver, Valences};
use crate::{LayeredModel, Pid, ValenceSolver, Value};

/// Witness that `x ∼_s y`: the process `j` modulo which they agree, and a
/// process `i ≠ j` non-failed in both states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimilarityWitness {
    /// The process modulo which the two states agree.
    pub modulo: Pid,
    /// A process distinct from `modulo` that is non-failed in both states.
    pub non_failed: Pid,
}

/// Checks `x ∼_s y` and returns a witness if they are similar.
///
/// Returns the witness for the smallest qualifying `j`.
pub fn similarity_witness<M: LayeredModel>(
    model: &M,
    x: &M::State,
    y: &M::State,
) -> Option<SimilarityWitness> {
    let n = model.num_processes();
    for j in Pid::all(n) {
        if !model.agree_modulo(x, y, j) {
            continue;
        }
        let i = Pid::all(n).find(|&i| i != j && !model.failed_at(x, i) && !model.failed_at(y, i));
        if let Some(i) = i {
            return Some(SimilarityWitness {
                modulo: j,
                non_failed: i,
            });
        }
    }
    None
}

/// Whether `x ∼_s y`.
pub fn similar<M: LayeredModel>(model: &M, x: &M::State, y: &M::State) -> bool {
    similarity_witness(model, x, y).is_some()
}

/// The graph `(X, ∼_s)` over the given set of states.
pub fn similarity_graph<M: LayeredModel>(model: &M, states: &[M::State]) -> Graph {
    similarity_graph_with(model, states, &NOOP)
}

/// [`similarity_graph`] with telemetry: reports pairs tested
/// (`connectivity.pairs_tested`) and similarity edges found
/// (`connectivity.similarity_edges`) to `obs`.
pub fn similarity_graph_with<M: LayeredModel>(
    model: &M,
    states: &[M::State],
    obs: &dyn Observer,
) -> Graph {
    Graph::from_predicate(states.len(), |a, b| {
        obs.counter("connectivity.pairs_tested", 1);
        let edge = similar(model, &states[a], &states[b]);
        if edge {
            obs.counter("connectivity.similarity_edges", 1);
        }
        edge
    })
}

/// The graph `(X, ∼_v)` over the given set of states, computing valences
/// with `solver` (and reporting `connectivity.pairs_tested` /
/// `connectivity.valence_edges` to the solver's observer). Thin wrapper:
/// interns the states and delegates to [`valence_graph_ids`].
pub fn valence_graph<M: LayeredModel>(
    model: &M,
    solver: &mut ValenceSolver<'_, M>,
    states: &[M::State],
) -> Graph {
    let _ = model;
    let ids: Vec<StateId> = states.iter().map(|x| solver.intern(x)).collect();
    valence_graph_ids(solver, &ids)
}

/// Id-typed twin of [`valence_graph`]: builds `(X, ∼_v)` over interned
/// states, assembling the adjacency directly in CSR form (no per-vertex
/// `Vec` growth or membership scans).
pub fn valence_graph_ids<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    ids: &[StateId],
) -> Graph {
    let vals: Vec<Valences> = ids.iter().map(|&id| solver.valences_id(id)).collect();
    valence_graph_from_flags(&vals, solver.observer())
}

/// Assembles `(X, ∼_v)` in CSR form directly from precomputed valence
/// flags — the shared back half of [`valence_graph_ids`] and its quotient
/// twin.
fn valence_graph_from_flags(vals: &[Valences], obs: &dyn Observer) -> Graph {
    let n = vals.len();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut edges = Vec::new();
    offsets.push(0);
    for a in 0..n {
        for b in 0..n {
            if b == a {
                continue;
            }
            if a < b {
                obs.counter("connectivity.pairs_tested", 1);
            }
            if (vals[a].zero && vals[b].zero) || (vals[a].one && vals[b].one) {
                edges.push(b);
                if a < b {
                    obs.counter("connectivity.valence_edges", 1);
                }
            }
        }
        offsets.push(edges.len());
    }
    Graph::from_csr(n, &offsets, &edges)
}

/// Quotient twin of [`valence_graph_ids`]: the graph `(X, ∼_v)` over orbit
/// representatives in a [`QuotientSolver`]'s arena.
///
/// Because a shared-valence edge depends only on the two states' valence
/// *flags* — and valence is invariant under process renaming — collapsing a
/// layer to orbit representatives preserves which valence classes are
/// present, and therefore preserves the *connected* verdict of the layer's
/// valence graph (vertex and edge counts legitimately shrink).
pub fn quotient_valence_graph_ids<M: Symmetric>(
    solver: &mut QuotientSolver<'_, M>,
    ids: &[StateId],
) -> Graph {
    let vals: Vec<Valences> = ids.iter().map(|&id| solver.valences_id(id)).collect();
    valence_graph_from_flags(&vals, solver.observer())
}

/// Summary of a connectivity analysis of a state set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnectivityReport {
    /// Number of states analyzed.
    pub states: usize,
    /// Whether the graph is connected.
    pub connected: bool,
    /// Number of connected components.
    pub components: usize,
    /// Diameter, when connected and non-empty.
    pub diameter: Option<usize>,
}

impl ConnectivityReport {
    fn from_graph(g: &Graph, obs: &dyn Observer) -> Self {
        ConnectivityReport {
            states: g.len(),
            connected: g.is_connected(),
            components: g.component_count(),
            diameter: g.diameter_with(obs),
        }
    }
}

/// Connectivity of `(X, ∼_s)`.
pub fn similarity_report<M: LayeredModel>(model: &M, states: &[M::State]) -> ConnectivityReport {
    similarity_report_with(model, states, &NOOP)
}

/// [`similarity_report`] with telemetry (edge tests and BFS metrics go to
/// `obs`).
pub fn similarity_report_with<M: LayeredModel>(
    model: &M,
    states: &[M::State],
    obs: &dyn Observer,
) -> ConnectivityReport {
    ConnectivityReport::from_graph(&similarity_graph_with(model, states, obs), obs)
}

/// Connectivity of `(X, ∼_v)`. Telemetry goes to the solver's observer.
pub fn valence_report<M: LayeredModel>(
    model: &M,
    solver: &mut ValenceSolver<'_, M>,
    states: &[M::State],
) -> ConnectivityReport {
    let obs = solver.observer();
    ConnectivityReport::from_graph(&valence_graph(model, solver, states), obs)
}

/// Id-typed twin of [`valence_report`]: connectivity of `(X, ∼_v)` over
/// interned states.
pub fn valence_report_ids<M: LayeredModel>(
    solver: &mut ValenceSolver<'_, M>,
    ids: &[StateId],
) -> ConnectivityReport {
    let g = valence_graph_ids(solver, ids);
    ConnectivityReport::from_graph(&g, solver.observer())
}

/// Quotient twin of [`valence_report_ids`]: connectivity of `(X, ∼_v)` over
/// orbit representatives. The `connected` verdict matches the full layer's
/// (see [`quotient_valence_graph_ids`]); `states`, `components` and
/// `diameter` describe the collapsed graph.
pub fn quotient_valence_report_ids<M: Symmetric>(
    solver: &mut QuotientSolver<'_, M>,
    ids: &[StateId],
) -> ConnectivityReport {
    let g = quotient_valence_graph_ids(solver, ids);
    ConnectivityReport::from_graph(&g, solver.observer())
}

/// Id-typed twin of [`similarity_graph`]: the graph `(X, ∼_s)` over interned
/// states resolved out of `space`.
pub fn similarity_graph_ids<M: LayeredModel>(
    model: &M,
    space: &StateSpace<M>,
    ids: &[StateId],
    obs: &dyn Observer,
) -> Graph {
    // Materialize the layer once: the predicate runs O(L²) times and
    // unpacking inside it would redo the decode per pair.
    let states = space.materialize(ids);
    Graph::from_predicate(ids.len(), |a, b| {
        obs.counter("connectivity.pairs_tested", 1);
        let edge = similar(model, &states[a], &states[b]);
        if edge {
            obs.counter("connectivity.similarity_edges", 1);
        }
        edge
    })
}

/// Id-typed twin of [`similarity_report`].
pub fn similarity_report_ids<M: LayeredModel>(
    model: &M,
    space: &StateSpace<M>,
    ids: &[StateId],
    obs: &dyn Observer,
) -> ConnectivityReport {
    ConnectivityReport::from_graph(&similarity_graph_ids(model, space, ids, obs), obs)
}

/// The *s-diameter* of a state set: the diameter of `(X, ∼_s)`
/// (Section 7), or `None` if the set is not similarity connected.
pub fn s_diameter<M: LayeredModel>(model: &M, states: &[M::State]) -> Option<usize> {
    similarity_graph(model, states).diameter()
}

/// An explicit similarity-connectivity certificate: a path
/// `x = z⁰ ∼_s z¹ ∼_s ⋯ ∼_s z^k = y` together with per-edge witnesses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimilarityChain<S> {
    states: Vec<S>,
    witnesses: Vec<SimilarityWitness>,
}

impl<S: Clone + Eq + Debug> SimilarityChain<S> {
    /// Creates a chain; `witnesses.len()` must equal `states.len() - 1`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths are inconsistent or the chain is empty.
    #[must_use]
    pub fn new(states: Vec<S>, witnesses: Vec<SimilarityWitness>) -> Self {
        assert!(!states.is_empty(), "chain must contain at least one state");
        assert_eq!(
            witnesses.len(),
            states.len() - 1,
            "one witness per chain edge"
        );
        SimilarityChain { states, witnesses }
    }

    /// The chain's states in order.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The per-edge witnesses.
    #[must_use]
    pub fn witnesses(&self) -> &[SimilarityWitness] {
        &self.witnesses
    }

    /// Chain length in edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    /// Whether the chain is a single state.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// Re-verifies every edge of the certificate against the model from
    /// scratch: agreement modulo the witness process, distinctness, and
    /// non-failedness of the witness observer.
    ///
    /// # Errors
    ///
    /// Returns `Err(k)` for the first edge `k` whose witness fails.
    pub fn verify<M>(&self, model: &M) -> Result<(), usize>
    where
        M: LayeredModel<State = S>,
    {
        for (k, (w, pair)) in self
            .witnesses
            .iter()
            .zip(self.states.windows(2))
            .enumerate()
        {
            let (x, y) = (&pair[0], &pair[1]);
            let ok = w.modulo != w.non_failed
                && model.agree_modulo(x, y, w.modulo)
                && !model.failed_at(x, w.non_failed)
                && !model.failed_at(y, w.non_failed);
            if !ok {
                return Err(k);
            }
        }
        Ok(())
    }
}

/// Extracts a similarity chain between `states[from]` and `states[to]`
/// through the set `states`, or `None` if they are in different components
/// of `(X, ∼_s)`.
pub fn similarity_chain_between<M: LayeredModel>(
    model: &M,
    states: &[M::State],
    from: usize,
    to: usize,
) -> Option<SimilarityChain<M::State>> {
    similarity_chain_between_with(model, states, from, to, &NOOP)
}

/// [`similarity_chain_between`] with telemetry: reports edge tests and, on
/// success, the extracted chain length (`connectivity.chain_length` gauge).
pub fn similarity_chain_between_with<M: LayeredModel>(
    model: &M,
    states: &[M::State],
    from: usize,
    to: usize,
    obs: &dyn Observer,
) -> Option<SimilarityChain<M::State>> {
    let g = similarity_graph_with(model, states, obs);
    let path = g.shortest_path(from, to)?;
    obs.gauge("connectivity.chain_length", (path.len() - 1) as u64);
    let chain_states: Vec<M::State> = path.iter().map(|&i| states[i].clone()).collect();
    let witnesses: Vec<SimilarityWitness> = chain_states
        .windows(2)
        .map(|w| similarity_witness(model, &w[0], &w[1]).expect("edge implies witness"))
        .collect();
    Some(SimilarityChain::new(chain_states, witnesses))
}

/// The interpolation chain of input vectors used in the proof of Lemma 3.6.
///
/// Produces `c⁰ = x, c¹, …, cⁿ = y` where `c^l` takes `y`'s values on the
/// first `l` coordinates and `x`'s on the rest, so consecutive vectors
/// differ in exactly one coordinate (`c^{l-1}` and `c^l` differ at process
/// `l`, hence the corresponding initial states agree modulo that process).
/// Degenerate steps (where `x` and `y` already agree at the coordinate) are
/// kept, so the result always has `n + 1` entries.
///
/// # Examples
///
/// ```
/// use layered_core::{input_interpolation, Value};
///
/// let x = vec![Value::ZERO, Value::ZERO];
/// let y = vec![Value::ONE, Value::ONE];
/// let chain = input_interpolation(&x, &y);
/// assert_eq!(chain.len(), 3);
/// assert_eq!(chain[0], x);
/// assert_eq!(chain[2], y);
/// assert_eq!(chain[1], vec![Value::ONE, Value::ZERO]);
/// ```
#[must_use]
pub fn input_interpolation(x: &[Value], y: &[Value]) -> Vec<Vec<Value>> {
    assert_eq!(x.len(), y.len(), "input vectors must have equal length");
    let n = x.len();
    (0..=n)
        .map(|l| {
            let mut c = Vec::with_capacity(n);
            c.extend_from_slice(&y[..l]);
            c.extend_from_slice(&x[l..]);
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{flp_diamond, ScriptedModelBuilder};
    use crate::{binary_input_vectors, LayeredModel};

    #[test]
    fn similarity_witness_found_in_diamond() {
        let m = flp_diamond();
        let w = similarity_witness(&m, &1, &2).expect("1 ~s 2 was scripted");
        assert_eq!(w.modulo, Pid::new(1));
        assert_eq!(w.non_failed, Pid::new(0));
        assert!(similar(&m, &1, &2));
        assert!(!similar(&m, &3, &4));
    }

    #[test]
    fn similarity_requires_nonfailed_observer() {
        // x and y agree modulo p1, but the only other process (p2) is failed
        // in x — so they are NOT similar.
        let m = ScriptedModelBuilder::new(2, 1)
            .initial(&[Value::ZERO, Value::ZERO], 0)
            .initial(&[Value::ONE, Value::ZERO], 1)
            .agree(0, 1, 0)
            .failed(0, 1)
            .build();
        assert!(similarity_witness(&m, &0, &1).is_none());
    }

    #[test]
    fn similarity_graph_and_report() {
        let m = flp_diamond();
        let states = vec![1u32, 2u32];
        let rep = similarity_report(&m, &states);
        assert!(rep.connected);
        assert_eq!(rep.components, 1);
        assert_eq!(rep.diameter, Some(1));
        let disc = similarity_report(&m, &[3u32, 4u32]);
        assert!(!disc.connected);
        assert_eq!(disc.components, 2);
    }

    #[test]
    fn valence_report_on_diamond_layer() {
        let m = flp_diamond();
        let mut solver = ValenceSolver::new(&m, 2);
        let layer = m.successors(&0);
        // states 1 and 2 are univalent with different values and not
        // bivalent: the valence graph over {1,2} is disconnected...
        let rep = valence_report(&m, &mut solver, &layer);
        assert!(!rep.connected);
        // ...but adding the bivalent root connects everything.
        let with_root = vec![0u32, 1, 2];
        let rep2 = valence_report(&m, &mut solver, &with_root);
        assert!(rep2.connected);
    }

    #[test]
    fn chain_extraction_and_verification() {
        let m = flp_diamond();
        let states = vec![1u32, 2u32];
        let chain = similarity_chain_between(&m, &states, 0, 1).expect("connected");
        assert_eq!(chain.len(), 1);
        assert!(chain.verify(&m).is_ok());
    }

    #[test]
    fn chain_verify_detects_forged_certificate() {
        let m = flp_diamond();
        let forged = SimilarityChain::new(
            vec![3u32, 4u32],
            vec![SimilarityWitness {
                modulo: Pid::new(0),
                non_failed: Pid::new(1),
            }],
        );
        assert_eq!(forged.verify(&m), Err(0));
    }

    #[test]
    fn interpolation_endpoints_and_single_coordinate_steps() {
        for n in 1..=4 {
            let vecs = binary_input_vectors(n);
            for x in &vecs {
                for y in &vecs {
                    let chain = input_interpolation(x, y);
                    assert_eq!(chain.len(), n + 1);
                    assert_eq!(&chain[0], x);
                    assert_eq!(&chain[n], y);
                    for l in 1..=n {
                        let diffs = chain[l - 1]
                            .iter()
                            .zip(&chain[l])
                            .filter(|(a, b)| a != b)
                            .count();
                        assert!(diffs <= 1, "consecutive vectors differ in ≤1 coordinate");
                        if diffs == 1 {
                            assert_ne!(chain[l - 1][l - 1], chain[l][l - 1]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn interpolation_length_mismatch_panics() {
        let _ = input_interpolation(&[Value::ZERO], &[Value::ZERO, Value::ONE]);
    }

    #[test]
    fn s_diameter_of_disconnected_set_is_none() {
        let m = flp_diamond();
        assert_eq!(s_diameter(&m, &[3u32, 4u32]), None);
        assert_eq!(s_diameter(&m, &[1u32, 2u32]), Some(1));
    }
}
