//! Valence of states (Section 3 of the paper, "Decisions and valence").
//!
//! With respect to a system `R`, a state `x` is *v-valent* if there is an
//! execution of `R` extending `x` in which at least one nonfaulty process
//! decides `v`; *v-univalent* if it is `v`-valent for exactly one `v`; and
//! *bivalent* if it is both 0-valent and 1-valent.
//!
//! # Finite-horizon semantics
//!
//! The paper quantifies over infinite executions. The executable counterpart
//! quantifies over all `S`-executions within a *horizon* `H` (total layers
//! from the initial states): `x` is `v`-valent iff some state `y` reachable
//! from `x` at depth ≤ `H` has a process `i` with `d_i = v` that is
//! *non-failed at* `y`. By fault independence such an `i` is nonfaulty in
//! some run through `y`, so finite-horizon valence is sound. It coincides
//! with the paper's notion whenever the protocol under analysis decides in
//! all executions by depth `H` — which is precisely the situation in every
//! lower-bound argument (the protocol claims a deadline, and the analysis
//! refutes it). Executions that reach the horizon undecided are themselves
//! *Decision*-violation witnesses and are surfaced by the
//! [checker](crate::checker).

use crate::space::{QuotientSpace, StateId, StateSpace};
use crate::sym::{PidPerm, Symmetric};
use crate::telemetry::{MemoryBreakdown, MemoryFootprint, Observer, NOOP};
use crate::{LayeredModel, Pid, Value};

/// Which of the two binary decision values are reachable-by-a-nonfaulty
/// decision from a state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Valences {
    /// The state is 0-valent.
    pub zero: bool,
    /// The state is 1-valent.
    pub one: bool,
}

impl Valences {
    /// No reachable nonfaulty decision at all.
    pub const NONE: Valences = Valences {
        zero: false,
        one: false,
    };

    /// Union of reachable decisions.
    #[must_use]
    pub fn union(self, other: Valences) -> Valences {
        Valences {
            zero: self.zero || other.zero,
            one: self.one || other.one,
        }
    }

    /// Is the state `v`-valent?
    ///
    /// # Panics
    ///
    /// Panics if `v` is not binary.
    #[must_use]
    pub fn is_valent(self, v: Value) -> bool {
        match v {
            Value::ZERO => self.zero,
            Value::ONE => self.one,
            other => panic!("binary valence queried with non-binary value {other:?}"),
        }
    }

    /// The classification induced by the flags.
    #[must_use]
    pub fn classify(self) -> Valence {
        match (self.zero, self.one) {
            (true, true) => Valence::Bivalent,
            (true, false) => Valence::Univalent(Value::ZERO),
            (false, true) => Valence::Univalent(Value::ONE),
            (false, false) => Valence::NoValence,
        }
    }
}

/// The valence classification of a state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Valence {
    /// `v`-valent and not `v'`-valent for `v' ≠ v`.
    Univalent(Value),
    /// Both 0-valent and 1-valent.
    Bivalent,
    /// No nonfaulty decision is reachable within the horizon. For a protocol
    /// that claims to decide within the horizon this already refutes the
    /// *Decision* requirement.
    NoValence,
}

impl Valence {
    /// Whether the classification is [`Valence::Bivalent`].
    #[must_use]
    pub fn is_bivalent(self) -> bool {
        self == Valence::Bivalent
    }
}

/// Memoizing valence solver over the graded successor graph of a model.
///
/// # Examples
///
/// ```
/// use layered_core::{LayeredModel, Valence, ValenceSolver, Value};
/// use layered_core::testkit::flp_diamond;
///
/// let m = flp_diamond();
/// let mut solver = ValenceSolver::new(&m, 2);
/// let x0 = m.initial_states().remove(0);
/// assert_eq!(solver.valence(&x0), Valence::Bivalent);
/// ```
pub struct ValenceSolver<'a, M: LayeredModel> {
    model: &'a M,
    horizon: usize,
    /// Hash-consing arena shared by every engine built on this solver:
    /// valence memoization, successor caching and the layer scans all key on
    /// the dense [`StateId`]s it hands out.
    space: StateSpace<M>,
    /// Valence memo, indexed by [`StateId`] (grown lazily as the space
    /// grows; `None` = not classified yet).
    memo: Vec<Option<Valences>>,
    obs: &'a dyn Observer,
}

impl<'a, M: LayeredModel> ValenceSolver<'a, M> {
    /// Creates a solver that explores to total depth `horizon` from the
    /// initial states.
    #[must_use]
    pub fn new(model: &'a M, horizon: usize) -> Self {
        ValenceSolver::with_observer(model, horizon, &NOOP)
    }

    /// Like [`ValenceSolver::new`], with telemetry: valence queries, memo
    /// hits, decided-run probes and states classified are reported to `obs`,
    /// and engines built on this solver (the [layering](crate::layering)
    /// engine, [valence connectivity](crate::connectivity)) report through
    /// it as well.
    #[must_use]
    pub fn with_observer(model: &'a M, horizon: usize, obs: &'a dyn Observer) -> Self {
        ValenceSolver {
            model,
            horizon,
            space: StateSpace::for_model(model),
            memo: Vec::new(),
            obs,
        }
    }

    /// Creates a solver over an arena restored from a
    /// [snapshot](crate::space::snapshot) (or otherwise pre-built), so a
    /// resumed scan re-uses every interned state and cached successor row
    /// instead of recomputing them.
    ///
    /// The valence memo starts empty: it is cheap derived data, and its
    /// entries depend on the horizon, which a resumed scan may have changed.
    /// Interning-order ids are a property of the arena, so id-dependent
    /// artifacts (runs, witnesses) remain valid across save/load.
    #[must_use]
    pub fn with_space(
        model: &'a M,
        horizon: usize,
        space: StateSpace<M>,
        obs: &'a dyn Observer,
    ) -> Self {
        ValenceSolver {
            model,
            horizon,
            space,
            memo: Vec::new(),
            obs,
        }
    }

    /// The solver's hash-consing arena. Ids returned by
    /// [`ValenceSolver::intern`] and the id-typed engine entry points are
    /// relative to this space.
    #[must_use]
    pub fn space(&self) -> &StateSpace<M> {
        &self.space
    }

    /// Mutable access to the arena (used by the layering engine to expand
    /// layers — possibly in parallel — before classifying them).
    pub fn space_mut(&mut self) -> &mut StateSpace<M> {
        &mut self.space
    }

    /// Interns `x` into the solver's space.
    pub fn intern(&mut self, x: &M::State) -> StateId {
        self.space.intern_with(x, self.obs)
    }

    /// The successor ids of `id`, computed (and cached) via the arena.
    pub fn successor_ids(&mut self, id: StateId) -> Vec<StateId> {
        let (model, obs) = (self.model, self.obs);
        self.space.successor_ids(model, id, obs)
    }

    /// The observer engines built on this solver report to.
    #[must_use]
    pub fn observer(&self) -> &'a dyn Observer {
        self.obs
    }

    /// The analysis horizon.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The decisions visible *locally* at `x` by processes non-failed at `x`.
    ///
    /// Non-binary decision values are ignored by the binary-valence solver
    /// (Section 7's generalized valence handles them).
    pub fn local_valences(&self, x: &M::State) -> Valences {
        local_valence_flags(self.model, x, self.obs)
    }

    /// The valence flags of the interned state `id` (memoized in a flat
    /// vector indexed by id — no state hashing or cloning on the hot path).
    pub fn valences_id(&mut self, id: StateId) -> Valences {
        self.obs.counter("valence.queries", 1);
        if let Some(Some(v)) = self.memo.get(id.index()) {
            self.obs.counter("valence.memo_hits", 1);
            return *v;
        }
        let (mut flags, depth) = {
            let x = self.space.resolve(id);
            (self.local_valences(&x), self.model.depth(&x))
        };
        if depth < self.horizon && !(flags.zero && flags.one) {
            for y in self.successor_ids(id) {
                flags = flags.union(self.valences_id(y));
                if flags.zero && flags.one {
                    break;
                }
            }
        }
        if self.memo.len() < self.space.len() {
            self.memo.resize(self.space.len(), None);
        }
        self.memo[id.index()] = Some(flags);
        self.obs.counter("valence.states_classified", 1);
        flags
    }

    /// The valence classification of the interned state `id`.
    pub fn valence_id(&mut self, id: StateId) -> Valence {
        self.valences_id(id).classify()
    }

    /// Whether the interned state `id` is bivalent.
    pub fn is_bivalent_id(&mut self, id: StateId) -> bool {
        self.valence_id(id).is_bivalent()
    }

    /// The valence flags of `x` (memoized). Thin wrapper: interns `x` and
    /// delegates to [`ValenceSolver::valences_id`].
    pub fn valences(&mut self, x: &M::State) -> Valences {
        let id = self.intern(x);
        self.valences_id(id)
    }

    /// The valence classification of `x`.
    pub fn valence(&mut self, x: &M::State) -> Valence {
        self.valences(x).classify()
    }

    /// Whether `x` is bivalent.
    pub fn is_bivalent(&mut self, x: &M::State) -> bool {
        self.valence(x).is_bivalent()
    }

    /// Whether `x` and `y` have a *shared valence* (`x ∼_v y`,
    /// Definition 3.1): some `w ∈ {0,1}` such that both are `w`-valent.
    pub fn shared_valence(&mut self, x: &M::State, y: &M::State) -> bool {
        let a = self.valences(x);
        let b = self.valences(y);
        (a.zero && b.zero) || (a.one && b.one)
    }

    /// Number of memoized states (useful to report exploration effort).
    #[must_use]
    pub fn memo_len(&self) -> usize {
        self.memo.iter().filter(|v| v.is_some()).count()
    }

    /// The underlying model.
    #[must_use]
    pub fn model(&self) -> &'a M {
        self.model
    }

    /// Scans the initial states for a bivalent one, in order.
    ///
    /// By Lemma 3.6 a system for consensus that satisfies *decision* and
    /// *validity* and displays an arbitrary crash failure with respect to
    /// `Con₀` must have one; returning `None` therefore certifies that the
    /// protocol violates decision or validity already at the horizon.
    pub fn bivalent_initial_state(&mut self) -> Option<M::State> {
        let id = self.bivalent_initial_id()?;
        Some(self.space.resolve(id).clone())
    }

    /// Id-typed twin of [`ValenceSolver::bivalent_initial_state`]: interns
    /// the initial states in order and returns the first bivalent one.
    pub fn bivalent_initial_id(&mut self) -> Option<StateId> {
        let ids: Vec<StateId> = self
            .model
            .initial_states()
            .iter()
            .map(|x0| self.intern(x0))
            .collect();
        ids.into_iter().find(|&id| self.is_bivalent_id(id))
    }
}

/// Shared locally-visible-decision sweep behind both solvers.
fn local_valence_flags<M: LayeredModel>(model: &M, x: &M::State, obs: &dyn Observer) -> Valences {
    obs.counter("valence.decided_probes", 1);
    let mut flags = Valences::NONE;
    for i in Pid::all(model.num_processes()) {
        if model.failed_at(x, i) {
            continue;
        }
        match model.decision(x, i) {
            Some(Value::ZERO) => flags.zero = true,
            Some(Value::ONE) => flags.one = true,
            _ => {}
        }
    }
    flags
}

/// Memoizing valence solver over the *quotient* successor graph of a
/// [`Symmetric`] model: the twin of [`ValenceSolver`] with the memo indexed
/// by canonical orbit id.
///
/// Valence is invariant under process renaming — a permutation relocates
/// processes, never decision values, and transports `failed_at` along with
/// `decision` — so the valence flags of an orbit representative are the
/// valence flags of every member: no permutation of the [`Valences`] flags
/// is needed when reading answers back for a non-canonical state (the
/// witnessing permutation matters for reconstructing *runs*, not flags).
/// One memo entry per orbit replaces up to `n!` entries in the full-space
/// solver.
pub struct QuotientSolver<'a, M: Symmetric> {
    model: &'a M,
    horizon: usize,
    space: QuotientSpace<M>,
    /// Valence memo, indexed by canonical orbit [`StateId`].
    memo: Vec<Option<Valences>>,
    obs: &'a dyn Observer,
}

impl<'a, M: Symmetric> QuotientSolver<'a, M> {
    /// Creates a quotient solver exploring to total depth `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if the model's current layering is not equivariant (see
    /// [`QuotientSpace::new`]).
    #[must_use]
    pub fn new(model: &'a M, horizon: usize) -> Self {
        QuotientSolver::with_observer(model, horizon, &NOOP)
    }

    /// Like [`QuotientSolver::new`], with telemetry.
    #[must_use]
    pub fn with_observer(model: &'a M, horizon: usize, obs: &'a dyn Observer) -> Self {
        QuotientSolver {
            model,
            horizon,
            space: QuotientSpace::new(model),
            memo: Vec::new(),
            obs,
        }
    }

    /// Creates a quotient solver over an arena restored from a
    /// [snapshot](crate::space::snapshot) (or otherwise pre-built) — the
    /// quotient twin of [`ValenceSolver::with_space`]. The valence memo
    /// starts empty for the same reason.
    ///
    /// # Panics
    ///
    /// Panics if the model's current layering is not equivariant, exactly
    /// as [`QuotientSolver::new`] would: a restored arena is only
    /// meaningful under the layering it was built with.
    #[must_use]
    pub fn with_space(
        model: &'a M,
        horizon: usize,
        space: QuotientSpace<M>,
        obs: &'a dyn Observer,
    ) -> Self {
        assert!(
            model.symmetric_layering(),
            "QuotientSolver requires an equivariant layering \
             (use the model's full/symmetric layering variant)"
        );
        QuotientSolver {
            model,
            horizon,
            space,
            memo: Vec::new(),
            obs,
        }
    }

    /// The solver's quotient arena.
    #[must_use]
    pub fn space(&self) -> &QuotientSpace<M> {
        &self.space
    }

    /// Mutable access to the quotient arena (used by the layering engine to
    /// pre-expand layers, possibly in parallel).
    pub fn space_mut(&mut self) -> &mut QuotientSpace<M> {
        &mut self.space
    }

    /// Interns `x`'s orbit, returning the representative's id and the
    /// witnessing permutation (`π · x` = representative).
    pub fn intern(&mut self, x: &M::State) -> (StateId, PidPerm) {
        self.space.intern_with(self.model, x, self.obs)
    }

    /// The successor orbit ids of `id`, computed (and cached) via the arena.
    pub fn successor_ids(&mut self, id: StateId) -> Vec<StateId> {
        let (model, obs) = (self.model, self.obs);
        self.space.successor_ids(model, id, obs)
    }

    /// The observer engines built on this solver report to.
    #[must_use]
    pub fn observer(&self) -> &'a dyn Observer {
        self.obs
    }

    /// The analysis horizon.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The underlying model.
    #[must_use]
    pub fn model(&self) -> &'a M {
        self.model
    }

    /// The valence flags of the orbit behind `id` (memoized per orbit).
    pub fn valences_id(&mut self, id: StateId) -> Valences {
        self.obs.counter("valence.queries", 1);
        if let Some(Some(v)) = self.memo.get(id.index()) {
            self.obs.counter("valence.memo_hits", 1);
            return *v;
        }
        let (mut flags, depth) = {
            let x = self.space.resolve(id);
            (
                local_valence_flags(self.model, &x, self.obs),
                self.model.depth(&x),
            )
        };
        if depth < self.horizon && !(flags.zero && flags.one) {
            for y in self.successor_ids(id) {
                flags = flags.union(self.valences_id(y));
                if flags.zero && flags.one {
                    break;
                }
            }
        }
        if self.memo.len() < self.space.len() {
            self.memo.resize(self.space.len(), None);
        }
        self.memo[id.index()] = Some(flags);
        self.obs.counter("valence.states_classified", 1);
        flags
    }

    /// The valence classification of the orbit behind `id`.
    pub fn valence_id(&mut self, id: StateId) -> Valence {
        self.valences_id(id).classify()
    }

    /// Whether the orbit behind `id` is bivalent.
    pub fn is_bivalent_id(&mut self, id: StateId) -> bool {
        self.valence_id(id).is_bivalent()
    }

    /// The valence flags of `x` (canonicalized, then memoized by orbit).
    pub fn valences(&mut self, x: &M::State) -> Valences {
        let (id, _) = self.intern(x);
        self.valences_id(id)
    }

    /// Number of memoized orbits.
    #[must_use]
    pub fn memo_len(&self) -> usize {
        self.memo.iter().filter(|v| v.is_some()).count()
    }

    /// Interns the initial states (orbit-collapsed, in order) and returns
    /// the first bivalent representative. Since the consensus initial set
    /// `Con₀` is closed under renaming, representatives of initial orbits
    /// are themselves genuine initial states.
    pub fn bivalent_initial_id(&mut self) -> Option<StateId> {
        let mut ids: Vec<StateId> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for x0 in self.model.initial_states() {
            let (id, _) = self.intern(&x0);
            if seen.insert(id) {
                ids.push(id);
            }
        }
        ids.into_iter().find(|&id| self.is_bivalent_id(id))
    }
}

/// Bytes held by a valence memo vector (shallow: the flat `Vec` only).
fn memo_bytes(memo: &[Option<Valences>]) -> u64 {
    // `capacity` is what a `&[_]` cannot see, but the memo is resized to
    // exactly `space.len()`, so `len` is the honest shallow figure.
    memo.len() as u64 * std::mem::size_of::<Option<Valences>>() as u64
}

impl<M: LayeredModel> MemoryFootprint for ValenceSolver<'_, M> {
    /// The underlying arena's components plus the `mem.valence.memo_bytes`
    /// of the flat valence memo.
    fn memory_footprint(&self) -> MemoryBreakdown {
        let mut b = self.space.memory_footprint();
        b.push("mem.valence.memo_bytes", memo_bytes(&self.memo));
        b
    }

    fn report_memory(&self, obs: &dyn Observer) {
        // Delegate to the arena so the intern-table load-factor gauge rides
        // along, then add the memo.
        self.space.report_memory(obs);
        obs.gauge("mem.valence.memo_bytes", memo_bytes(&self.memo));
    }
}

impl<M: Symmetric> MemoryFootprint for QuotientSolver<'_, M> {
    /// The quotient arena's components plus the `mem.valence.memo_bytes`
    /// of the flat valence memo.
    fn memory_footprint(&self) -> MemoryBreakdown {
        let mut b = self.space.memory_footprint();
        b.push("mem.valence.memo_bytes", memo_bytes(&self.memo));
        b
    }

    fn report_memory(&self, obs: &dyn Observer) {
        self.space.report_memory(obs);
        obs.gauge("mem.valence.memo_bytes", memo_bytes(&self.memo));
    }
}

/// Caveat-free enumeration of undecided, non-failed processes at a state —
/// the quantity bounded from below by Lemma 3.1.
pub fn undecided_non_failed<M: LayeredModel>(model: &M, x: &M::State) -> Vec<Pid> {
    Pid::all(model.num_processes())
        .filter(|&i| !model.failed_at(x, i) && model.decision(x, i).is_none())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{flp_diamond, ScriptedModelBuilder};

    #[test]
    fn diamond_root_is_bivalent_children_univalent() {
        let m = flp_diamond();
        let mut s = ValenceSolver::new(&m, 2);
        let x0 = m.initial_states().remove(0);
        assert_eq!(s.valence(&x0), Valence::Bivalent);
        let succ = m.successors(&x0);
        let vals: Vec<Valence> = succ.iter().map(|y| s.valence(y)).collect();
        assert!(vals.contains(&Valence::Univalent(Value::ZERO)));
        assert!(vals.contains(&Valence::Univalent(Value::ONE)));
    }

    #[test]
    fn memo_is_populated_and_reused() {
        let m = flp_diamond();
        let mut s = ValenceSolver::new(&m, 2);
        let x0 = m.initial_states().remove(0);
        let _ = s.valence(&x0);
        let before = s.memo_len();
        let _ = s.valence(&x0);
        assert_eq!(s.memo_len(), before);
        assert!(before >= 1);
    }

    #[test]
    fn horizon_truncates_lookahead() {
        // Decision only appears at depth 2; with horizon 1 nothing is
        // reachable, so the root has no valence.
        let m = flp_diamond();
        let x0 = m.initial_states().remove(0);
        let mut shallow = ValenceSolver::new(&m, 1);
        assert_eq!(shallow.valence(&x0), Valence::NoValence);
        let mut deep = ValenceSolver::new(&m, 2);
        assert_eq!(deep.valence(&x0), Valence::Bivalent);
    }

    #[test]
    fn failed_process_decision_does_not_count() {
        // One state where the only decided process is failed-at: no valence.
        let m = ScriptedModelBuilder::new(2, 1)
            .initial(&[Value::ZERO, Value::ZERO], 0)
            .decision(0, 0, Value::ZERO)
            .failed(0, 0)
            .depth(0, 0)
            .build();
        let mut s = ValenceSolver::new(&m, 0);
        assert_eq!(s.valence(&0), Valence::NoValence);
    }

    #[test]
    fn shared_valence_matches_definition() {
        let m = flp_diamond();
        let mut s = ValenceSolver::new(&m, 2);
        let x0 = m.initial_states().remove(0);
        let succ = m.successors(&x0);
        // The root is bivalent, so it shares a valence with every successor
        // that has any valence.
        for y in &succ {
            if s.valence(y) != Valence::NoValence {
                assert!(s.shared_valence(&x0, y));
            }
        }
    }

    #[test]
    fn undecided_non_failed_counts() {
        let m = flp_diamond();
        let x0 = m.initial_states().remove(0);
        assert_eq!(undecided_non_failed(&m, &x0).len(), m.num_processes());
    }
}
