//! Tiny hand-scripted models for testing the kernel.
//!
//! Two families are provided:
//!
//! * [`CounterModel`] — a contentless graded graph (no decisions, no
//!   failures), useful for exercising exploration plumbing.
//! * [`ScriptedModel`] — a model defined by explicit adjacency, decision,
//!   failure, and agreement tables, so kernel analyses can be tested against
//!   hand-computed expectations. Build one with [`ScriptedModelBuilder`].
//!
//! These types are exposed publicly (rather than `#[cfg(test)]`) so that
//! doc-tests and downstream crates' tests can use them; they are not part of
//! the conceptual API surface.

use std::collections::{HashMap, HashSet};

use crate::space::pack::StatePacker;
use crate::space::snapshot::{SnapshotError, SnapshotReader, SnapshotState};
use crate::space::{StateId, StateSpace};
use crate::sym::{canonicalize_by_min, PidPerm, Symmetric};
use crate::telemetry::NOOP;
use crate::{LayeredModel, Pid, Value};

/// Interns the whole region reachable from the model's initial states
/// within `horizon` layers into a fresh [`StateSpace`], returning the arena
/// and its interned levels.
///
/// This is the canonical way tests and benches set up an id-typed view of a
/// model: ids are assigned deterministically in breadth-first order.
pub fn reachable_space<M: LayeredModel>(
    model: &M,
    horizon: usize,
) -> (StateSpace<M>, Vec<Vec<StateId>>) {
    let mut space = StateSpace::for_model(model);
    let roots = model.initial_states();
    let levels = space.expand_layers(model, &roots, horizon, &NOOP);
    (space, levels)
}

/// A trivial graded model: each state has `branch` successors, no decisions,
/// no failures. Used to exercise exploration utilities.
#[derive(Clone, Debug)]
pub struct CounterModel {
    n: usize,
    branch: u8,
}

/// The state of a [`CounterModel`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CounterState {
    /// The input vector this run started from.
    pub inputs: Vec<Value>,
    /// Layer counter.
    pub depth: u8,
    /// Which branch was taken last.
    pub label: u8,
}

impl CounterModel {
    /// A model with `n` processes and `branch`-way branching.
    #[must_use]
    pub fn new(n: usize, branch: u8) -> Self {
        assert!(n >= 2 && branch >= 1);
        CounterModel { n, branch }
    }
}

impl SnapshotState for CounterState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.inputs.encode(out);
        self.depth.encode(out);
        self.label.encode(out);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CounterState {
            inputs: Vec::decode(r)?,
            depth: u8::decode(r)?,
            label: u8::decode(r)?,
        })
    }
}

impl LayeredModel for CounterModel {
    type State = CounterState;

    fn num_processes(&self) -> usize {
        self.n
    }

    fn max_failures(&self) -> usize {
        1
    }

    fn initial_state(&self, inputs: &[Value]) -> CounterState {
        assert_eq!(inputs.len(), self.n);
        CounterState {
            inputs: inputs.to_vec(),
            depth: 0,
            label: 0,
        }
    }

    fn successors(&self, x: &CounterState) -> Vec<CounterState> {
        (0..self.branch)
            .map(|label| CounterState {
                inputs: x.inputs.clone(),
                depth: x.depth + 1,
                label,
            })
            .collect()
    }

    fn depth(&self, x: &CounterState) -> usize {
        usize::from(x.depth)
    }

    fn inputs_of(&self, x: &CounterState) -> Vec<Value> {
        x.inputs.clone()
    }

    fn decision(&self, _x: &CounterState, _i: Pid) -> Option<Value> {
        None
    }

    fn failed_at(&self, _x: &CounterState, _i: Pid) -> bool {
        false
    }

    fn agree_modulo(&self, x: &CounterState, y: &CounterState, j: Pid) -> bool {
        x.depth == y.depth
            && x.label == y.label
            && x.inputs
                .iter()
                .zip(&y.inputs)
                .enumerate()
                .all(|(i, (a, b))| i == j.index() || a == b)
    }

    fn crash_step(&self, x: &CounterState, _j: Pid) -> CounterState {
        CounterState {
            inputs: x.inputs.clone(),
            depth: x.depth + 1,
            label: 0,
        }
    }

    /// Packs a counter state as `n` two-bit input lanes (values below 4),
    /// then 8 bits of depth and 8 bits of label. The lane shuffle matches
    /// [`PidPerm::permute_vec`]: input lane `i` lands at lane `π(i)`.
    fn state_packer(&self) -> Option<StatePacker<CounterState>> {
        let n = self.n;
        if 2 * n + 16 > 127 {
            return None;
        }
        let pack = move |x: &CounterState| {
            if x.inputs.len() != n {
                return None;
            }
            let mut w = 0u128;
            for i in 0..n {
                let v = x.inputs[i].get();
                if v >= 4 {
                    return None;
                }
                w |= u128::from(v) << (2 * i);
            }
            w |= u128::from(x.depth) << (2 * n);
            w |= u128::from(x.label) << (2 * n + 8);
            Some(w)
        };
        let unpack = move |w: u128| CounterState {
            inputs: (0..n)
                .map(|i| Value::new(((w >> (2 * i)) & 0b11) as u32))
                .collect(),
            depth: ((w >> (2 * n)) & 0xFF) as u8,
            label: ((w >> (2 * n + 8)) & 0xFF) as u8,
        };
        let permute = move |w: u128, perm: &PidPerm| {
            let mut out = w >> (2 * n) << (2 * n);
            for i in 0..n {
                let lane = (w >> (2 * i)) & 0b11;
                out |= lane << (2 * perm.apply(Pid::new(i)).index());
            }
            out
        };
        Some(StatePacker::new(pack, unpack).with_permute(permute))
    }
}

impl Symmetric for CounterModel {
    fn permute_state(&self, x: &CounterState, perm: &PidPerm) -> CounterState {
        CounterState {
            inputs: perm.permute_vec(&x.inputs),
            depth: x.depth,
            label: x.label,
        }
    }

    fn symmetric_layering(&self) -> bool {
        // Successors ignore process identity entirely (only `depth` and
        // `label` change), so the layering is trivially equivariant.
        true
    }

    fn canonicalize(&self, x: &CounterState) -> (CounterState, PidPerm) {
        canonicalize_by_min(self, x)
    }
}

/// A model given by explicit tables over `u32` state identifiers.
#[derive(Clone, Debug, Default)]
pub struct ScriptedModel {
    n: usize,
    t: usize,
    initial: Vec<(Vec<Value>, u32)>,
    succ: HashMap<u32, Vec<u32>>,
    depth: HashMap<u32, usize>,
    inputs: HashMap<u32, Vec<Value>>,
    decisions: HashMap<(u32, usize), Value>,
    failed: HashSet<(u32, usize)>,
    agree: HashSet<(u32, u32, usize)>,
    crash: HashMap<(u32, usize), u32>,
}

impl LayeredModel for ScriptedModel {
    type State = u32;

    fn num_processes(&self) -> usize {
        self.n
    }

    fn max_failures(&self) -> usize {
        self.t
    }

    fn initial_state(&self, inputs: &[Value]) -> u32 {
        self.initial
            .iter()
            .find(|(iv, _)| iv == inputs)
            .map(|&(_, id)| id)
            .expect("scripted model has no initial state for these inputs")
    }

    fn initial_states(&self) -> Vec<u32> {
        self.initial.iter().map(|&(_, id)| id).collect()
    }

    fn successors(&self, x: &u32) -> Vec<u32> {
        self.succ.get(x).cloned().unwrap_or_default()
    }

    fn depth(&self, x: &u32) -> usize {
        self.depth.get(x).copied().unwrap_or(0)
    }

    fn inputs_of(&self, x: &u32) -> Vec<Value> {
        self.inputs
            .get(x)
            .cloned()
            .unwrap_or_else(|| vec![Value::ZERO; self.n])
    }

    fn decision(&self, x: &u32, i: Pid) -> Option<Value> {
        self.decisions.get(&(*x, i.index())).copied()
    }

    fn failed_at(&self, x: &u32, i: Pid) -> bool {
        self.failed.contains(&(*x, i.index()))
    }

    fn agree_modulo(&self, x: &u32, y: &u32, j: Pid) -> bool {
        x == y
            || self.agree.contains(&(*x, *y, j.index()))
            || self.agree.contains(&(*y, *x, j.index()))
    }

    fn crash_step(&self, x: &u32, j: Pid) -> u32 {
        if let Some(&to) = self.crash.get(&(*x, j.index())) {
            return to;
        }
        self.succ
            .get(x)
            .and_then(|v| v.first())
            .copied()
            .unwrap_or(*x)
    }
}

/// Builder for [`ScriptedModel`].
///
/// # Examples
///
/// ```
/// use layered_core::testkit::ScriptedModelBuilder;
/// use layered_core::{LayeredModel, Value};
///
/// let m = ScriptedModelBuilder::new(2, 1)
///     .initial(&[Value::ZERO, Value::ONE], 0)
///     .edge(0, 1)
///     .depth(0, 0)
///     .depth(1, 1)
///     .decision(1, 0, Value::ZERO)
///     .build();
/// assert_eq!(m.successors(&0), vec![1]);
/// ```
#[derive(Clone, Debug)]
pub struct ScriptedModelBuilder {
    model: ScriptedModel,
}

impl ScriptedModelBuilder {
    /// Starts a scripted model with `n` processes and resilience `t`.
    #[must_use]
    pub fn new(n: usize, t: usize) -> Self {
        ScriptedModelBuilder {
            model: ScriptedModel {
                n,
                t,
                ..ScriptedModel::default()
            },
        }
    }

    /// Declares `id` as the initial state for `inputs`.
    #[must_use]
    pub fn initial(mut self, inputs: &[Value], id: u32) -> Self {
        self.model.initial.push((inputs.to_vec(), id));
        self.model.inputs.insert(id, inputs.to_vec());
        self
    }

    /// Adds a layer edge `from → to`.
    #[must_use]
    pub fn edge(mut self, from: u32, to: u32) -> Self {
        let inherited = self.model.inputs.get(&from).cloned();
        self.model.succ.entry(from).or_default().push(to);
        if let (Some(iv), None) = (inherited, self.model.inputs.get(&to)) {
            self.model.inputs.insert(to, iv);
        }
        self
    }

    /// Sets the depth of `id`.
    #[must_use]
    pub fn depth(mut self, id: u32, d: usize) -> Self {
        self.model.depth.insert(id, d);
        self
    }

    /// Sets the input vector visible at `id`.
    #[must_use]
    pub fn inputs(mut self, id: u32, inputs: &[Value]) -> Self {
        self.model.inputs.insert(id, inputs.to_vec());
        self
    }

    /// Records that process `pid` has decided `v` at `id`.
    #[must_use]
    pub fn decision(mut self, id: u32, pid: usize, v: Value) -> Self {
        self.model.decisions.insert((id, pid), v);
        self
    }

    /// Records that process `pid` is failed at `id`.
    #[must_use]
    pub fn failed(mut self, id: u32, pid: usize) -> Self {
        self.model.failed.insert((id, pid));
        self
    }

    /// Records that `x` and `y` agree modulo `j` (symmetric).
    #[must_use]
    pub fn agree(mut self, x: u32, y: u32, j: usize) -> Self {
        self.model.agree.insert((x, y, j));
        self
    }

    /// Sets the crash successor of (`id`, `pid`).
    #[must_use]
    pub fn crash(mut self, id: u32, pid: usize, to: u32) -> Self {
        self.model.crash.insert((id, pid), to);
        self
    }

    /// Finalizes the model.
    #[must_use]
    pub fn build(self) -> ScriptedModel {
        self.model
    }
}

/// The minimal FLP "diamond" instance: a bivalent root whose two successors
/// are 0- and 1-univalent.
///
/// ```text
///            0            (depth 0, bivalent)
///          /   \
///         1     2         (depth 1, univalent)
///         |     |
///         3     4         (depth 2, decided 0 / decided 1 by p1)
/// ```
#[must_use]
pub fn flp_diamond() -> ScriptedModel {
    ScriptedModelBuilder::new(2, 1)
        .initial(&[Value::ZERO, Value::ONE], 0)
        .edge(0, 1)
        .edge(0, 2)
        .edge(1, 3)
        .edge(2, 4)
        .depth(0, 0)
        .depth(1, 1)
        .depth(2, 1)
        .depth(3, 2)
        .depth(4, 2)
        .decision(3, 0, Value::ZERO)
        .decision(4, 0, Value::ONE)
        .agree(1, 2, 1)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayeredModel;

    #[test]
    fn counter_model_basics() {
        let m = CounterModel::new(3, 2);
        let x0 = m.initial_state(&[Value::ZERO, Value::ONE, Value::ZERO]);
        assert_eq!(m.depth(&x0), 0);
        assert_eq!(m.successors(&x0).len(), 2);
        assert_eq!(m.inputs_of(&x0).len(), 3);
        assert!(!m.failed_at(&x0, Pid::new(0)));
    }

    #[test]
    fn counter_agree_modulo_ignores_one_coordinate() {
        let m = CounterModel::new(2, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ZERO]);
        let y = m.initial_state(&[Value::ZERO, Value::ONE]);
        assert!(m.agree_modulo(&x, &y, Pid::new(1)));
        assert!(!m.agree_modulo(&x, &y, Pid::new(0)));
    }

    #[test]
    fn scripted_model_tables() {
        let m = flp_diamond();
        assert_eq!(m.initial_states(), vec![0]);
        assert_eq!(m.successors(&0), vec![1, 2]);
        assert_eq!(m.decision(&3, Pid::new(0)), Some(Value::ZERO));
        assert_eq!(m.decision(&3, Pid::new(1)), None);
        assert!(m.agree_modulo(&1, &2, Pid::new(1)));
        assert!(m.agree_modulo(&2, &1, Pid::new(1))); // symmetric
        assert!(!m.agree_modulo(&1, &2, Pid::new(0)));
        assert!(m.agree_modulo(&1, &1, Pid::new(0))); // reflexive
    }

    #[test]
    fn scripted_crash_defaults_to_first_successor() {
        let m = flp_diamond();
        assert_eq!(m.crash_step(&0, Pid::new(0)), 1);
        assert_eq!(m.crash_step(&3, Pid::new(0)), 3); // terminal: stays
    }

    #[test]
    #[should_panic(expected = "no initial state")]
    fn scripted_missing_initial_panics() {
        let m = flp_diamond();
        let _ = m.initial_state(&[Value::ONE, Value::ONE]);
    }

    #[test]
    fn edges_inherit_inputs() {
        let m = flp_diamond();
        assert_eq!(m.inputs_of(&3), vec![Value::ZERO, Value::ONE]);
    }
}
