//! Process identifiers and decision values.
//!
//! The paper fixes a finite set of `n >= 2` processes named `1, 2, …, n` and
//! an environment `e`. Internally we index processes from `0`; the
//! [`Pid::display_index`] accessor recovers the paper's 1-based name.

use std::fmt;

/// A process identifier, `0`-based.
///
/// The paper names processes `1..=n`; we store `i - 1`. A [`Pid`] is a plain
/// index and is meaningful only relative to a model with a known process
/// count.
///
/// # Examples
///
/// ```
/// use layered_core::Pid;
///
/// let p = Pid::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(p.display_index(), 1); // the paper would call this process "1"
/// assert_eq!(p.to_string(), "p1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Pid(u8);

impl Pid {
    /// Creates a process identifier from a `0`-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u8::MAX` (models in this workspace are
    /// finite instances with at most a few dozen processes).
    #[must_use]
    pub const fn new(index: usize) -> Self {
        assert!(index <= u8::MAX as usize, "process index out of range");
        Pid(index as u8)
    }

    /// The `0`-based index of this process.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The `1`-based index used by the paper's notation.
    #[must_use]
    pub fn display_index(self) -> usize {
        self.index() + 1
    }

    /// Iterates over all `n` process identifiers `p1, …, pn`.
    ///
    /// # Examples
    ///
    /// ```
    /// use layered_core::Pid;
    /// let all: Vec<Pid> = Pid::all(3).collect();
    /// assert_eq!(all, vec![Pid::new(0), Pid::new(1), Pid::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = Pid> + Clone {
        (0..n).map(Pid::new)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.display_index())
    }
}

impl From<Pid> for usize {
    fn from(pid: Pid) -> usize {
        pid.index()
    }
}

/// A decision (or input) value.
///
/// Binary consensus uses [`Value::ZERO`] and [`Value::ONE`]; general decision
/// tasks (Section 7 of the paper) may use a larger range.
///
/// # Examples
///
/// ```
/// use layered_core::Value;
///
/// assert_ne!(Value::ZERO, Value::ONE);
/// assert_eq!(Value::new(0), Value::ZERO);
/// assert_eq!(Value::ONE.get(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Value(u32);

impl Value {
    /// The binary value `0`.
    pub const ZERO: Value = Value(0);
    /// The binary value `1`.
    pub const ONE: Value = Value(1);

    /// Creates a value from its numeric representation.
    #[must_use]
    pub const fn new(v: u32) -> Self {
        Value(v)
    }

    /// The numeric representation of the value.
    #[must_use]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// For a binary value, the other binary value.
    ///
    /// # Panics
    ///
    /// Panics if the value is not binary.
    #[must_use]
    pub fn flipped(self) -> Value {
        match self {
            Value::ZERO => Value::ONE,
            Value::ONE => Value::ZERO,
            other => panic!("flipped() called on non-binary value {other:?}"),
        }
    }

    /// Whether this is one of the two binary values.
    #[must_use]
    pub const fn is_binary(self) -> bool {
        self.0 <= 1
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value(v)
    }
}

/// Enumerates all `2^n` binary input vectors, in lexicographic order with
/// process `p1` as the most significant position.
///
/// These are exactly the input assignments of the consensus initial-state set
/// `Con₀` from Section 3 of the paper.
///
/// # Examples
///
/// ```
/// use layered_core::{binary_input_vectors, Value};
///
/// let vecs = binary_input_vectors(2);
/// assert_eq!(vecs.len(), 4);
/// assert_eq!(vecs[0], vec![Value::ZERO, Value::ZERO]);
/// assert_eq!(vecs[3], vec![Value::ONE, Value::ONE]);
/// ```
#[must_use]
pub fn binary_input_vectors(n: usize) -> Vec<Vec<Value>> {
    assert!(n < usize::BITS as usize, "too many processes");
    let mut out = Vec::with_capacity(1 << n);
    for mask in 0..(1usize << n) {
        let mut v = Vec::with_capacity(n);
        for i in 0..n {
            let bit = (mask >> (n - 1 - i)) & 1;
            v.push(if bit == 1 { Value::ONE } else { Value::ZERO });
        }
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_roundtrip() {
        for i in 0..8 {
            let p = Pid::new(i);
            assert_eq!(p.index(), i);
            assert_eq!(p.display_index(), i + 1);
        }
    }

    #[test]
    fn pid_display_uses_paper_numbering() {
        assert_eq!(Pid::new(0).to_string(), "p1");
        assert_eq!(Pid::new(4).to_string(), "p5");
    }

    #[test]
    fn pid_all_yields_n_distinct() {
        let all: Vec<Pid> = Pid::all(5).collect();
        assert_eq!(all.len(), 5);
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "process index out of range")]
    fn pid_overflow_panics() {
        let _ = Pid::new(300);
    }

    #[test]
    fn value_binary_helpers() {
        assert!(Value::ZERO.is_binary());
        assert!(Value::ONE.is_binary());
        assert!(!Value::new(7).is_binary());
        assert_eq!(Value::ZERO.flipped(), Value::ONE);
        assert_eq!(Value::ONE.flipped(), Value::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-binary")]
    fn value_flip_nonbinary_panics() {
        let _ = Value::new(2).flipped();
    }

    #[test]
    fn binary_vectors_count_and_extremes() {
        for n in 1..=5 {
            let vecs = binary_input_vectors(n);
            assert_eq!(vecs.len(), 1 << n);
            assert!(vecs[0].iter().all(|&v| v == Value::ZERO));
            assert!(vecs[(1 << n) - 1].iter().all(|&v| v == Value::ONE));
            // all distinct
            let mut sorted = vecs.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), vecs.len());
        }
    }

    #[test]
    fn binary_vectors_msb_is_process_one() {
        let vecs = binary_input_vectors(3);
        // index 4 = 0b100 -> p1 gets 1, others 0
        assert_eq!(vecs[4], vec![Value::ONE, Value::ZERO, Value::ZERO]);
    }
}
