//! Small self-contained graph utilities used by the connectivity analyses:
//! union-find, BFS paths, connected components, and diameters of undirected
//! graphs given by adjacency lists over `0..n` vertex indices.

use std::collections::VecDeque;

use crate::telemetry::{MemoryBreakdown, MemoryFootprint, Observer, NOOP};

/// Disjoint-set forest with union by rank and path halving.
///
/// # Examples
///
/// ```
/// use layered_core::graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets `{0}, …, {n-1}`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components
    }
}

/// An undirected graph over vertices `0..n` stored as adjacency lists.
///
/// Parallel edges are merged; self-loops are ignored.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
}

impl Graph {
    /// An edgeless graph with `n` vertices.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from a symmetric predicate evaluated on all pairs.
    pub fn from_predicate<F: FnMut(usize, usize) -> bool>(n: usize, mut related: F) -> Self {
        let mut g = Graph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if related(a, b) {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }

    /// Builds a graph directly from a compressed-sparse-row neighbor layout:
    /// the neighbors of vertex `a` are `edges[offsets[a]..offsets[a + 1]]`.
    ///
    /// Callers must supply a *symmetric* layout (each undirected edge listed
    /// from both endpoints, no self-loops); the connectivity engines produce
    /// exactly that shape, which skips the per-vertex membership scans of
    /// [`Graph::add_edge`].
    ///
    /// # Panics
    ///
    /// Panics if `offsets` does not have `n + 1` nondecreasing entries
    /// ending at `edges.len()`, or if any neighbor is out of range.
    #[must_use]
    pub fn from_csr(n: usize, offsets: &[usize], edges: &[usize]) -> Self {
        assert_eq!(offsets.len(), n + 1, "offsets must have n + 1 entries");
        assert_eq!(offsets[n], edges.len(), "offsets must end at edges.len()");
        let mut adj = Vec::with_capacity(n);
        for a in 0..n {
            let (start, end) = (offsets[a], offsets[a + 1]);
            assert!(start <= end, "offsets must be nondecreasing");
            let ns = edges[start..end].to_vec();
            assert!(
                ns.iter().all(|&b| b < n && b != a),
                "neighbor out of range or self-loop at vertex {a}"
            );
            adj.push(ns);
        }
        Graph { adj }
    }

    /// Number of vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds an undirected edge `a — b`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.len() && b < self.len(), "vertex out of range");
        if a == b {
            return;
        }
        if !self.adj[a].contains(&b) {
            self.adj[a].push(b);
            self.adj[b].push(a);
        }
    }

    /// Whether `a — b` is an edge.
    #[must_use]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj.get(a).is_some_and(|v| v.contains(&b))
    }

    /// Neighbors of `a`.
    #[must_use]
    pub fn neighbors(&self, a: usize) -> &[usize] {
        &self.adj[a]
    }

    /// Number of (undirected) edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether the graph is connected (vacuously true when empty).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.component_count() <= 1
    }

    /// Number of connected components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        let mut uf = UnionFind::new(self.len());
        for (a, ns) in self.adj.iter().enumerate() {
            for &b in ns {
                uf.union(a, b);
            }
        }
        uf.component_count()
    }

    /// Connected components as sorted vertex lists.
    #[must_use]
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut uf = UnionFind::new(self.len());
        for (a, ns) in self.adj.iter().enumerate() {
            for &b in ns {
                uf.union(a, b);
            }
        }
        let mut buckets: Vec<Vec<usize>> = Vec::new();
        let mut index: Vec<Option<usize>> = vec![None; self.len()];
        for v in 0..self.len() {
            let r = uf.find(v);
            let slot = match index[r] {
                Some(s) => s,
                None => {
                    index[r] = Some(buckets.len());
                    buckets.push(Vec::new());
                    buckets.len() - 1
                }
            };
            buckets[slot].push(v);
        }
        buckets
    }

    /// BFS distances from `src`; `None` for unreachable vertices.
    #[must_use]
    pub fn distances(&self, src: usize) -> Vec<Option<usize>> {
        self.distances_with(src, &NOOP)
    }

    /// [`Graph::distances`] with telemetry: reports vertices visited
    /// (`graph.bfs_visits`) and the widest BFS queue (`graph.bfs_frontier`)
    /// to `obs`.
    #[must_use]
    pub fn distances_with(&self, src: usize, obs: &dyn Observer) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.len()];
        dist[src] = Some(0);
        let mut q = VecDeque::from([src]);
        while let Some(v) = q.pop_front() {
            obs.counter("graph.bfs_visits", 1);
            let dv = dist[v].expect("queued vertices have distances");
            for &w in &self.adj[v] {
                if dist[w].is_none() {
                    dist[w] = Some(dv + 1);
                    q.push_back(w);
                }
            }
            obs.gauge("graph.bfs_frontier", q.len() as u64);
        }
        dist
    }

    /// A shortest path from `src` to `dst`, inclusive, or `None` if
    /// disconnected.
    #[must_use]
    pub fn shortest_path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.len()];
        let mut seen = vec![false; self.len()];
        seen[src] = true;
        let mut q = VecDeque::from([src]);
        while let Some(v) = q.pop_front() {
            for &w in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    prev[w] = Some(v);
                    if w == dst {
                        let mut path = vec![dst];
                        let mut cur = dst;
                        while let Some(p) = prev[cur] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    q.push_back(w);
                }
            }
        }
        None
    }

    /// The diameter (longest shortest path) of the graph, or `None` if the
    /// graph is disconnected or empty.
    #[must_use]
    pub fn diameter(&self) -> Option<usize> {
        self.diameter_with(&NOOP)
    }

    /// [`Graph::diameter`] with telemetry, reporting through the observed
    /// BFS of [`Graph::distances_with`].
    #[must_use]
    pub fn diameter_with(&self, obs: &dyn Observer) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        let mut best = 0;
        for v in 0..self.len() {
            for d in self.distances_with(v, obs) {
                match d {
                    Some(d) => best = best.max(d),
                    None => return None,
                }
            }
        }
        Some(best)
    }
}

impl MemoryFootprint for Graph {
    /// Shallow accounting of the adjacency lists: the spine plus each
    /// list's capacity (see [`telemetry::mem`](crate::telemetry::mem)).
    fn memory_footprint(&self) -> MemoryBreakdown {
        let spine = self.adj.capacity() as u64 * std::mem::size_of::<Vec<usize>>() as u64;
        let lists: u64 = self
            .adj
            .iter()
            .map(|l| l.capacity() as u64 * std::mem::size_of::<usize>() as u64)
            .sum();
        let mut b = MemoryBreakdown::new();
        b.push("mem.graph.adj_bytes", spine + lists);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn union_find_counts_components() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        uf.union(1, 2);
        assert_eq!(uf.component_count(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn find_uses_path_halving() {
        // Splice a parent chain 7 -> 6 -> ... -> 0 by hand (chained unions
        // would not produce one under union-by-rank) and check that one
        // `find` from the deep end rewires every other node on the walk to
        // its grandparent.
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.parent[i + 1] = i;
        }
        uf.components = 1;
        assert_eq!(uf.find(7), 0);
        assert_eq!(uf.parent[7], 5, "7 now points at its grandparent");
        assert_eq!(uf.parent[5], 3);
        assert_eq!(uf.parent[3], 1);
        assert_eq!(uf.parent[1], 0);
        assert_eq!(uf.find(7), 0);
    }

    #[test]
    fn from_csr_matches_add_edge_construction() {
        // Path 0 - 1 - 2 - 3 in CSR form.
        let offsets = [0usize, 1, 3, 5, 6];
        let edges = [1usize, 0, 2, 1, 3, 2];
        let g = Graph::from_csr(4, &offsets, &edges);
        assert_eq!(g, path_graph(4));
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_connected());
        // Empty graphs round-trip too.
        assert_eq!(Graph::from_csr(0, &[0], &[]), Graph::new(0));
    }

    #[test]
    #[should_panic(expected = "offsets must have n + 1 entries")]
    fn from_csr_rejects_bad_offsets() {
        let _ = Graph::from_csr(2, &[0, 1], &[1]);
    }

    #[test]
    #[should_panic(expected = "neighbor out of range")]
    fn from_csr_rejects_out_of_range_neighbors() {
        let _ = Graph::from_csr(2, &[0, 1, 2], &[5, 0]);
    }

    #[test]
    fn graph_connectivity() {
        let g = path_graph(4);
        assert!(g.is_connected());
        assert_eq!(g.component_count(), 1);
        assert_eq!(g.edge_count(), 3);

        let mut g2 = Graph::new(4);
        g2.add_edge(0, 1);
        assert!(!g2.is_connected());
        assert_eq!(g2.component_count(), 3);
    }

    #[test]
    fn components_partition_vertices() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        let mut all: Vec<usize> = comps.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shortest_path_and_distances() {
        let g = path_graph(5);
        assert_eq!(g.shortest_path(0, 4), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(g.shortest_path(2, 2), Some(vec![2]));
        assert_eq!(g.distances(0)[4], Some(4));
        let mut g2 = Graph::new(3);
        g2.add_edge(0, 1);
        assert_eq!(g2.shortest_path(0, 2), None);
        assert_eq!(g2.distances(0)[2], None);
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(path_graph(5).diameter(), Some(4));
        let mut cycle = path_graph(6);
        cycle.add_edge(5, 0);
        assert_eq!(cycle.diameter(), Some(3));
        let mut disc = Graph::new(2);
        assert_eq!(disc.diameter(), None);
        disc.add_edge(0, 1);
        assert_eq!(disc.diameter(), Some(1));
    }

    #[test]
    fn from_predicate_builds_symmetric_graph() {
        let g = Graph::from_predicate(4, |a, b| a + 1 == b);
        assert_eq!(g, {
            let mut h = Graph::new(4);
            h.add_edge(0, 1);
            h.add_edge(1, 2);
            h.add_edge(2, 3);
            h
        });
    }

    #[test]
    fn self_loops_and_duplicates_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn empty_graph_is_vacuously_connected() {
        let g = Graph::new(0);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), None);
    }
}
