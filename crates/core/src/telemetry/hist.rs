//! Log-bucketed histograms for telemetry distributions.
//!
//! Counters and span totals answer *how much*; histograms answer *how it
//! was distributed* — the unit of observability for campaign-scale work
//! where one slow layer hides inside an aggregate. [`Histogram`] buckets
//! values by their binary order of magnitude (bucket `k` holds values in
//! `[2^(k-1), 2^k)`, bucket 0 holds zero), so recording is O(1), memory is
//! a fixed 65-slot table, and quantiles are read back as bucket upper
//! bounds — a ≤2× overestimate, which is exactly the precision log-scale
//! latency and fan-out data deserve.
//!
//! Determinism: a histogram of a deterministic value stream (probe
//! lengths, fan-outs, run lengths) is itself deterministic and belongs to
//! the canonical record surface. Histograms of *durations* are not; by
//! convention their names end in `_ns` and the byte-stability contract
//! strips them (see `DESIGN.md` §10).

use super::json::Json;

/// Number of buckets: one for zero plus one per bit of a `u64`.
const BUCKETS: usize = 65;

/// A fixed-size, log-bucketed histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use layered_core::telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 100);
/// assert!(h.quantile(0.5) >= 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for `value`: 0 for zero, else `floor(log2(value)) + 1`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Upper bound (inclusive representative) of bucket `b`: the largest value
/// the bucket can hold.
fn bucket_high(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact maximum sample (not bucketed), `0` if empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper bound: the
    /// smallest bucket bound `b` such that at least `q · count` samples
    /// are ≤ `b`. Returns `0` for an empty histogram; clamped by the exact
    /// maximum so `quantile(1.0) == max()`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_high(b).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The summary rendered into snapshots:
    /// `{"count","sum","p50","p90","p99","max"}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("count".into(), Json::from(self.count)),
            ("sum".into(), Json::from(self.sum)),
            ("p50".into(), Json::from(self.quantile(0.50))),
            ("p90".into(), Json::from(self.quantile(0.90))),
            ("p99".into(), Json::from(self.quantile(0.99))),
            ("max".into(), Json::from(self.max)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.sum(), h.max()), (0, 0, 0));
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn buckets_are_binary_orders_of_magnitude() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_high(1), 1);
        assert_eq!(bucket_high(2), 3);
        assert_eq!(bucket_high(64), u64::MAX);
    }

    #[test]
    fn quantiles_bound_the_data_within_a_bucket() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        // p50 of 1..=1000 is 500; the bucket bound overestimates by <2x.
        let p50 = h.quantile(0.5);
        assert!((500..1000).contains(&p50), "p50 was {p50}");
        // p100 is clamped to the exact max.
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn identical_streams_produce_identical_histograms() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [3u64, 17, 0, 255, 1 << 40] {
            a.record(v);
            b.record(v);
        }
        assert_eq!(a, b);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(7);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 108);
        assert_eq!(merged.max(), 100);
    }

    #[test]
    fn json_summary_has_the_documented_shape() {
        let mut h = Histogram::new();
        h.record(5);
        let rendered = h.to_json().to_string();
        let parsed = Json::parse(&rendered).expect("valid json");
        for key in ["count", "sum", "p50", "p90", "p99", "max"] {
            assert!(
                parsed[key].as_u64().is_some(),
                "missing {key} in {rendered}"
            );
        }
    }
}
