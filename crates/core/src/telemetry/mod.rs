//! Dependency-free telemetry for the analysis engines.
//!
//! The engines in this crate — reachability ([`explore`](crate::explore)),
//! valence ([`ValenceSolver`](crate::ValenceSolver)), connectivity
//! ([`crate::connectivity`]), the layering engine ([`crate::layering`]) and
//! the consensus checker ([`crate::checker`]) — are instrumented with
//! counter, gauge, span and event hooks behind the [`Observer`] trait.
//! Observability is strictly opt-in: every engine defaults to the
//! [`NoopObserver`], whose callbacks are empty and inlined away, so
//! uninstrumented runs behave (and print) exactly as before.
//!
//! Two sinks are provided:
//!
//! * [`MetricsRegistry`] — an in-memory aggregator; freeze it into a
//!   [`MetricsSnapshot`] to read totals or serialize them as JSON,
//! * [`JsonlObserver`] — streams every event as one JSON object per line to
//!   any [`std::io::Write`], for offline analysis of hot paths.
//!
//! Like [`crate::report`], everything here is hand-rolled and free of
//! dependencies; the [`json`] submodule carries the tiny serializer/parser
//! the sinks and the experiment harness share.
//!
//! # Naming conventions
//!
//! Metric names are `engine.metric` strings. Counters shared by all
//! breadth-first sweeps use the `engine.` prefix (`engine.states_visited`,
//! `engine.dedup_hits`, and the `engine.frontier_width` gauge), so totals
//! can be aggregated across engines; engine-specific metrics use their own
//! prefix (`valence.memo_hits`, `connectivity.similarity_edges`,
//! `layering.extensions`, …).

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

pub mod json;
pub mod names;

/// Receiver for engine telemetry.
///
/// All methods default to no-ops so sinks only implement what they need.
/// Methods take `&self`: sinks use interior mutability, which lets one
/// observer be shared by several engines in a single analysis.
pub trait Observer {
    /// Whether this observer records anything. Engines may skip computing
    /// expensive telemetry (e.g. span timing) when this is `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the named monotone counter.
    fn counter(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records an instantaneous level (frontier width, chain length, …).
    /// Sinks keep both the last and the maximum observed value.
    fn gauge(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Marks the start of a named span. Paired with [`Observer::span_end`];
    /// prefer the RAII [`Span`] guard over calling these directly.
    fn span_start(&self, name: &'static str) {
        let _ = name;
    }

    /// Marks the end of a named span that took `nanos` nanoseconds.
    fn span_end(&self, name: &'static str, nanos: u64) {
        let _ = (name, nanos);
    }

    /// Records a discrete event with free-form detail (e.g. why a bivalent
    /// run got stuck).
    fn event(&self, name: &'static str, detail: &str) {
        let _ = (name, detail);
    }
}

/// The default observer: records nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// A `&'static` no-op observer, the default for every engine entry point.
pub static NOOP: NoopObserver = NoopObserver;

/// RAII guard timing a named span against an observer.
///
/// With a disabled observer ([`Observer::enabled`] is `false`) no clock is
/// read at all.
pub struct Span<'a> {
    obs: &'a dyn Observer,
    name: &'static str,
    started: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Starts the span (and the clock, if `obs` is enabled).
    pub fn enter(obs: &'a dyn Observer, name: &'static str) -> Self {
        let started = if obs.enabled() {
            obs.span_start(name);
            // lint:allow(L002, the span clock itself: durations land in span total_ns, a documented timing field stripped by byte-stability comparisons)
            Some(Instant::now())
        } else {
            None
        };
        Span { obs, name, started }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.obs.span_end(self.name, nanos);
        }
    }
}

/// Last/maximum pair recorded for a gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeStat {
    /// The most recent value.
    pub last: u64,
    /// The maximum value observed.
    pub max: u64,
}

/// Count/total pair recorded for a span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total nanoseconds across all completed spans.
    pub total_nanos: u64,
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Event name.
    pub name: &'static str,
    /// Free-form detail.
    pub detail: String,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, GaugeStat>,
    spans: BTreeMap<&'static str, SpanStat>,
    events: Vec<Event>,
}

/// In-memory metrics sink: aggregates counters, gauges, spans and events.
///
/// # Examples
///
/// ```
/// use layered_core::telemetry::{MetricsRegistry, Observer};
///
/// let reg = MetricsRegistry::new();
/// reg.counter("engine.states_visited", 3);
/// reg.gauge("engine.frontier_width", 12);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("engine.states_visited"), 3);
/// assert_eq!(snap.gauge_max("engine.frontier_width"), 12);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Freezes the current totals into an immutable snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex was poisoned.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            spans: inner.spans.clone(),
            events: inner.events.clone(),
        }
    }
}

impl Observer for MetricsRegistry {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let g = inner.gauges.entry(name).or_default();
        g.last = value;
        g.max = g.max.max(value);
    }

    fn span_end(&self, name: &'static str, nanos: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let s = inner.spans.entry(name).or_default();
        s.count += 1;
        s.total_nanos += nanos;
    }

    fn event(&self, name: &'static str, detail: &str) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.events.push(Event {
            name,
            detail: detail.to_string(),
        });
    }
}

/// An immutable view of a [`MetricsRegistry`]'s totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge statistics by name.
    pub gauges: BTreeMap<&'static str, GaugeStat>,
    /// Span statistics by name.
    pub spans: BTreeMap<&'static str, SpanStat>,
    /// Events in recording order.
    pub events: Vec<Event>,
}

impl MetricsSnapshot {
    /// The total of a counter, `0` if never incremented.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The maximum a gauge reached, `0` if never set.
    #[must_use]
    pub fn gauge_max(&self, name: &str) -> u64 {
        self.gauges.get(name).map_or(0, |g| g.max)
    }

    /// Sum of all counters sharing a `prefix.` (e.g. `engine`).
    #[must_use]
    pub fn counter_prefix_total(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| {
                name.strip_prefix(prefix)
                    .is_some_and(|rest| rest.starts_with('.'))
            })
            .map(|(_, v)| v)
            .sum()
    }

    /// The snapshot as a [`json::Json`] object
    /// (`{"counters": {...}, "gauges": {...}, "spans": {...}, "events": [...]}`).
    #[must_use]
    pub fn to_json(&self) -> json::Json {
        use json::Json;
        let counters = Json::Object(
            self.counters
                .iter()
                .map(|(k, &v)| ((*k).to_string(), Json::from(v)))
                .collect(),
        );
        let gauges = Json::Object(
            self.gauges
                .iter()
                .map(|(k, g)| {
                    (
                        (*k).to_string(),
                        Json::Object(vec![
                            ("last".into(), Json::from(g.last)),
                            ("max".into(), Json::from(g.max)),
                        ]),
                    )
                })
                .collect(),
        );
        let spans = Json::Object(
            self.spans
                .iter()
                .map(|(k, s)| {
                    (
                        (*k).to_string(),
                        Json::Object(vec![
                            ("count".into(), Json::from(s.count)),
                            ("total_ns".into(), Json::from(s.total_nanos)),
                        ]),
                    )
                })
                .collect(),
        );
        let events = Json::Array(
            self.events
                .iter()
                .map(|e| {
                    Json::Object(vec![
                        ("name".into(), Json::String(e.name.to_string())),
                        ("detail".into(), Json::String(e.detail.clone())),
                    ])
                })
                .collect(),
        );
        Json::Object(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("spans".into(), spans),
            ("events".into(), events),
        ])
    }
}

/// Streaming sink: every telemetry event becomes one JSON object per line.
///
/// Record shapes:
///
/// ```text
/// {"type":"counter","name":"engine.states_visited","delta":42}
/// {"type":"gauge","name":"engine.frontier_width","value":96}
/// {"type":"span_start","name":"checker.check_consensus"}
/// {"type":"span_end","name":"checker.check_consensus","ns":10250}
/// {"type":"event","name":"layering.stuck","detail":"no_bivalent_successor depth=2"}
/// ```
///
/// Write errors are deliberately swallowed: telemetry must never fail an
/// analysis.
#[derive(Debug)]
pub struct JsonlObserver<W: Write> {
    out: Mutex<W>,
}

impl<W: Write> JsonlObserver<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonlObserver {
            out: Mutex::new(out),
        }
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if the writer mutex was poisoned.
    pub fn into_inner(self) -> W {
        let mut w = self.out.into_inner().expect("jsonl writer poisoned");
        let _ = w.flush();
        w
    }

    fn write_line(&self, line: &str) {
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{line}");
        }
    }
}

impl<W: Write> Observer for JsonlObserver<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.write_line(&format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"delta\":{delta}}}",
            json::escape(name)
        ));
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.write_line(&format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}",
            json::escape(name)
        ));
    }

    fn span_start(&self, name: &'static str) {
        self.write_line(&format!(
            "{{\"type\":\"span_start\",\"name\":\"{}\"}}",
            json::escape(name)
        ));
    }

    fn span_end(&self, name: &'static str, nanos: u64) {
        self.write_line(&format!(
            "{{\"type\":\"span_end\",\"name\":\"{}\",\"ns\":{nanos}}}",
            json::escape(name)
        ));
    }

    fn event(&self, name: &'static str, detail: &str) {
        self.write_line(&format!(
            "{{\"type\":\"event\",\"name\":\"{}\",\"detail\":\"{}\"}}",
            json::escape(name),
            json::escape(detail)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_is_disabled_and_silent() {
        let obs = NoopObserver;
        assert!(!obs.enabled());
        obs.counter("x", 1);
        obs.gauge("x", 1);
        obs.event("x", "y");
        {
            let _span = Span::enter(&obs, "s");
        }
    }

    #[test]
    fn registry_aggregates_counters_gauges_spans_events() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count", 2);
        reg.counter("a.count", 3);
        reg.gauge("a.width", 7);
        reg.gauge("a.width", 4);
        reg.span_end("a.span", 100);
        reg.span_end("a.span", 50);
        reg.event("a.stuck", "why");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), 5);
        assert_eq!(snap.counter("missing"), 0);
        let g = snap.gauges["a.width"];
        assert_eq!((g.last, g.max), (4, 7));
        let s = snap.spans["a.span"];
        assert_eq!((s.count, s.total_nanos), (2, 150));
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].detail, "why");
    }

    #[test]
    fn prefix_totals_sum_engine_counters() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.states_visited", 10);
        reg.counter("engine.dedup_hits", 4);
        reg.counter("engineering.other", 99);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_prefix_total("engine"), 14);
    }

    #[test]
    fn span_guard_records_into_registry() {
        let reg = MetricsRegistry::new();
        {
            let _span = Span::enter(&reg, "timed");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans["timed"].count, 1);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count", 5);
        reg.gauge("a.width", 7);
        reg.span_end("a.span", 30);
        reg.event("a.evt", "de\"tail");
        let rendered = reg.snapshot().to_json().to_string();
        let parsed = json::Json::parse(&rendered).expect("valid json");
        assert_eq!(
            parsed["counters"]["a.count"].as_u64(),
            Some(5),
            "in {rendered}"
        );
        assert_eq!(parsed["gauges"]["a.width"]["max"].as_u64(), Some(7));
        assert_eq!(parsed["spans"]["a.span"]["total_ns"].as_u64(), Some(30));
        assert_eq!(parsed["events"][0]["detail"].as_str(), Some("de\"tail"));
    }

    #[test]
    fn jsonl_observer_emits_one_valid_object_per_line() {
        let obs = JsonlObserver::new(Vec::new());
        obs.counter("c", 1);
        obs.gauge("g", 2);
        obs.span_start("s");
        obs.span_end("s", 3);
        obs.event("e", "detail with \"quotes\" and\nnewline");
        let buf = obs.into_inner();
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in lines {
            let v = json::Json::parse(line).expect("each line parses");
            assert!(v["type"].as_str().is_some(), "line {line} has a type");
        }
    }
}
