//! Dependency-free telemetry for the analysis engines.
//!
//! The engines in this crate — reachability ([`explore`](crate::explore)),
//! valence ([`ValenceSolver`](crate::ValenceSolver)), connectivity
//! ([`crate::connectivity`]), the layering engine ([`crate::layering`]) and
//! the consensus checker ([`crate::checker`]) — are instrumented with
//! counter, gauge, histogram, span, event and progress hooks behind the
//! [`Observer`] trait. Observability is strictly opt-in: every engine
//! defaults to the [`NoopObserver`], whose callbacks are empty and inlined
//! away, so uninstrumented runs behave (and print) exactly as before.
//!
//! Sinks provided here:
//!
//! * [`MetricsRegistry`] — an in-memory aggregator; freeze it into a
//!   [`MetricsSnapshot`] to read totals, distributions, or serialize them
//!   as JSON,
//! * [`JsonlObserver`] — streams every event as one JSON object per line to
//!   any [`std::io::Write`], for offline analysis of hot paths,
//! * [`TraceObserver`] — a bounded ring of individual spans with
//!   parent/child structure, exportable as Chrome trace-event JSON
//!   ([`trace`]) and foldable into a self-profile ([`profile`]),
//! * [`Fanout`] — tees one engine's telemetry to several sinks at once
//!   (e.g. a registry *and* a trace ring).
//!
//! Like [`crate::report`], everything here is hand-rolled and free of
//! dependencies; the [`json`] submodule carries the tiny serializer/parser
//! the sinks and the experiment harness share, [`clock`] is the single
//! monotonic time source every duration derives from, and [`mem`] adds
//! byte-level arena accounting.
//!
//! # Naming conventions
//!
//! Metric names are `engine.metric` strings. Counters shared by all
//! breadth-first sweeps use the `engine.` prefix (`engine.states_visited`,
//! `engine.dedup_hits`, and the `engine.frontier_width` gauge), so totals
//! can be aggregated across engines; engine-specific metrics use their own
//! prefix (`valence.memo_hits`, `connectivity.similarity_edges`,
//! `layering.extensions`, …). Every name must be registered in
//! [`names::NAMES`] (lint rule L005), and names of timing-valued metrics
//! end in `_ns` — the suffix the byte-stability contract strips.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub mod clock;
pub mod hist;
pub mod json;
pub mod mem;
pub mod names;
pub mod profile;
pub mod trace;

pub use hist::Histogram;
pub use mem::{MemoryBreakdown, MemoryFootprint};
pub use trace::{InstantRecord, SpanRecord, TraceObserver};

/// Receiver for engine telemetry.
///
/// All methods default to no-ops so sinks only implement what they need.
/// Methods take `&self`: sinks use interior mutability, which lets one
/// observer be shared by several engines in a single analysis. `Sync` is a
/// supertrait for the same reason — parallel engines hand the observer to
/// `std::thread::scope` workers.
pub trait Observer: Sync {
    /// Whether this observer records anything. Engines may skip computing
    /// expensive telemetry (e.g. span timing) when this is `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the named monotone counter.
    fn counter(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records an instantaneous level (frontier width, chain length, …).
    /// Sinks keep both the last and the maximum observed value.
    fn gauge(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Records one sample into the named distribution (probe length,
    /// fan-out, per-layer nanoseconds, …). Sinks bucket log-scale; see
    /// [`Histogram`].
    fn histogram(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Marks the start of a named span. Paired with [`Observer::span_end`];
    /// prefer the RAII [`Span`] guard over calling these directly.
    fn span_start(&self, name: &'static str) {
        let _ = name;
    }

    /// Marks the end of a named span that took `nanos` nanoseconds.
    fn span_end(&self, name: &'static str, nanos: u64) {
        let _ = (name, nanos);
    }

    /// Whether this observer wants structured [`SpanRecord`]s. When `true`,
    /// [`Span`] guards allocate span ids, maintain the per-thread parent
    /// stack, and deliver a record to [`Observer::span_record`] on drop.
    fn wants_span_records(&self) -> bool {
        false
    }

    /// Receives one completed structured span. Only called when
    /// [`Observer::wants_span_records`] returns `true`.
    fn span_record(&self, record: &SpanRecord) {
        let _ = record;
    }

    /// Records a discrete event with free-form detail (e.g. why a bivalent
    /// run got stuck).
    fn event(&self, name: &'static str, detail: &str) {
        let _ = (name, detail);
    }

    /// Receives a progress heartbeat (see [`Heartbeat`]). Deliberately a
    /// separate channel from [`Observer::event`]: heartbeats fire on a
    /// wall-clock cadence, so [`MetricsRegistry`] ignores them to keep
    /// snapshots deterministic, while streaming/trace sinks surface them.
    fn progress(&self, name: &'static str, detail: &str) {
        let _ = (name, detail);
    }
}

/// The default observer: records nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// A `&'static` no-op observer, the default for every engine entry point.
pub static NOOP: NoopObserver = NoopObserver;

/// Tees every telemetry call to each of several observers, in order.
///
/// # Examples
///
/// ```
/// use layered_core::telemetry::{Fanout, MetricsRegistry, Observer, TraceObserver};
///
/// let reg = MetricsRegistry::new();
/// let trace = TraceObserver::new();
/// let tee = Fanout::new(&[&reg, &trace]);
/// tee.counter("engine.states_visited", 1);
/// assert_eq!(reg.snapshot().counter("engine.states_visited"), 1);
/// ```
pub struct Fanout<'a> {
    targets: Vec<&'a dyn Observer>,
}

impl<'a> Fanout<'a> {
    /// A fanout over `targets` (calls are forwarded in slice order).
    #[must_use]
    pub fn new(targets: &[&'a dyn Observer]) -> Self {
        Fanout {
            targets: targets.to_vec(),
        }
    }
}

impl Observer for Fanout<'_> {
    fn enabled(&self) -> bool {
        self.targets.iter().copied().any(|t| t.enabled())
    }

    fn counter(&self, name: &'static str, delta: u64) {
        for t in &self.targets {
            t.counter(name, delta);
        }
    }

    fn gauge(&self, name: &'static str, value: u64) {
        for t in &self.targets {
            t.gauge(name, value);
        }
    }

    fn histogram(&self, name: &'static str, value: u64) {
        for t in &self.targets {
            t.histogram(name, value);
        }
    }

    fn span_start(&self, name: &'static str) {
        for t in &self.targets {
            t.span_start(name);
        }
    }

    fn span_end(&self, name: &'static str, nanos: u64) {
        for t in &self.targets {
            t.span_end(name, nanos);
        }
    }

    fn wants_span_records(&self) -> bool {
        self.targets.iter().copied().any(|t| t.wants_span_records())
    }

    fn span_record(&self, record: &SpanRecord) {
        for t in &self.targets {
            if t.wants_span_records() {
                t.span_record(record);
            }
        }
    }

    fn event(&self, name: &'static str, detail: &str) {
        for t in &self.targets {
            t.event(name, detail);
        }
    }

    fn progress(&self, name: &'static str, detail: &str) {
        for t in &self.targets {
            t.progress(name, detail);
        }
    }
}

/// Per-span context kept only while tracing is active.
#[derive(Debug)]
struct TraceCtx {
    id: u64,
    parent: u64,
    attrs: Vec<(&'static str, u64)>,
}

/// RAII guard timing a named span against an observer.
///
/// With a disabled observer ([`Observer::enabled`] is `false` and
/// [`Observer::wants_span_records`] is `false`) no clock is read at all.
/// Against a structured sink (e.g. [`TraceObserver`]) the guard also
/// allocates a span id, records its parent — the innermost open span on
/// the same thread — and delivers a full [`SpanRecord`] on drop, giving
/// traces their hierarchy without any engine-side bookkeeping.
pub struct Span<'a> {
    obs: &'a dyn Observer,
    name: &'static str,
    started: Option<u64>,
    ctx: Option<TraceCtx>,
    /// Whether to feed the flat per-name aggregates
    /// ([`Observer::span_start`]/[`Observer::span_end`]). Worker spans
    /// entered with [`Span::enter_under`] skip them: their per-name counts
    /// depend on the thread count, which would break the byte-stability
    /// contract for [`MetricsSnapshot`].
    aggregate: bool,
}

impl<'a> Span<'a> {
    /// Starts the span (and the clock, if `obs` records anything).
    pub fn enter(obs: &'a dyn Observer, name: &'static str) -> Self {
        Span::enter_with(obs, name, &[])
    }

    /// Starts the span with static attribute pairs (layer depth, chunk
    /// size, …) that ride along on the [`SpanRecord`] when tracing.
    pub fn enter_with(
        obs: &'a dyn Observer,
        name: &'static str,
        attrs: &[(&'static str, u64)],
    ) -> Self {
        let tracing = obs.wants_span_records();
        if !obs.enabled() && !tracing {
            return Span {
                obs,
                name,
                started: None,
                ctx: None,
                aggregate: false,
            };
        }
        obs.span_start(name);
        let ctx = tracing.then(|| {
            let id = trace::next_span_id();
            let parent = trace::current_span_id();
            trace::push_open(id);
            TraceCtx {
                id,
                parent,
                attrs: attrs.to_vec(),
            }
        });
        Span {
            obs,
            name,
            started: Some(clock::monotonic_ns()),
            ctx,
            aggregate: true,
        }
    }

    /// Starts a span under an explicit parent id, for work dispatched to
    /// another thread (capture [`trace::current_span_id`] *before*
    /// `std::thread::scope` and pass it to the worker).
    ///
    /// Worker spans feed only the structured trace, not the flat per-name
    /// aggregates: how many there are depends on the thread count, and the
    /// aggregate surface must stay thread-count-independent.
    pub fn enter_under(
        obs: &'a dyn Observer,
        name: &'static str,
        parent: u64,
        attrs: &[(&'static str, u64)],
    ) -> Self {
        if !obs.wants_span_records() {
            return Span {
                obs,
                name,
                started: None,
                ctx: None,
                aggregate: false,
            };
        }
        let id = trace::next_span_id();
        trace::push_open(id);
        Span {
            obs,
            name,
            started: Some(clock::monotonic_ns()),
            ctx: Some(TraceCtx {
                id,
                parent,
                attrs: attrs.to_vec(),
            }),
            aggregate: false,
        }
    }

    /// The span's trace id, or 0 when not tracing.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.ctx.as_ref().map_or(0, |c| c.id)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        let end = clock::monotonic_ns();
        if self.aggregate {
            self.obs.span_end(self.name, end.saturating_sub(started));
        }
        if let Some(ctx) = self.ctx.take() {
            trace::pop_open(ctx.id);
            self.obs.span_record(&SpanRecord {
                id: ctx.id,
                parent: ctx.parent,
                name: self.name,
                thread: trace::thread_index(),
                start_ns: started,
                end_ns: end,
                attrs: ctx.attrs,
            });
        }
    }
}

/// Default heartbeat cadence: once a second.
const DEFAULT_HEARTBEAT_PERIOD_NS: u64 = 1_000_000_000;

/// Process-wide default heartbeat period, settable by harness front-ends.
static HEARTBEAT_PERIOD_NS: AtomicU64 = AtomicU64::new(DEFAULT_HEARTBEAT_PERIOD_NS);

/// Sets the process-wide default [`Heartbeat`] cadence (`0` = every tick).
///
/// Cadence only shapes the *progress* channel, which is excluded from
/// canonical output, so this is safe to expose as a CLI flag.
pub fn set_heartbeat_period_ns(period_ns: u64) {
    HEARTBEAT_PERIOD_NS.store(period_ns, Ordering::Relaxed);
}

/// The current process-wide default heartbeat period.
#[must_use]
pub fn heartbeat_period_ns() -> u64 {
    HEARTBEAT_PERIOD_NS.load(Ordering::Relaxed)
}

/// Rate-limited progress reporter for long scans.
///
/// Engines call [`Heartbeat::tick`] once per layer; at most once per
/// period it emits a `scan.progress` line via [`Observer::progress`] with
/// the layer depth, frontier width, total states and states/second.
/// Heartbeats are wall-clock-gated and therefore *never* recorded by
/// [`MetricsRegistry`]: they exist to make long scans watchable, not to be
/// compared byte-for-byte.
#[derive(Debug)]
pub struct Heartbeat {
    period_ns: u64,
    start_ns: u64,
    last_ns: u64,
}

impl Default for Heartbeat {
    fn default() -> Self {
        Heartbeat::new()
    }
}

impl Heartbeat {
    /// A heartbeat at the process-wide default cadence
    /// (see [`set_heartbeat_period_ns`]).
    #[must_use]
    pub fn new() -> Self {
        Heartbeat::with_period_ns(heartbeat_period_ns())
    }

    /// A heartbeat firing at most once per `period_ns` (`0` = every tick).
    #[must_use]
    pub fn with_period_ns(period_ns: u64) -> Self {
        Heartbeat {
            period_ns,
            start_ns: 0,
            last_ns: 0,
        }
    }

    /// Reports progress if the period has elapsed. Cheap when it hasn't;
    /// free (no clock read) when `obs` is disabled.
    pub fn tick(&mut self, obs: &dyn Observer, depth: usize, frontier: usize, total_states: usize) {
        if !obs.enabled() {
            return;
        }
        let now = clock::monotonic_ns();
        if self.start_ns == 0 {
            self.start_ns = now;
        }
        if self.last_ns != 0 && now.saturating_sub(self.last_ns) < self.period_ns {
            return;
        }
        self.last_ns = now.max(1);
        let elapsed_ns = now.saturating_sub(self.start_ns).max(1);
        let per_sec = (total_states as u128 * 1_000_000_000 / u128::from(elapsed_ns)) as u64;
        obs.progress(
            "scan.progress",
            &format!(
                "depth={depth} frontier={frontier} states={total_states} states_per_sec={per_sec}"
            ),
        );
    }
}

/// Last/maximum pair recorded for a gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeStat {
    /// The most recent value.
    pub last: u64,
    /// The maximum value observed.
    pub max: u64,
}

/// Count/total pair recorded for a span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total nanoseconds across all completed spans.
    pub total_nanos: u64,
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Event name.
    pub name: &'static str,
    /// Free-form detail.
    pub detail: String,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, GaugeStat>,
    hists: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, SpanStat>,
    events: Vec<Event>,
}

/// In-memory metrics sink: aggregates counters, gauges, histograms, spans
/// and events. Progress heartbeats are deliberately *not* recorded (their
/// presence depends on wall-clock cadence; snapshots must not).
///
/// # Examples
///
/// ```
/// use layered_core::telemetry::{MetricsRegistry, Observer};
///
/// let reg = MetricsRegistry::new();
/// reg.counter("engine.states_visited", 3);
/// reg.gauge("engine.frontier_width", 12);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("engine.states_visited"), 3);
/// assert_eq!(snap.gauge_max("engine.frontier_width"), 12);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Freezes the current totals into an immutable snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex was poisoned.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            hists: inner.hists.clone(),
            spans: inner.spans.clone(),
            events: inner.events.clone(),
        }
    }
}

impl Observer for MetricsRegistry {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let g = inner.gauges.entry(name).or_default();
        g.last = value;
        g.max = g.max.max(value);
    }

    fn histogram(&self, name: &'static str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.hists.entry(name).or_default().record(value);
    }

    fn span_end(&self, name: &'static str, nanos: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let s = inner.spans.entry(name).or_default();
        s.count += 1;
        s.total_nanos += nanos;
    }

    fn event(&self, name: &'static str, detail: &str) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.events.push(Event {
            name,
            detail: detail.to_string(),
        });
    }
}

/// An immutable view of a [`MetricsRegistry`]'s totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge statistics by name.
    pub gauges: BTreeMap<&'static str, GaugeStat>,
    /// Histograms by name.
    pub hists: BTreeMap<&'static str, Histogram>,
    /// Span statistics by name.
    pub spans: BTreeMap<&'static str, SpanStat>,
    /// Events in recording order.
    pub events: Vec<Event>,
}

impl MetricsSnapshot {
    /// The total of a counter, `0` if never incremented.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The maximum a gauge reached, `0` if never set.
    #[must_use]
    pub fn gauge_max(&self, name: &str) -> u64 {
        self.gauges.get(name).map_or(0, |g| g.max)
    }

    /// The last value a gauge held, `0` if never set.
    #[must_use]
    pub fn gauge_last(&self, name: &str) -> u64 {
        self.gauges.get(name).map_or(0, |g| g.last)
    }

    /// The named histogram, if any samples were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Total nanoseconds across completed spans of `name`, `0` if none.
    #[must_use]
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans.get(name).map_or(0, |s| s.total_nanos)
    }

    /// Sum of all counters sharing a `prefix.` (e.g. `engine`).
    #[must_use]
    pub fn counter_prefix_total(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| {
                name.strip_prefix(prefix)
                    .is_some_and(|rest| rest.starts_with('.'))
            })
            .map(|(_, v)| v)
            .sum()
    }

    /// The snapshot as a [`json::Json`] object (`{"counters": {...},
    /// "gauges": {...}, "histograms": {...}, "spans": {...},
    /// "events": [...]}`).
    #[must_use]
    pub fn to_json(&self) -> json::Json {
        use json::Json;
        let counters = Json::Object(
            self.counters
                .iter()
                .map(|(k, &v)| ((*k).to_string(), Json::from(v)))
                .collect(),
        );
        let gauges = Json::Object(
            self.gauges
                .iter()
                .map(|(k, g)| {
                    (
                        (*k).to_string(),
                        Json::Object(vec![
                            ("last".into(), Json::from(g.last)),
                            ("max".into(), Json::from(g.max)),
                        ]),
                    )
                })
                .collect(),
        );
        let histograms = Json::Object(
            self.hists
                .iter()
                .map(|(k, h)| ((*k).to_string(), h.to_json()))
                .collect(),
        );
        let spans = Json::Object(
            self.spans
                .iter()
                .map(|(k, s)| {
                    (
                        (*k).to_string(),
                        Json::Object(vec![
                            ("count".into(), Json::from(s.count)),
                            ("total_ns".into(), Json::from(s.total_nanos)),
                        ]),
                    )
                })
                .collect(),
        );
        let events = Json::Array(
            self.events
                .iter()
                .map(|e| {
                    Json::Object(vec![
                        ("name".into(), Json::String(e.name.to_string())),
                        ("detail".into(), Json::String(e.detail.clone())),
                    ])
                })
                .collect(),
        );
        Json::Object(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
            ("spans".into(), spans),
            ("events".into(), events),
        ])
    }
}

/// Streaming sink: every telemetry event becomes one JSON object per line.
///
/// Record shapes:
///
/// ```text
/// {"type":"counter","name":"engine.states_visited","delta":42}
/// {"type":"gauge","name":"engine.frontier_width","value":96}
/// {"type":"histogram","name":"space.intern.probe_len","value":3}
/// {"type":"span_start","name":"checker.check_consensus"}
/// {"type":"span_end","name":"checker.check_consensus","ns":10250}
/// {"type":"event","name":"layering.stuck","detail":"no_bivalent_successor depth=2"}
/// {"type":"progress","name":"scan.progress","detail":"depth=3 frontier=96 ..."}
/// ```
///
/// Write errors are deliberately swallowed: telemetry must never fail an
/// analysis. The writer is flushed when the observer is dropped (or
/// earlier, via [`JsonlObserver::into_inner`]), so buffered records
/// survive every exit path.
#[derive(Debug)]
pub struct JsonlObserver<W: Write> {
    out: Mutex<Option<W>>,
}

impl<W: Write> JsonlObserver<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonlObserver {
            out: Mutex::new(Some(out)),
        }
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if the writer mutex was poisoned.
    pub fn into_inner(mut self) -> W {
        let mut w = self
            .out
            .get_mut()
            .expect("jsonl writer poisoned")
            .take()
            .expect("writer present until into_inner");
        let _ = w.flush();
        w
    }

    fn write_line(&self, line: &str) {
        if let Ok(mut out) = self.out.lock() {
            if let Some(out) = out.as_mut() {
                let _ = writeln!(out, "{line}");
            }
        }
    }
}

impl<W: Write> Drop for JsonlObserver<W> {
    fn drop(&mut self) {
        if let Ok(slot) = self.out.get_mut() {
            if let Some(w) = slot.as_mut() {
                let _ = w.flush();
            }
        }
    }
}

impl<W: Write + Send> Observer for JsonlObserver<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.write_line(&format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"delta\":{delta}}}",
            json::escape(name)
        ));
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.write_line(&format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}",
            json::escape(name)
        ));
    }

    fn histogram(&self, name: &'static str, value: u64) {
        self.write_line(&format!(
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"value\":{value}}}",
            json::escape(name)
        ));
    }

    fn span_start(&self, name: &'static str) {
        self.write_line(&format!(
            "{{\"type\":\"span_start\",\"name\":\"{}\"}}",
            json::escape(name)
        ));
    }

    fn span_end(&self, name: &'static str, nanos: u64) {
        self.write_line(&format!(
            "{{\"type\":\"span_end\",\"name\":\"{}\",\"ns\":{nanos}}}",
            json::escape(name)
        ));
    }

    fn event(&self, name: &'static str, detail: &str) {
        self.write_line(&format!(
            "{{\"type\":\"event\",\"name\":\"{}\",\"detail\":\"{}\"}}",
            json::escape(name),
            json::escape(detail)
        ));
    }

    fn progress(&self, name: &'static str, detail: &str) {
        self.write_line(&format!(
            "{{\"type\":\"progress\",\"name\":\"{}\",\"detail\":\"{}\"}}",
            json::escape(name),
            json::escape(detail)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_is_disabled_and_silent() {
        let obs = NoopObserver;
        assert!(!obs.enabled());
        assert!(!obs.wants_span_records());
        obs.counter("x", 1);
        obs.gauge("x", 1);
        obs.histogram("x", 1);
        obs.event("x", "y");
        obs.progress("x", "y");
        {
            let span = Span::enter(&obs, "s");
            assert_eq!(span.id(), 0);
        }
    }

    #[test]
    fn registry_aggregates_counters_gauges_spans_events() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count", 2);
        reg.counter("a.count", 3);
        reg.gauge("a.width", 7);
        reg.gauge("a.width", 4);
        reg.span_end("a.span", 100);
        reg.span_end("a.span", 50);
        reg.event("a.stuck", "why");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), 5);
        assert_eq!(snap.counter("missing"), 0);
        let g = snap.gauges["a.width"];
        assert_eq!((g.last, g.max), (4, 7));
        let s = snap.spans["a.span"];
        assert_eq!((s.count, s.total_nanos), (2, 150));
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].detail, "why");
    }

    #[test]
    fn registry_aggregates_histograms() {
        let reg = MetricsRegistry::new();
        for v in [1u64, 2, 3, 100] {
            reg.histogram("a.dist", v);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("a.dist").expect("recorded");
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 100);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn registry_ignores_progress() {
        let reg = MetricsRegistry::new();
        reg.progress("scan.progress", "depth=1");
        assert_eq!(reg.snapshot().events.len(), 0);
    }

    #[test]
    fn prefix_totals_sum_engine_counters() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.states_visited", 10);
        reg.counter("engine.dedup_hits", 4);
        reg.counter("engineering.other", 99);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_prefix_total("engine"), 14);
    }

    #[test]
    fn span_guard_records_into_registry() {
        let reg = MetricsRegistry::new();
        {
            let _span = Span::enter(&reg, "timed");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans["timed"].count, 1);
    }

    #[test]
    fn fanout_tees_to_all_targets() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        let tee = Fanout::new(&[&a, &b]);
        tee.counter("a.count", 1);
        tee.gauge("a.width", 2);
        tee.histogram("a.dist", 3);
        {
            let _span = Span::enter(&tee, "a.span");
        }
        for reg in [&a, &b] {
            let snap = reg.snapshot();
            assert_eq!(snap.counter("a.count"), 1);
            assert_eq!(snap.gauge_max("a.width"), 2);
            assert_eq!(snap.histogram("a.dist").map(Histogram::count), Some(1));
            assert_eq!(snap.spans["a.span"].count, 1);
        }
    }

    #[test]
    fn fanout_with_trace_gives_registry_aggregates_and_records() {
        let reg = MetricsRegistry::new();
        let tr = TraceObserver::new();
        let tee = Fanout::new(&[&reg, &tr]);
        {
            let _outer = Span::enter(&tee, "space.build");
            let _inner = Span::enter(&tee, "space.layer");
        }
        assert_eq!(reg.snapshot().spans["space.build"].count, 1);
        let spans = tr.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].parent, spans[1].id);
    }

    #[test]
    fn heartbeat_period_zero_fires_every_tick() {
        let reg = MetricsRegistry::new();
        let jsonl = JsonlObserver::new(Vec::new());
        let tee = Fanout::new(&[&reg, &jsonl]);
        let mut hb = Heartbeat::with_period_ns(0);
        hb.tick(&tee, 1, 10, 100);
        hb.tick(&tee, 2, 20, 200);
        // The registry stays clean; the stream carries the progress lines.
        assert_eq!(reg.snapshot().events.len(), 0);
        let text = String::from_utf8(jsonl.into_inner()).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"type\":\"progress\""), "in {text}");
        assert!(text.contains("depth=2 frontier=20 states=200"), "in {text}");
    }

    #[test]
    fn heartbeat_long_period_fires_once() {
        let jsonl = JsonlObserver::new(Vec::new());
        let mut hb = Heartbeat::with_period_ns(u64::MAX);
        for i in 0..100 {
            hb.tick(&jsonl, i, 1, i);
        }
        let text = String::from_utf8(jsonl.into_inner()).expect("utf8");
        // Only the first tick (last_ns == 0) fires within u64::MAX period.
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn heartbeat_skips_clock_when_disabled() {
        let mut hb = Heartbeat::with_period_ns(0);
        hb.tick(&NOOP, 1, 1, 1);
        assert_eq!(hb.start_ns, 0, "disabled observer must not start the clock");
    }

    #[test]
    fn snapshot_json_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count", 5);
        reg.gauge("a.width", 7);
        reg.histogram("a.dist", 9);
        reg.span_end("a.span", 30);
        reg.event("a.evt", "de\"tail");
        let rendered = reg.snapshot().to_json().to_string();
        let parsed = json::Json::parse(&rendered).expect("valid json");
        assert_eq!(
            parsed["counters"]["a.count"].as_u64(),
            Some(5),
            "in {rendered}"
        );
        assert_eq!(parsed["gauges"]["a.width"]["max"].as_u64(), Some(7));
        assert_eq!(parsed["histograms"]["a.dist"]["count"].as_u64(), Some(1));
        assert_eq!(parsed["histograms"]["a.dist"]["p50"].as_u64(), Some(9));
        assert_eq!(parsed["spans"]["a.span"]["total_ns"].as_u64(), Some(30));
        assert_eq!(parsed["events"][0]["detail"].as_str(), Some("de\"tail"));
    }

    #[test]
    fn jsonl_observer_emits_one_valid_object_per_line() {
        let obs = JsonlObserver::new(Vec::new());
        obs.counter("c", 1);
        obs.gauge("g", 2);
        obs.histogram("h", 9);
        obs.span_start("s");
        obs.span_end("s", 3);
        obs.event("e", "detail with \"quotes\" and\nnewline");
        obs.progress("p", "depth=1");
        let buf = obs.into_inner();
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        for line in lines {
            let v = json::Json::parse(line).expect("each line parses");
            assert!(v["type"].as_str().is_some(), "line {line} has a type");
        }
    }

    /// A writer that marks a shared flag when flushed, so tests can see
    /// whether drop reached the underlying writer.
    struct FlagWriter {
        flushed: std::sync::Arc<std::sync::atomic::AtomicBool>,
        wrote: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl Write for FlagWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.wrote.fetch_add(buf.len() as u64, Ordering::Relaxed);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.flushed.store(true, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn jsonl_observer_flushes_on_drop() {
        let flushed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let wrote = std::sync::Arc::new(AtomicU64::new(0));
        {
            let obs = JsonlObserver::new(FlagWriter {
                flushed: flushed.clone(),
                wrote: wrote.clone(),
            });
            obs.counter("c", 1);
            assert!(!flushed.load(Ordering::Relaxed));
        }
        assert!(
            flushed.load(Ordering::Relaxed),
            "drop must flush buffered records"
        );
        assert!(wrote.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn jsonl_into_inner_does_not_double_flush() {
        let flushed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let wrote = std::sync::Arc::new(AtomicU64::new(0));
        let obs = JsonlObserver::new(FlagWriter {
            flushed: flushed.clone(),
            wrote: wrote.clone(),
        });
        obs.event("e", "x");
        let _w = obs.into_inner();
        assert!(flushed.load(Ordering::Relaxed));
    }
}
