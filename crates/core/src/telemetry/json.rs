//! A tiny hand-rolled JSON value, serializer and parser.
//!
//! Kept dependency-free like the rest of the crate (see [`crate::report`]).
//! The experiment harness uses it to emit machine-readable records and to
//! parse them back in its round-trip tests; the telemetry sinks use
//! [`escape`] for their line-oriented output.
//!
//! Numbers are stored as `f64`, which is exact for the integer counters this
//! crate produces up to 2⁵³ — far beyond any state count an exhaustive
//! enumeration reaches.

use std::fmt;
use std::ops::Index;

/// A JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        // f64 is exact up to 2^53; counters beyond that are saturated by the
        // cast, which is acceptable for telemetry.
        #[allow(clippy::cast_precision_loss)]
        Json::Number(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::String(v.to_string())
    }
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Looks up an object member.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up an array element.
    #[must_use]
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in
    /// `u64` range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 1.8446744073709552e19 =>
            {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Sorts every object's members by key, recursively, returning `self`.
    ///
    /// [`Json::Object`] preserves insertion order, so two semantically
    /// equal documents can render to different bytes. Record emitters
    /// (experiment records, sim run records, lint reports) canonicalize at
    /// the encoder boundary so equal records are byte-equal — the
    /// determinism contract golden files and the byte-stability tests rely
    /// on. Duplicate keys keep their relative order (the sort is stable);
    /// array element order is semantic and left untouched.
    #[must_use]
    pub fn canonicalize(mut self) -> Json {
        self.canonicalize_in_place();
        self
    }

    fn canonicalize_in_place(&mut self) {
        match self {
            Json::Object(members) => {
                for (_, v) in members.iter_mut() {
                    v.canonicalize_in_place();
                }
                members.sort_by(|(a, _), (b, _)| a.cmp(b));
            }
            Json::Array(items) => {
                for v in items {
                    v.canonicalize_in_place();
                }
            }
            _ => {}
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError {
                offset: pos,
                message: "trailing characters after document",
            });
        }
        Ok(value)
    }
}

/// `Json::Null` when the key is missing — convenient for chained lookups in
/// tests (`record["counters"]["engine.states_visited"]`).
impl Index<&str> for Json {
    type Output = Json;

    fn index(&self, key: &str) -> &Json {
        static NULL: Json = Json::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// `Json::Null` when out of bounds, matching [`Index<&str>`].
impl Index<usize> for Json {
    type Output = Json;

    fn index(&self, index: usize) -> &Json {
        static NULL: Json = Json::Null;
        self.at(index).unwrap_or(&NULL)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    // Render integral values without a fractional part so
                    // counters read naturally.
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::String(s) => write!(f, "\"{}\"", escape(s)),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Object(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes a string for embedding between JSON double quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8, message: &'static str) -> Result<(), ParseError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError {
            offset: *pos,
            message,
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError {
            offset: *pos,
            message: "unexpected end of input",
        }),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static [u8],
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError {
            offset: *pos,
            message: "invalid literal",
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| ParseError {
        offset: start,
        message: "invalid number bytes",
    })?;
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| ParseError {
            offset: start,
            message: "invalid number",
        })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(ParseError {
                    offset: *pos,
                    message: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(ParseError {
                            offset: *pos,
                            message: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| ParseError {
                            offset: *pos,
                            message: "invalid \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                            offset: *pos,
                            message: "invalid \\u escape",
                        })?;
                        // Surrogate pairs are not needed for the metric names
                        // and details this crate produces; map lone
                        // surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError {
                            offset: *pos,
                            message: "invalid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe: take bytes until
                // the next char boundary).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| ParseError {
                    offset: *pos,
                    message: "invalid utf-8 in string",
                })?;
                let c = rest.chars().next().expect("non-empty by match");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => {
                return Err(ParseError {
                    offset: *pos,
                    message: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'{', "expected '{'")?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':'")?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => {
                return Err(ParseError {
                    offset: *pos,
                    message: "expected ',' or '}'",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::from(42u64).to_string(), "42");
        assert_eq!(Json::from("hi").to_string(), "\"hi\"");
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-2.5").unwrap(), Json::Number(-2.5));
        assert_eq!(Json::parse("\"a b\"").unwrap(), Json::String("a b".into()));
    }

    #[test]
    fn round_trip_nested_document() {
        let doc = Json::Object(vec![
            ("id".into(), Json::from("E-3.6")),
            ("ok".into(), Json::Bool(true)),
            (
                "counters".into(),
                Json::Object(vec![
                    ("engine.states_visited".into(), Json::from(123u64)),
                    ("engine.dedup_hits".into(), Json::from(0u64)),
                ]),
            ),
            (
                "list".into(),
                Json::Array(vec![Json::from(1u64), Json::Null, Json::from("x")]),
            ),
        ]);
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("round trip");
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed["counters"]["engine.states_visited"].as_u64(),
            Some(123)
        );
        assert_eq!(parsed["list"][2].as_str(), Some("x"));
        assert_eq!(parsed["missing"], Json::Null);
    }

    #[test]
    fn escapes_survive_round_trip() {
        let original = "quote \" backslash \\ newline \n tab \t ctrl \u{1} unicode é";
        let rendered = Json::String(original.into()).to_string();
        let parsed = Json::parse(&rendered).expect("parses");
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(parsed["a"][1].as_u64(), Some(2));
        assert_eq!(parsed["b"], Json::Object(vec![]));
    }

    #[test]
    fn canonicalize_sorts_nested_object_keys() {
        let doc = Json::Object(vec![
            ("b".into(), Json::from(2u64)),
            (
                "a".into(),
                Json::Object(vec![
                    ("z".into(), Json::Null),
                    (
                        "y".into(),
                        Json::Array(vec![Json::Object(vec![
                            ("k2".into(), Json::from(1u64)),
                            ("k1".into(), Json::from(0u64)),
                        ])]),
                    ),
                ]),
            ),
        ]);
        let canon = doc.canonicalize();
        assert_eq!(
            canon.to_string(),
            "{\"a\":{\"y\":[{\"k1\":0,\"k2\":1}],\"z\":null},\"b\":2}"
        );
        // Idempotent, and array order is untouched.
        assert_eq!(canon.clone().canonicalize(), canon);
        let arr = Json::Array(vec![Json::from(2u64), Json::from(1u64)]);
        assert_eq!(arr.clone().canonicalize(), arr);
    }

    #[test]
    fn as_u64_rejects_non_integers() {
        assert_eq!(Json::Number(1.5).as_u64(), None);
        assert_eq!(Json::Number(-1.0).as_u64(), None);
        assert_eq!(Json::Number(7.0).as_u64(), Some(7));
        assert_eq!(Json::Bool(true).as_u64(), None);
    }
}
