//! The single monotonic clock behind every duration in the workspace.
//!
//! Lint rule **L002** forbids `Instant`/`SystemTime` in analysis code so
//! that nondeterministic timing can never leak into canonical output by
//! accident. All timing therefore funnels through this one shim: spans
//! ([`Span`](super::Span)), the bench harness's `measured`, and the scaling
//! experiments all read [`monotonic_ns`], and this module carries the one
//! documented L002 suppression. Durations derived from it land only in
//! fields the byte-stability contract strips (`wall_ns`, `total_ns`, any
//! name ending in `_ns` — see `DESIGN.md` §10).
//!
//! The clock is monotonic and process-relative: nanoseconds since the
//! first call in this process (the *trace epoch*). Being an offset rather
//! than a wall-clock time keeps trace timestamps small, comparable across
//! threads, and meaningless outside the process — exactly what Chrome
//! trace-event timestamps want.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since the process-wide trace epoch (lazily fixed at
/// the first call).
///
/// Monotonic: later calls never return smaller values. Saturates at
/// `u64::MAX` after ~584 years of uptime.
#[must_use]
pub fn monotonic_ns() -> u64 {
    // lint:allow(L002, the single monotonic clock shim: every duration in the workspace derives from this call and lands only in documented timing fields stripped by byte-stability comparisons)
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_decreases() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        let c = monotonic_ns();
        assert!(a <= b && b <= c);
    }

    #[test]
    fn epoch_is_process_relative() {
        // The first reading is taken against a freshly fixed epoch, so
        // values stay small (well under a year of nanoseconds) for the
        // lifetime of any test process.
        assert!(monotonic_ns() < 365 * 24 * 3600 * 1_000_000_000);
    }
}
