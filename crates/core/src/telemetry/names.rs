//! The single registry of telemetry metric and span names.
//!
//! Every counter, gauge, histogram, span, event and progress name used
//! anywhere in the workspace must appear in [`NAMES`]. The `layered-lint`
//! static-analysis pass (rule **L005**) cross-checks each name literal
//! passed to an [`Observer`](super::Observer) method against this list, so
//! a typo'd metric name (`"valence.memo_hit"` for `"valence.memo_hits"`)
//! is a CI failure instead of a silently empty time series.
//!
//! Keep the list sorted and duplicate-free — `names_are_sorted_and_unique`
//! below enforces both — and add the name here in the same change that
//! introduces the instrumentation. Names follow the `engine.metric`
//! convention described in the [module docs](super).
//!
//! # Units
//!
//! Units are part of the name's contract:
//!
//! * `*_ns` — nanoseconds from the monotonic clock shim
//!   ([`clock`](super::clock)); nondeterministic, stripped by the
//!   byte-stability comparisons.
//! * `*_bytes` — shallow, capacity-based byte counts (see
//!   [`mem`](super::mem)); deterministic lower bounds.
//! * `space.shard.contention` / `space.intern.cas_retries` — lock-
//!   contention tallies from the sharded intern table; nondeterministic
//!   under concurrency, stripped by the byte-stability comparisons.
//! * `*_x1000` — dimensionless ratios in fixed-point thousandths: a
//!   reading of `5920` means `5.920`. Used so ratios stay integers on the
//!   canonical surface (floats are banned from records by lint L006).
//! * `*_layers` — counts of protocol layers (rounds).
//! * everything else — plain counts of the named thing (states, hits,
//!   probes, edges, …).
//!
//! Gauges with units beyond a plain count:
//!
//! | gauge | units |
//! |---|---|
//! | `engine.frontier_width` | states in the current BFS frontier |
//! | `graph.bfs_frontier` | vertices in the current BFS frontier |
//! | `mem.*_bytes` | bytes (shallow capacity accounting) |
//! | `scan.resume.*_wall_ns` | nanoseconds (timing; stripped) |
//! | `scan.resume.speedup_x1000` | cold wall / warm wall, ×1000 |
//! | `scan.sym.*.wall_ns` | nanoseconds (timing; stripped) |
//! | `space.intern.load_x1000` | intern-table load factor, ×1000 |
//! | `space.pack.bytes_saved` | bytes the packed encoding saves over boxed storage |
//! | `space.quotient.mean_orbit_x1000` | mean full states per orbit, ×1000 |
//! | `space.shard.count` | intern shards in the concurrent table |
//! | `space.snapshot.bytes_written` | exact snapshot blob size in bytes (not a `mem.` capacity gauge) |
//! | `space.snapshot.load_ns` | nanoseconds (timing; stripped) |
//! | `space.snapshot.save_ns` | nanoseconds (timing; stripped) |
//!
//! Histograms:
//!
//! | histogram | units |
//! |---|---|
//! | `cert.server.request_ns` | nanoseconds per served request (timing; stripped) |
//! | `sim.fault_to_violation_layers` | layers from first injected fault to violation |
//! | `sim.run_layers` | layers executed per simulated run |
//! | `space.intern.probe_len` | hash-bucket candidates compared per intern |
//! | `space.layer_expand_ns` | nanoseconds per expanded layer (timing; stripped) |
//! | `space.succ_fanout` | successor edges per expanded state |

/// Every registered telemetry name, sorted lexicographically.
///
/// Counters, gauges, histograms, spans, events and progress names share
/// one namespace: a name's kind is fixed by its call sites, and no name is
/// used as two kinds at once.
pub const NAMES: &[&str] = &[
    "census.decided_states",
    "cert.server.computed",
    "cert.server.errors",
    "cert.server.request_ns",
    "cert.server.requests",
    "cert.store.hits",
    "cert.store.misses",
    "cert.store.puts",
    "cert.verify.fail",
    "cert.verify.ok",
    "checker.sweep",
    "checker.violations",
    "connectivity.chain_length",
    "connectivity.pairs_tested",
    "connectivity.similarity_edges",
    "connectivity.valence_edges",
    "engine.dedup_hits",
    "engine.frontier_width",
    "engine.states_visited",
    "experiment.run",
    "explore.edges",
    "explore.sweep",
    "graph.bfs_frontier",
    "graph.bfs_visits",
    "layering.bivalent_run",
    "layering.candidates_tested",
    "layering.check_layer",
    "layering.extensions",
    "layering.layer_scan",
    "layering.layers_scanned",
    "layering.run_length",
    "layering.scan_violation",
    "layering.stuck",
    "mem.graph.adj_bytes",
    "mem.space.edges_bytes",
    "mem.space.index_bytes",
    "mem.space.orbits_bytes",
    "mem.space.perms_bytes",
    "mem.space.states_bytes",
    "mem.valence.memo_bytes",
    "scan.progress",
    "scan.resume.cold_wall_ns",
    "scan.resume.speedup_x1000",
    "scan.resume.warm_wall_ns",
    "scan.sym.full.states_seen",
    "scan.sym.full.wall_ns",
    "scan.sym.n",
    "scan.sym.quotient.states_seen",
    "scan.sym.quotient.wall_ns",
    "sim.fault_to_violation_layers",
    "sim.faults_injected",
    "sim.run",
    "sim.run_layers",
    "sim.runs",
    "sim.steps",
    "sim.violation",
    "space.build",
    "space.canon.hits",
    "space.canon.orbit_states",
    "space.canonicalize",
    "space.intern.cas_retries",
    "space.intern.hits",
    "space.intern.load_x1000",
    "space.intern.misses",
    "space.intern.probe_len",
    "space.layer",
    "space.layer_expand_ns",
    "space.pack.bytes_saved",
    "space.prefetch_chunk",
    "space.quotient.mean_orbit_x1000",
    "space.resume.loads",
    "space.resume.orbits_recomputed",
    "space.resume.orbits_reused",
    "space.resume.refresh",
    "space.resume.rows_recomputed",
    "space.resume.rows_reused",
    "space.shard.contention",
    "space.shard.count",
    "space.snapshot.bytes_written",
    "space.snapshot.load",
    "space.snapshot.load_ns",
    "space.snapshot.save",
    "space.snapshot.save_ns",
    "space.states",
    "space.succ_fanout",
    "stats.census",
    "valence.classify",
    "valence.decided_probes",
    "valence.memo_hits",
    "valence.queries",
    "valence.states_classified",
];

/// Whether `name` is a registered telemetry name.
///
/// `O(log n)` — [`NAMES`] is sorted, so this is a binary search.
#[must_use]
pub fn is_registered(name: &str) -> bool {
    NAMES.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sorted_and_unique() {
        assert!(
            NAMES.windows(2).all(|w| w[0] < w[1]),
            "NAMES must be sorted and duplicate-free (binary search depends on it)"
        );
    }

    #[test]
    fn lookup_finds_registered_and_rejects_typos() {
        assert!(is_registered("valence.memo_hits"));
        assert!(is_registered("engine.states_visited"));
        assert!(is_registered("space.intern.probe_len"));
        assert!(is_registered("space.quotient.mean_orbit_x1000"));
        assert!(!is_registered("valence.memo_hit"));
        assert!(!is_registered("space.quotient.ratio"));
        assert!(!is_registered(""));
    }

    #[test]
    fn names_follow_the_dotted_convention() {
        for name in NAMES {
            assert!(
                name.contains('.') && !name.starts_with('.') && !name.ends_with('.'),
                "{name} must be engine.metric shaped"
            );
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "{name} must be lowercase dotted snake_case (digits only in unit suffixes)"
            );
            assert!(
                name.chars().next().is_some_and(|c| c.is_ascii_lowercase()),
                "{name} must start with a letter"
            );
        }
    }

    #[test]
    fn unit_suffixes_are_consistent() {
        // Fixed-point names carry the x1000 suffix; byte gauges live under
        // the mem. prefix.
        for name in NAMES {
            if name.ends_with("_bytes") {
                assert!(
                    name.starts_with("mem."),
                    "{name}: byte gauges use the mem. prefix"
                );
            }
            if name.starts_with("mem.") {
                assert!(
                    name.ends_with("_bytes"),
                    "{name}: mem. names report bytes and say so"
                );
            }
        }
    }
}
