//! The single registry of telemetry metric and span names.
//!
//! Every counter, gauge, span and event name used anywhere in the
//! workspace must appear in [`NAMES`]. The `layered-lint` static-analysis
//! pass (rule **L005**) cross-checks each name literal passed to an
//! [`Observer`](super::Observer) method against this list, so a typo'd
//! metric name (`"valence.memo_hit"` for `"valence.memo_hits"`) is a CI
//! failure instead of a silently empty time series.
//!
//! Keep the list sorted and duplicate-free — `names_are_sorted_and_unique`
//! below enforces both — and add the name here in the same change that
//! introduces the instrumentation. Names follow the `engine.metric`
//! convention described in the [module docs](super).

/// Every registered telemetry name, sorted lexicographically.
///
/// Counters, gauges, spans and events share one namespace: a name's kind
/// is fixed by its call sites, and no name is used as two kinds at once.
pub const NAMES: &[&str] = &[
    "census.decided_states",
    "checker.sweep",
    "checker.violations",
    "connectivity.chain_length",
    "connectivity.pairs_tested",
    "connectivity.similarity_edges",
    "connectivity.valence_edges",
    "engine.dedup_hits",
    "engine.frontier_width",
    "engine.states_visited",
    "explore.edges",
    "explore.sweep",
    "graph.bfs_frontier",
    "graph.bfs_visits",
    "layering.bivalent_run",
    "layering.candidates_tested",
    "layering.extensions",
    "layering.layer_scan",
    "layering.layers_scanned",
    "layering.run_length",
    "layering.scan_violation",
    "layering.stuck",
    "scan.sym.full.states_seen",
    "scan.sym.full.wall_ns",
    "scan.sym.n",
    "scan.sym.quotient.states_seen",
    "scan.sym.quotient.wall_ns",
    "sim.faults_injected",
    "sim.run",
    "sim.runs",
    "sim.steps",
    "sim.violation",
    "space.build",
    "space.canon.hits",
    "space.canon.orbit_states",
    "space.canonicalize",
    "space.intern.hits",
    "space.intern.misses",
    "space.quotient.ratio",
    "space.states",
    "stats.census",
    "valence.decided_probes",
    "valence.memo_hits",
    "valence.queries",
    "valence.states_classified",
];

/// Whether `name` is a registered telemetry name.
///
/// `O(log n)` — [`NAMES`] is sorted, so this is a binary search.
#[must_use]
pub fn is_registered(name: &str) -> bool {
    NAMES.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sorted_and_unique() {
        assert!(
            NAMES.windows(2).all(|w| w[0] < w[1]),
            "NAMES must be sorted and duplicate-free (binary search depends on it)"
        );
    }

    #[test]
    fn lookup_finds_registered_and_rejects_typos() {
        assert!(is_registered("valence.memo_hits"));
        assert!(is_registered("engine.states_visited"));
        assert!(!is_registered("valence.memo_hit"));
        assert!(!is_registered(""));
    }

    #[test]
    fn names_follow_the_dotted_convention() {
        for name in NAMES {
            assert!(
                name.contains('.') && !name.starts_with('.') && !name.ends_with('.'),
                "{name} must be engine.metric shaped"
            );
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "{name} must be lowercase dotted snake_case"
            );
        }
    }
}
